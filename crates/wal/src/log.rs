//! The log itself: framed records over segments, plus snapshots.
//!
//! # On-disk layout
//!
//! A namespace holds segment files `seg-<seq>` and snapshot files
//! `snap-<seq>` (`<seq>` is a 16-hex-digit sequence number, so lexical
//! order is numeric order). Every record — in segments and snapshots
//! alike — is framed as
//!
//! ```text
//! ┌──────────┬────────────┬─────────────┬──────────────┐
//! │ magic u8 │ len u32 LE │ check u64 LE│ payload[len] │
//! └──────────┴────────────┴─────────────┴──────────────┘
//! ```
//!
//! with `check = fnv1a64(len_le ‖ payload)`. A torn tail (a crash mid
//! `append`) leaves a frame whose bytes run out or whose checksum
//! fails; [`Wal::open`] truncates the file at the last valid frame
//! boundary, so recovery always yields a *prefix* of the acknowledged
//! records, never a corrupt or reordered one.
//!
//! # Group commit
//!
//! [`Wal::append_batch`] makes `N` records durable with **one** write
//! and one sync: the records are framed back to back into a reusable
//! scratch buffer, preceded by a batch header frame
//!
//! ```text
//! ┌──────────┬─────────────┬─────────────┐
//! │ 0xD8  u8 │ count u32 LE│ check u64 LE│
//! └──────────┴─────────────┴─────────────┘
//! ```
//!
//! and the whole thing is handed to the storage as a single append.
//! Each record keeps its own frame, so a crash inside the batch tears
//! at most one record — but a batch is acknowledged as a unit, so
//! recovery treats it as a unit too: a header whose `count` frames are
//! not all intact marks the torn tail, and truncation drops the batch
//! wholesale (only the torn suffix of the log — everything before the
//! header is untouched). The invariant callers rely on is therefore
//! unchanged by batching: **a record is recovered iff its append was
//! acknowledged** — never a prefix of a failed batch, which would
//! surface grants the caller already released.
//!
//! A snapshot file holds one framed record: the caller's compacted
//! state. `snap-<seq>` means "this state covers every segment with
//! sequence `< seq`"; [`Wal::snapshot`] writes the new snapshot first
//! and only then deletes the segments it covers (and older snapshots),
//! so a crash anywhere in between recovers either the old
//! snapshot+segments or the new snapshot — never a gap.

use std::fmt;
use std::io;

use crate::storage::WalStorage;

/// Frame header: magic byte + payload length + checksum.
const HEADER: usize = 1 + 4 + 8;
/// First byte of every frame; anything else is corruption.
const MAGIC: u8 = 0xD7;
/// First byte of a batch header: `count` record frames follow and are
/// valid only as a unit.
const MAGIC_BATCH: u8 = 0xD8;
/// Upper bound on a single record, to reject absurd torn lengths fast.
const MAX_RECORD: u32 = 1 << 28;
/// Upper bound on records per batch, for the same reason.
const MAX_BATCH: u32 = 1 << 20;

/// An error from the WAL.
#[derive(Debug)]
pub enum WalError {
    /// A storage operation failed. After a failed append the log is
    /// [broken](WalError::Broken) — the tail may be torn.
    Io(io::Error),
    /// Persistent state that cannot be interpreted (decode errors in
    /// the caller's payloads surface here too).
    Corrupt(String),
    /// The log refused an operation because an earlier append failed:
    /// appending after a torn tail would bury garbage inside the
    /// stream. Reopen (which truncates the tail) to resume.
    Broken,
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "wal i/o error: {e}"),
            Self::Corrupt(what) => write!(f, "wal corrupt: {what}"),
            Self::Broken => write!(
                f,
                "wal broken by an earlier failed append; reopen to resume"
            ),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// WAL tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Rotate to a fresh segment once the active one reaches this many
    /// bytes.
    pub segment_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self {
            segment_bytes: 1 << 20,
        }
    }
}

/// What [`Wal::open`] found: the latest snapshot (if any) and every
/// record appended after it, in append order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovered {
    /// The payload of the newest valid snapshot.
    pub snapshot: Option<Vec<u8>>,
    /// Records appended since that snapshot, oldest first.
    pub records: Vec<Vec<u8>>,
    /// Whether a torn tail was truncated during open.
    pub truncated_tail: bool,
    /// Append operations recovered since that snapshot: each singleton
    /// record and each all-or-nothing batch counts one (a one-record
    /// [`Wal::append_batch`] writes no batch header, so it counts like
    /// the plain append it degenerates to). A replication replica that
    /// applies exactly one append per shipped batch resumes its stream
    /// sequence from this.
    pub appends: u64,
}

/// Cumulative write counters of one [`Wal`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalCounters {
    /// Records acknowledged by [`Wal::append`] and
    /// [`Wal::append_batch`].
    pub records: u64,
    /// Framed bytes acknowledged (headers included).
    pub bytes: u64,
    /// Snapshots taken by [`Wal::snapshot`].
    pub snapshots: u64,
    /// Storage writes acknowledged — each is one write + one sync on a
    /// syncing backend, so this is the fsync count group commit
    /// amortizes. Appends, batch flushes, and snapshot writes all
    /// count one each.
    pub syncs: u64,
    /// Batches acknowledged by [`Wal::append_batch`].
    pub batches: u64,
    /// Records acknowledged inside batches (`records` minus the
    /// singleton appends).
    pub batched_records: u64,
    /// Smallest acknowledged batch (0 until the first batch).
    pub batch_min: u64,
    /// Largest acknowledged batch.
    pub batch_max: u64,
}

impl WalCounters {
    /// Folds another log's counters into this one (aggregating across
    /// a multi-log service). Keeps the `batch_min == 0 ⇒ no batches
    /// yet` convention in one place.
    pub fn absorb(&mut self, other: WalCounters) {
        self.records += other.records;
        self.bytes += other.bytes;
        self.snapshots += other.snapshots;
        self.syncs += other.syncs;
        self.batches += other.batches;
        self.batched_records += other.batched_records;
        self.batch_max = self.batch_max.max(other.batch_max);
        if other.batch_min > 0 {
            self.batch_min = if self.batch_min == 0 {
                other.batch_min
            } else {
                self.batch_min.min(other.batch_min)
            };
        }
    }
}

/// What one acknowledged [`Wal::append_batch`] made durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendReceipt {
    /// Records in the batch.
    pub records: usize,
    /// Framed bytes written (batch header included).
    pub bytes: u64,
}

/// Observability hooks one [`Wal`] reports into (see
/// [`Wal::instrument`]). All handles come from `dpack-obs`; a disabled
/// histogram makes every record a single branch.
#[derive(Debug, Clone)]
pub struct WalTelemetry {
    /// The time seam the append latency spans are measured on.
    pub clock: std::sync::Arc<dyn dpack_obs::Clock>,
    /// Latency of each storage write+sync (`dpack_wal_append_nanos`):
    /// the fsync cost group commit amortizes.
    pub append_nanos: dpack_obs::Histogram,
    /// Acknowledged batch sizes (`dpack_wal_batch_records`).
    pub batch_records: dpack_obs::Histogram,
}

/// An append-only write-ahead log over a [`WalStorage`] namespace.
pub struct Wal {
    storage: Box<dyn WalStorage>,
    opts: WalOptions,
    /// Sequence of the active segment (created lazily on append).
    active_seq: u64,
    active_len: u64,
    broken: bool,
    counters: WalCounters,
    telemetry: Option<WalTelemetry>,
    /// Reusable framing buffer: appends and batch flushes encode into
    /// it instead of allocating per record.
    scratch: Vec<u8>,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wal")
            .field("active_seq", &self.active_seq)
            .field("active_len", &self.active_len)
            .field("broken", &self.broken)
            .field("counters", &self.counters)
            .finish_non_exhaustive()
    }
}

fn seg_name(seq: u64) -> String {
    format!("seg-{seq:016x}")
}

fn snap_name(seq: u64) -> String {
    format!("snap-{seq:016x}")
}

fn parse_name(name: &str) -> Option<(bool, u64)> {
    let (is_snap, hex) = if let Some(h) = name.strip_prefix("seg-") {
        (false, h)
    } else if let Some(h) = name.strip_prefix("snap-") {
        (true, h)
    } else {
        return None;
    };
    (hex.len() == 16)
        .then(|| u64::from_str_radix(hex, 16).ok())
        .flatten()
        .map(|seq| (is_snap, seq))
}

/// FNV-1a 64 — the same stable, dependency-free hash the check runner
/// uses for seeds. Shared with the tier segment store ([`crate::tier`])
/// so both on-disk formats carry the same checksum discipline.
pub(crate) fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut hash = state;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

pub(crate) const FNV_INIT: u64 = 0xcbf2_9ce4_8422_2325;

/// Frames a payload into `out`: magic, length, checksum, payload.
fn frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    let len = u32::try_from(payload.len()).expect("record exceeds u32 length");
    assert!(
        len <= MAX_RECORD,
        "record exceeds the {MAX_RECORD}-byte cap"
    );
    let len_le = len.to_le_bytes();
    let check = fnv1a(fnv1a(FNV_INIT, &len_le), payload);
    out.reserve(HEADER + payload.len());
    out.push(MAGIC);
    out.extend_from_slice(&len_le);
    out.extend_from_slice(&check.to_le_bytes());
    out.extend_from_slice(payload);
}

/// Frames a payload into a fresh buffer (cold paths and tests; hot
/// paths reuse a scratch buffer via [`frame_into`]).
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER + payload.len());
    frame_into(&mut out, payload);
    out
}

/// Frames a batch header into `out`: `count` record frames follow.
fn frame_batch_header(out: &mut Vec<u8>, count: u32) {
    let count_le = count.to_le_bytes();
    let check = fnv1a(FNV_INIT, &count_le);
    out.push(MAGIC_BATCH);
    out.extend_from_slice(&count_le);
    out.extend_from_slice(&check.to_le_bytes());
}

/// Parses one record frame at `bytes[at..]`; returns the payload and
/// the offset past the frame, or `None` if the frame is torn, corrupt,
/// or not a record frame.
fn parse_record(bytes: &[u8], at: usize) -> Option<(&[u8], usize)> {
    let rest = &bytes[at..];
    if rest.len() < HEADER || rest[0] != MAGIC {
        return None;
    }
    let len = u32::from_le_bytes(rest[1..5].try_into().expect("sized slice"));
    if len > MAX_RECORD || rest.len() - HEADER < len as usize {
        return None;
    }
    let check = u64::from_le_bytes(rest[5..13].try_into().expect("sized slice"));
    let payload = &rest[HEADER..HEADER + len as usize];
    if fnv1a(fnv1a(FNV_INIT, &len.to_le_bytes()), payload) != check {
        return None;
    }
    Some((payload, at + HEADER + len as usize))
}

/// Parses frames from the start of `bytes`; returns the records, the
/// byte offset of the first invalid frame (== `bytes.len()` when the
/// whole file is valid), and the append-unit count (one per singleton
/// record, one per batch). A batch (header + `count` record frames) is
/// valid only as a unit: if any of its frames is torn, the whole batch
/// — from its header on — is the torn tail.
fn parse_frames(bytes: &[u8]) -> (Vec<Vec<u8>>, usize, u64) {
    let mut records = Vec::new();
    let mut at = 0usize;
    let mut appends = 0u64;
    while bytes.len() - at >= HEADER {
        match bytes[at] {
            MAGIC => match parse_record(bytes, at) {
                Some((payload, next)) => {
                    records.push(payload.to_vec());
                    at = next;
                    appends += 1;
                }
                None => break,
            },
            MAGIC_BATCH => {
                let rest = &bytes[at..];
                let count = u32::from_le_bytes(rest[1..5].try_into().expect("sized slice"));
                let check = u64::from_le_bytes(rest[5..13].try_into().expect("sized slice"));
                if !(2..=MAX_BATCH).contains(&count)
                    || fnv1a(FNV_INIT, &count.to_le_bytes()) != check
                {
                    break;
                }
                // The batch stands or falls as a unit: collect all
                // `count` frames before committing any of them.
                let mut batch = Vec::with_capacity(count as usize);
                let mut cursor = at + HEADER;
                for _ in 0..count {
                    match parse_record(bytes, cursor) {
                        Some((payload, next)) => {
                            batch.push(payload.to_vec());
                            cursor = next;
                        }
                        None => break,
                    }
                }
                if batch.len() < count as usize {
                    break;
                }
                records.append(&mut batch);
                at = cursor;
                appends += 1;
            }
            _ => break,
        }
    }
    (records, at, appends)
}

/// Scans a storage namespace: picks the newest valid snapshot, replays
/// the segments after it in order, truncates a torn tail, removes
/// obsolete files, and returns (recovered state, active segment seq,
/// active segment length).
fn scan(storage: &dyn WalStorage, opts: WalOptions) -> Result<(Recovered, u64, u64), WalError> {
    let mut segs: Vec<u64> = Vec::new();
    let mut snaps: Vec<u64> = Vec::new();
    for name in storage.list()? {
        match parse_name(&name) {
            Some((true, seq)) => snaps.push(seq),
            Some((false, seq)) => segs.push(seq),
            None => {} // Foreign file; leave it alone.
        }
    }
    segs.sort_unstable();
    snaps.sort_unstable();

    // Newest snapshot whose single record validates; torn snapshot
    // files (a crash mid-snapshot) are deleted.
    let mut snapshot: Option<(u64, Vec<u8>)> = None;
    for &seq in snaps.iter().rev() {
        if snapshot.is_some() {
            storage.remove(&snap_name(seq))?;
            continue;
        }
        let bytes = storage.read(&snap_name(seq))?;
        let (mut records, valid, _) = parse_frames(&bytes);
        if records.len() == 1 && valid == bytes.len() {
            snapshot = Some((seq, records.remove(0)));
        } else {
            storage.remove(&snap_name(seq))?;
        }
    }
    let base = snapshot.as_ref().map_or(0, |(seq, _)| *seq);

    // Segments the snapshot covers are obsolete (left behind by a
    // crash between snapshot write and deletion).
    let mut truncated_tail = false;
    let mut records = Vec::new();
    let mut appends = 0u64;
    let mut live: Vec<u64> = Vec::new();
    let mut stop = false;
    for &seq in &segs {
        if seq < base {
            storage.remove(&seg_name(seq))?;
            continue;
        }
        if stop {
            // Everything after a torn segment is unreachable log
            // space; drop it so the prefix property holds.
            storage.remove(&seg_name(seq))?;
            truncated_tail = true;
            continue;
        }
        let bytes = storage.read(&seg_name(seq))?;
        let (recs, valid, units) = parse_frames(&bytes);
        records.extend(recs);
        appends += units;
        live.push(seq);
        if valid < bytes.len() {
            storage.truncate(&seg_name(seq), valid as u64)?;
            truncated_tail = true;
            stop = true;
        }
    }

    // Resume appending at the tail (or rotate past a full one).
    let (active_seq, active_len) = match live.last() {
        Some(&seq) => {
            let len = storage.read(&seg_name(seq))?.len() as u64;
            if len >= opts.segment_bytes {
                (seq + 1, 0)
            } else {
                (seq, len)
            }
        }
        None => (base, 0),
    };

    Ok((
        Recovered {
            snapshot: snapshot.map(|(_, state)| state),
            records,
            truncated_tail,
            appends,
        },
        active_seq,
        active_len,
    ))
}

impl Wal {
    /// Opens (or creates) the log in a storage namespace, recovering
    /// its state: picks the newest valid snapshot, replays the segments
    /// after it in order, truncates a torn tail, and removes files the
    /// snapshot has made obsolete (cleanup a crash mid-[`snapshot`]
    /// may have left behind).
    ///
    /// [`snapshot`]: Wal::snapshot
    ///
    /// # Errors
    ///
    /// Storage errors only — torn tails are repaired, not reported.
    pub fn open(
        storage: Box<dyn WalStorage>,
        opts: WalOptions,
    ) -> Result<(Self, Recovered), WalError> {
        let (recovered, active_seq, active_len) = scan(&*storage, opts)?;
        Ok((
            Self {
                storage,
                opts,
                active_seq,
                active_len,
                broken: false,
                counters: WalCounters::default(),
                telemetry: None,
                scratch: Vec::new(),
            },
            recovered,
        ))
    }

    /// Attaches observability hooks: every subsequent storage
    /// write+sync is timed on the telemetry clock into `append_nanos`,
    /// and every acknowledged batch reports its size into
    /// `batch_records`. Un-instrumented logs skip all of it.
    pub fn instrument(&mut self, telemetry: WalTelemetry) {
        self.telemetry = Some(telemetry);
    }

    /// Re-scans the storage and resumes a [broken](WalError::Broken)
    /// log: truncates the torn tail a failed append left behind and
    /// accepts appends again. The caller's in-memory state is already
    /// consistent with the repaired log — a mutation only ever follows
    /// an acknowledged append, and repair removes only unacknowledged
    /// bytes. No-op on a healthy log.
    ///
    /// # Errors
    ///
    /// Storage errors (the storage is still failing); the log stays
    /// broken in that case.
    pub fn repair(&mut self) -> Result<(), WalError> {
        if !self.broken {
            return Ok(());
        }
        let (_, active_seq, active_len) = scan(&*self.storage, self.opts)?;
        self.active_seq = active_seq;
        self.active_len = active_len;
        self.broken = false;
        Ok(())
    }

    /// Appends one record durably; on `Ok` the record survives any
    /// crash.
    ///
    /// # Errors
    ///
    /// A failed append may leave a torn tail, so it marks the log
    /// [`WalError::Broken`]: all further appends fail until reopen.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), WalError> {
        if self.broken {
            return Err(WalError::Broken);
        }
        self.scratch.clear();
        frame_into(&mut self.scratch, payload);
        let started = self.telemetry.as_ref().map(|t| t.clock.now_nanos());
        let wrote = self
            .storage
            .append(&seg_name(self.active_seq), &self.scratch);
        self.observe_write(started);
        if let Err(e) = wrote {
            self.broken = true;
            return Err(WalError::Io(e));
        }
        self.counters.records += 1;
        self.counters.syncs += 1;
        self.finish_write(self.scratch.len() as u64);
        Ok(())
    }

    /// Appends a batch of records durably with **one** storage write
    /// and one sync — the group-commit primitive. On `Ok` every record
    /// in the batch survives any crash; on `Err` *none* does: the
    /// batch is framed so that recovery drops a partially persisted
    /// batch wholesale (see the module docs), which is what lets a
    /// caller that released the batch's work on failure trust that no
    /// prefix of it resurfaces after reboot.
    ///
    /// An empty batch is a no-op; a single-record batch is equivalent
    /// to [`Wal::append`] (no batch header is written).
    ///
    /// # Errors
    ///
    /// Like [`Wal::append`], a failure marks the log
    /// [`WalError::Broken`] until reopened or repaired.
    pub fn append_batch(&mut self, payloads: &[&[u8]]) -> Result<AppendReceipt, WalError> {
        if self.broken {
            return Err(WalError::Broken);
        }
        if payloads.is_empty() {
            return Ok(AppendReceipt {
                records: 0,
                bytes: 0,
            });
        }
        let count = u32::try_from(payloads.len()).expect("batch exceeds u32 records");
        assert!(
            count <= MAX_BATCH,
            "batch exceeds the {MAX_BATCH}-record cap"
        );
        self.scratch.clear();
        if count >= 2 {
            frame_batch_header(&mut self.scratch, count);
        }
        for payload in payloads {
            frame_into(&mut self.scratch, payload);
        }
        let started = self.telemetry.as_ref().map(|t| t.clock.now_nanos());
        let wrote = self
            .storage
            .append(&seg_name(self.active_seq), &self.scratch);
        self.observe_write(started);
        if let Err(e) = wrote {
            self.broken = true;
            return Err(WalError::Io(e));
        }
        let n = payloads.len() as u64;
        if let Some(t) = &self.telemetry {
            t.batch_records.record(n);
        }
        self.counters.records += n;
        self.counters.syncs += 1;
        self.counters.batches += 1;
        self.counters.batched_records += n;
        self.counters.batch_min = if self.counters.batch_min == 0 {
            n
        } else {
            self.counters.batch_min.min(n)
        };
        self.counters.batch_max = self.counters.batch_max.max(n);
        let bytes = self.scratch.len() as u64;
        self.finish_write(bytes);
        Ok(AppendReceipt {
            records: payloads.len(),
            bytes,
        })
    }

    /// Closes the latency span an instrumented write opened. Failed
    /// writes are timed too: a slow failing disk is exactly what the
    /// histogram should show.
    fn observe_write(&self, started: Option<u64>) {
        if let (Some(t), Some(started)) = (&self.telemetry, started) {
            t.append_nanos
                .record(t.clock.now_nanos().saturating_sub(started));
        }
    }

    /// Bookkeeping shared by acknowledged writes: byte counters and
    /// segment rotation.
    fn finish_write(&mut self, bytes: u64) {
        self.active_len += bytes;
        self.counters.bytes += bytes;
        if self.active_len >= self.opts.segment_bytes {
            self.active_seq += 1;
            self.active_len = 0;
        }
    }

    /// Compacts the log: writes `state` as a snapshot covering every
    /// record appended so far, then deletes the covered segments and
    /// older snapshots. After a crash anywhere inside this call,
    /// [`Wal::open`] recovers either the pre-snapshot state or the
    /// post-snapshot state — never a mix.
    ///
    /// # Errors
    ///
    /// A failed snapshot *write* breaks the log like a failed append; a
    /// failed cleanup deletion is reported but leaves the log usable
    /// (open repairs the leftovers).
    pub fn snapshot(&mut self, state: &[u8]) -> Result<(), WalError> {
        if self.broken {
            return Err(WalError::Broken);
        }
        let new_base = self.active_seq + 1;
        let started = self.telemetry.as_ref().map(|t| t.clock.now_nanos());
        let wrote = self.storage.append(&snap_name(new_base), &frame(state));
        self.observe_write(started);
        if let Err(e) = wrote {
            self.broken = true;
            return Err(WalError::Io(e));
        }
        self.counters.snapshots += 1;
        self.counters.syncs += 1;
        let old_active = self.active_seq;
        self.active_seq = new_base;
        self.active_len = 0;
        // Cleanup: the snapshot is durable, so failures past this point
        // only leave garbage that the next open removes.
        for name in self.storage.list()? {
            match parse_name(&name) {
                Some((false, seq)) if seq <= old_active => self.storage.remove(&name)?,
                Some((true, seq)) if seq < new_base => self.storage.remove(&name)?,
                _ => {}
            }
        }
        Ok(())
    }

    /// Whether an earlier failed append has broken the log.
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// Cumulative write counters.
    pub fn counters(&self) -> WalCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::SimStorage;

    fn reopen(storage: &SimStorage) -> (Wal, Recovered) {
        Wal::open(
            Box::new(storage.surviving()),
            WalOptions { segment_bytes: 64 },
        )
        .expect("open on surviving storage")
    }

    #[test]
    fn append_and_recover_in_order() {
        let sim = SimStorage::new();
        let (mut wal, rec) = Wal::open(Box::new(sim.clone()), WalOptions::default()).unwrap();
        assert_eq!(
            rec,
            Recovered {
                snapshot: None,
                records: vec![],
                truncated_tail: false,
                appends: 0
            }
        );
        for i in 0..20u8 {
            wal.append(&[i; 3]).unwrap();
        }
        assert_eq!(wal.counters().records, 20);
        let (_, rec) = reopen(&sim);
        assert_eq!(
            rec.records,
            (0..20u8).map(|i| vec![i; 3]).collect::<Vec<_>>()
        );
        assert!(!rec.truncated_tail);
        assert_eq!(rec.appends, 20);
    }

    #[test]
    fn rotation_spreads_records_over_segments() {
        let sim = SimStorage::new();
        let (mut wal, _) =
            Wal::open(Box::new(sim.clone()), WalOptions { segment_bytes: 40 }).unwrap();
        for i in 0..10u8 {
            wal.append(&[i; 8]).unwrap();
        }
        let segs = sim
            .list()
            .unwrap()
            .into_iter()
            .filter(|n| n.starts_with("seg-"))
            .count();
        assert!(segs > 1, "no rotation happened");
        let (_, rec) = reopen(&sim);
        assert_eq!(rec.records.len(), 10);
    }

    #[test]
    fn torn_tail_is_truncated_to_the_acknowledged_prefix() {
        // Find the framed size, then crash inside the 4th record.
        let framed = frame(&[7u8; 5]).len() as u64;
        let sim = SimStorage::with_crash_after(3 * framed + framed / 2);
        let (mut wal, _) = Wal::open(Box::new(sim.clone()), WalOptions::default()).unwrap();
        for i in 0..3u8 {
            wal.append(&[i; 5]).unwrap();
        }
        assert!(matches!(wal.append(&[3u8; 5]), Err(WalError::Io(_))));
        assert!(matches!(wal.append(&[4u8; 5]), Err(WalError::Broken)));
        let (_, rec) = reopen(&sim);
        assert_eq!(rec.records, vec![vec![0u8; 5], vec![1u8; 5], vec![2u8; 5]]);
        assert!(rec.truncated_tail);
    }

    #[test]
    fn snapshot_compacts_and_recovers_suffix() {
        let sim = SimStorage::new();
        let (mut wal, _) =
            Wal::open(Box::new(sim.clone()), WalOptions { segment_bytes: 32 }).unwrap();
        for i in 0..6u8 {
            wal.append(&[i; 4]).unwrap();
        }
        wal.snapshot(b"state-after-6").unwrap();
        wal.append(b"tail").unwrap();
        // Compaction actually removed the old segments.
        let files = sim.list().unwrap();
        assert!(
            files.iter().filter(|n| n.starts_with("seg-")).count() <= 1,
            "{files:?}"
        );
        let (_, rec) = reopen(&sim);
        assert_eq!(rec.snapshot.as_deref(), Some(&b"state-after-6"[..]));
        assert_eq!(rec.records, vec![b"tail".to_vec()]);
    }

    #[test]
    fn crash_during_snapshot_recovers_old_or_new_never_a_mix() {
        // Sweep every byte offset across a snapshot call; recovery must
        // see either the full pre-snapshot log or the full snapshot.
        let records: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 6]).collect();
        let setup_bytes: u64 = records.iter().map(|r| frame(r).len() as u64).sum();
        let snap_bytes = frame(b"compacted").len() as u64;
        for extra in 0..=snap_bytes {
            let sim = SimStorage::with_crash_after(setup_bytes + extra);
            let (mut wal, _) = Wal::open(
                Box::new(sim.clone()),
                WalOptions {
                    segment_bytes: 1 << 20,
                },
            )
            .unwrap();
            for r in &records {
                wal.append(r).unwrap();
            }
            let snap_result = wal.snapshot(b"compacted");
            let (_, rec) = reopen(&sim);
            if extra < snap_bytes {
                assert!(snap_result.is_err());
                assert_eq!(rec.snapshot, None, "torn snapshot must be discarded");
                assert_eq!(rec.records, records, "pre-snapshot log must survive");
            } else {
                // Snapshot durable; the crash hit cleanup (or nothing).
                assert_eq!(rec.snapshot.as_deref(), Some(&b"compacted"[..]));
                assert_eq!(rec.records, Vec::<Vec<u8>>::new());
            }
        }
    }

    #[test]
    fn repair_resumes_a_log_broken_by_a_transient_fault() {
        let sim = SimStorage::new();
        let (mut wal, _) = Wal::open(Box::new(sim.clone()), WalOptions::default()).unwrap();
        wal.append(b"before").unwrap();
        sim.set_append_errors(true);
        assert!(matches!(wal.append(b"lost"), Err(WalError::Io(_))));
        assert!(wal.is_broken());
        assert!(matches!(wal.append(b"refused"), Err(WalError::Broken)));
        // Storage heals; repair truncates nothing here (the transient
        // fault persisted no bytes) and accepts appends again.
        sim.set_append_errors(false);
        wal.repair().unwrap();
        assert!(!wal.is_broken());
        wal.append(b"after").unwrap();
        let (_, rec) = reopen(&sim);
        assert_eq!(rec.records, vec![b"before".to_vec(), b"after".to_vec()]);
        // Repair on a healthy log is a no-op.
        wal.repair().unwrap();
        // Repair while the storage still fails leaves the log broken:
        // scan succeeds (reads work) but the next append fails again.
        sim.set_append_errors(true);
        assert!(wal.append(b"x").is_err());
        sim.set_append_errors(false);
        wal.repair().unwrap();
        wal.append(b"final").unwrap();
        let (_, rec) = reopen(&sim);
        assert_eq!(rec.records.len(), 3);
    }

    #[test]
    fn append_batch_recovers_in_order_with_one_sync() {
        let sim = SimStorage::new();
        let (mut wal, _) = Wal::open(Box::new(sim.clone()), WalOptions::default()).unwrap();
        wal.append(b"solo").unwrap();
        let batch: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 4]).collect();
        let views: Vec<&[u8]> = batch.iter().map(Vec::as_slice).collect();
        let receipt = wal.append_batch(&views).unwrap();
        assert_eq!(receipt.records, 5);
        assert_eq!(receipt.bytes, HEADER as u64 + 5 * (HEADER as u64 + 4));
        let c = wal.counters();
        assert_eq!(c.records, 6);
        assert_eq!(c.syncs, 2, "one sync for the solo, one for the batch");
        assert_eq!((c.batches, c.batched_records), (1, 5));
        assert_eq!((c.batch_min, c.batch_max), (5, 5));
        let (_, rec) = reopen(&sim);
        let mut want = vec![b"solo".to_vec()];
        want.extend(batch);
        assert_eq!(rec.records, want);
        assert_eq!(rec.appends, 2, "one solo unit + one batch unit");
    }

    #[test]
    fn empty_and_singleton_batches_degenerate_cleanly() {
        let sim = SimStorage::new();
        let (mut wal, _) = Wal::open(Box::new(sim.clone()), WalOptions::default()).unwrap();
        assert_eq!(
            wal.append_batch(&[]).unwrap(),
            AppendReceipt {
                records: 0,
                bytes: 0
            }
        );
        assert_eq!(wal.counters().syncs, 0, "empty batch must not sync");
        // A 1-record batch is a plain append: no header on disk.
        wal.append_batch(&[b"only"]).unwrap();
        assert_eq!(sim.bytes_written(), HEADER as u64 + 4);
        assert_eq!(wal.counters().batch_min, 1);
        let (_, rec) = reopen(&sim);
        assert_eq!(rec.records, vec![b"only".to_vec()]);
        assert_eq!(rec.appends, 1, "a degenerate batch is one append unit");
    }

    #[test]
    fn a_crash_inside_any_record_of_a_batch_drops_the_whole_batch() {
        // Sweep every byte offset across a 3-record batched write: the
        // records before it must survive untouched, the batch must
        // vanish as a unit (all-or-nothing acknowledgement), and
        // nothing later may appear.
        let batch: Vec<Vec<u8>> = (0..3u8).map(|i| vec![i; 6]).collect();
        let views: Vec<&[u8]> = batch.iter().map(Vec::as_slice).collect();
        let batch_bytes = (HEADER + 3 * (HEADER + 6)) as u64;
        for extra in 0..batch_bytes {
            let sim = SimStorage::new();
            let (mut wal, _) = Wal::open(Box::new(sim.clone()), WalOptions::default()).unwrap();
            wal.append(b"before").unwrap();
            sim.arm_crash_after(extra);
            assert!(
                matches!(wal.append_batch(&views), Err(WalError::Io(_))),
                "crash at +{extra} must fail the batch"
            );
            assert!(matches!(wal.append(b"later"), Err(WalError::Broken)));
            let (_, rec) = reopen(&sim);
            assert_eq!(
                rec.records,
                vec![b"before".to_vec()],
                "crash at +{extra} leaked part of the batch"
            );
        }
        // On the boundary (the full batch landed) everything survives.
        let sim = SimStorage::new();
        let (mut wal, _) = Wal::open(Box::new(sim.clone()), WalOptions::default()).unwrap();
        wal.append(b"before").unwrap();
        sim.arm_crash_after(batch_bytes);
        wal.append_batch(&views).unwrap();
        let (_, rec) = reopen(&sim);
        assert_eq!(rec.records.len(), 4);
    }

    #[test]
    fn batches_interleave_with_appends_snapshots_and_rotation() {
        let sim = SimStorage::new();
        let (mut wal, _) =
            Wal::open(Box::new(sim.clone()), WalOptions { segment_bytes: 64 }).unwrap();
        let batch: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 8]).collect();
        let views: Vec<&[u8]> = batch.iter().map(Vec::as_slice).collect();
        wal.append_batch(&views).unwrap(); // Oversized batch rotates after.
        wal.append(b"single").unwrap();
        wal.append_batch(&views).unwrap();
        let segs = sim
            .list()
            .unwrap()
            .into_iter()
            .filter(|n| n.starts_with("seg-"))
            .count();
        assert!(segs > 1, "no rotation happened");
        let (_, rec) = reopen(&sim);
        assert_eq!(rec.records.len(), 9);
        wal.snapshot(b"folded").unwrap();
        wal.append_batch(&views).unwrap();
        let (_, rec) = reopen(&sim);
        assert_eq!(rec.snapshot.as_deref(), Some(&b"folded"[..]));
        assert_eq!(rec.records, batch);
    }

    #[test]
    fn empty_and_garbage_files_are_tolerated() {
        let sim = SimStorage::new();
        sim.append("not-a-wal-file", b"junk").unwrap();
        sim.append("seg-zzzz", b"junk").unwrap(); // Unparseable name.
        let (mut wal, rec) = Wal::open(Box::new(sim.clone()), WalOptions::default()).unwrap();
        assert!(rec.records.is_empty());
        wal.append(b"first").unwrap();
        let (_, rec) = reopen(&sim);
        assert_eq!(rec.records, vec![b"first".to_vec()]);
    }

    #[test]
    fn reopen_resumes_the_active_segment() {
        let sim = SimStorage::new();
        let (mut wal, _) = Wal::open(
            Box::new(sim.clone()),
            WalOptions {
                segment_bytes: 1 << 20,
            },
        )
        .unwrap();
        wal.append(b"one").unwrap();
        drop(wal);
        let (mut wal, rec) = Wal::open(
            Box::new(sim.clone()),
            WalOptions {
                segment_bytes: 1 << 20,
            },
        )
        .unwrap();
        assert_eq!(rec.records.len(), 1);
        wal.append(b"two").unwrap();
        let (_, rec) = reopen(&sim);
        assert_eq!(rec.records, vec![b"one".to_vec(), b"two".to_vec()]);
    }

    #[test]
    fn instrumented_writes_report_exact_spans_and_batch_sizes() {
        use dpack_obs::{Histogram, ManualClock};
        let sim = SimStorage::new();
        let (mut wal, _) = Wal::open(Box::new(sim), WalOptions::default()).unwrap();
        let clock = std::sync::Arc::new(ManualClock::with_tick(10));
        let append_nanos = Histogram::new();
        let batch_records = Histogram::new();
        wal.instrument(WalTelemetry {
            clock,
            append_nanos: append_nanos.clone(),
            batch_records: batch_records.clone(),
        });
        wal.append(b"solo").unwrap();
        wal.append_batch(&[b"a", b"b", b"c"]).unwrap();
        // Each write spans exactly two auto-ticking clock reads.
        let spans = append_nanos.snapshot();
        assert_eq!(spans.count, 2);
        assert_eq!(spans.sum, 20);
        let sizes = batch_records.snapshot();
        assert_eq!(sizes.count, 1);
        assert_eq!(sizes.max, 3);
    }
}
