//! Checksummed segment files for the ledger's cold tier.
//!
//! A [`SegmentStore`] is *ephemeral spill space*, not a log: the
//! tiered ledger offloads cold blocks here to bound RSS, while the WAL
//! and its snapshots remain the only durability source. That division
//! shows up in three places:
//!
//! * [`SegmentStore::open`] wipes whatever a previous process left
//!   behind — recovery re-materializes every block from the WAL and
//!   re-spills lazily, so stale spill files are garbage by definition.
//! * Entries are addressed by the [`EntryRef`] returned at append
//!   time; there is no scan-and-recover path, and a torn tail from a
//!   failed write is unreachable garbage rather than a recovery
//!   hazard (the store rotates to a fresh segment after any failed
//!   append so tracked offsets never drift onto torn bytes).
//! * Each entry still carries the WAL's framing discipline — magic
//!   byte, length, FNV-1a checksum over `len ‖ payload` — because the
//!   store runs over the same [`WalStorage`] seam as the WAL, which is
//!   what lets `SimStorage` crash/fault injection cover the tier for
//!   free, and a faulted-in block must never be rebuilt from bytes a
//!   torn or corrupt read produced.
//!
//! Segments rotate at [`SegmentOptions::segment_bytes`]; releasing the
//! last live entry of a sealed segment deletes its file. Rewriting
//! mostly-dead segments is the caller's job (the ledger folds it into
//! its compaction pass): read the live entries, re-append, release the
//! old refs.

use std::collections::BTreeMap;
use std::io;

use crate::log::{fnv1a, FNV_INIT};
use crate::storage::WalStorage;

/// Tier frames use their own magic so a tier segment mistakenly read
/// as a WAL segment (or vice versa) fails loudly at the first frame.
const MAGIC_TIER: u8 = 0xD9;
/// Frame header: magic (1) + payload length (4 LE) + checksum (8 LE).
const HEADER: usize = 1 + 4 + 8;

/// Sizing knobs for a [`SegmentStore`].
#[derive(Debug, Clone, Copy)]
pub struct SegmentOptions {
    /// Rotate to a new segment once the active one reaches this many
    /// bytes (a batch may overshoot; rotation happens between batches).
    pub segment_bytes: u64,
}

impl Default for SegmentOptions {
    fn default() -> Self {
        Self {
            segment_bytes: 1 << 20,
        }
    }
}

/// The address of one spilled entry: which segment, where in it, and
/// how long the payload is. Returned by
/// [`SegmentStore::append_batch`]; the only way to read an entry back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryRef {
    seg: u64,
    off: u64,
    len: u32,
}

impl EntryRef {
    /// The payload length in bytes (excluding the frame header).
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes this entry occupies on disk, header included.
    fn frame_bytes(&self) -> u64 {
        HEADER as u64 + u64::from(self.len)
    }
}

#[derive(Debug, Default)]
struct SegmentMeta {
    /// Entries ever appended to this segment.
    entries: u64,
    /// Entries released since.
    dead_entries: u64,
    /// Tracked length (offset for the next append).
    len: u64,
    /// Bytes occupied by released entries.
    dead_bytes: u64,
}

/// An append-only store of checksummed entries over rotating segment
/// files. Not thread-safe on its own — the ledger keeps one per shard,
/// inside the shard mutex.
pub struct SegmentStore {
    storage: Box<dyn WalStorage>,
    opts: SegmentOptions,
    /// Sequence number of the segment new batches go to.
    active: u64,
    segments: BTreeMap<u64, SegmentMeta>,
}

impl std::fmt::Debug for SegmentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentStore")
            .field("opts", &self.opts)
            .field("active", &self.active)
            .field("segments", &self.segments)
            .finish_non_exhaustive()
    }
}

fn corrupt(what: &str, entry: &EntryRef) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("tier entry at seg {} off {}: {what}", entry.seg, entry.off),
    )
}

impl SegmentStore {
    /// Opens a store over `storage` with default sizing, deleting any
    /// files a previous process left there (spill space is ephemeral;
    /// see the module docs).
    ///
    /// # Errors
    ///
    /// Propagates storage errors from the wipe.
    pub fn open(storage: Box<dyn WalStorage>) -> io::Result<Self> {
        Self::open_with(storage, SegmentOptions::default())
    }

    /// [`SegmentStore::open`] with explicit sizing.
    ///
    /// # Errors
    ///
    /// Propagates storage errors from the wipe.
    pub fn open_with(storage: Box<dyn WalStorage>, opts: SegmentOptions) -> io::Result<Self> {
        for name in storage.list()? {
            storage.remove(&name)?;
        }
        Ok(Self {
            storage,
            opts,
            active: 0,
            segments: BTreeMap::new(),
        })
    }

    fn seg_name(seq: u64) -> String {
        format!("seg-{seq:016x}")
    }

    /// Appends a batch of payloads as one storage write (one fsync on
    /// the fs backend — why the ledger spills victims in batches, not
    /// one by one) and returns one [`EntryRef`] per payload, in order.
    ///
    /// # Errors
    ///
    /// On error nothing is acknowledged: the possibly-torn segment
    /// tail is abandoned and the store rotates to a fresh segment, so
    /// previously returned refs stay valid and the failed payloads are
    /// simply not spilled (the caller keeps them hot).
    ///
    /// # Panics
    ///
    /// Panics if a payload exceeds `u32::MAX` bytes.
    pub fn append_batch(&mut self, payloads: &[&[u8]]) -> io::Result<Vec<EntryRef>> {
        if payloads.is_empty() {
            return Ok(Vec::new());
        }
        if self
            .segments
            .get(&self.active)
            .is_some_and(|m| m.len >= self.opts.segment_bytes)
        {
            self.active += 1;
        }
        let seg = self.active;
        let base = self.segments.get(&seg).map_or(0, |m| m.len);
        let total: usize = payloads.iter().map(|p| HEADER + p.len()).sum();
        let mut buf = Vec::with_capacity(total);
        let mut refs = Vec::with_capacity(payloads.len());
        let mut off = base;
        for payload in payloads {
            let len = u32::try_from(payload.len()).expect("tier entry exceeds u32 length");
            let len_le = len.to_le_bytes();
            let check = fnv1a(fnv1a(FNV_INIT, &len_le), payload);
            buf.push(MAGIC_TIER);
            buf.extend_from_slice(&len_le);
            buf.extend_from_slice(&check.to_le_bytes());
            buf.extend_from_slice(payload);
            refs.push(EntryRef { seg, off, len });
            off += HEADER as u64 + u64::from(len);
        }
        // No fsync: spill space is ephemeral (rebuilt from the WAL on
        // restart), so spills ride the page cache.
        match self.storage.append_nosync(&Self::seg_name(seg), &buf) {
            Ok(()) => {
                let meta = self.segments.entry(seg).or_default();
                meta.len = off;
                meta.entries += refs.len() as u64;
                Ok(refs)
            }
            Err(e) => {
                // A prefix of `buf` may be on disk; never write past it.
                self.active += 1;
                Err(e)
            }
        }
    }

    /// Reads one entry back, verifying the frame (magic, length,
    /// checksum) before returning the payload.
    ///
    /// # Errors
    ///
    /// Storage errors propagate; a frame that fails verification is
    /// [`io::ErrorKind::InvalidData`].
    pub fn read(&self, entry: &EntryRef) -> io::Result<Vec<u8>> {
        let frame = self.storage.read_range(
            &Self::seg_name(entry.seg),
            entry.off,
            HEADER + entry.len as usize,
        )?;
        if frame[0] != MAGIC_TIER {
            return Err(corrupt("bad magic", entry));
        }
        let len_le: [u8; 4] = frame[1..5].try_into().expect("sliced header");
        if u32::from_le_bytes(len_le) != entry.len {
            return Err(corrupt("length mismatch", entry));
        }
        let stored = u64::from_le_bytes(frame[5..HEADER].try_into().expect("sliced header"));
        let payload = &frame[HEADER..];
        if fnv1a(fnv1a(FNV_INIT, &len_le), payload) != stored {
            return Err(corrupt("checksum mismatch", entry));
        }
        Ok(payload.to_vec())
    }

    /// Marks an entry dead (faulted back in, or rewritten elsewhere).
    /// When the last live entry of a non-active segment dies, the
    /// segment file is deleted.
    ///
    /// # Errors
    ///
    /// Propagates storage errors from deleting an emptied segment.
    pub fn release(&mut self, entry: &EntryRef) -> io::Result<()> {
        let Some(meta) = self.segments.get_mut(&entry.seg) else {
            return Ok(());
        };
        meta.dead_entries += 1;
        meta.dead_bytes += entry.frame_bytes();
        if entry.seg != self.active && meta.dead_entries >= meta.entries {
            self.segments.remove(&entry.seg);
            self.storage.remove(&Self::seg_name(entry.seg))?;
        }
        Ok(())
    }

    /// Seals the active segment: subsequent appends go to a fresh
    /// file. Rewrite passes call this first, so the segments they are
    /// draining are all non-active and get deleted the moment their
    /// last live entry is released. No-op if the active segment has
    /// nothing in it yet.
    pub fn rotate(&mut self) {
        if self.segments.contains_key(&self.active) {
            self.active += 1;
        }
    }

    /// Entries appended and not yet released.
    pub fn live_entries(&self) -> u64 {
        self.segments
            .values()
            .map(|m| m.entries - m.dead_entries)
            .sum()
    }

    /// Segment files currently tracked.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Tracked on-disk bytes across segments (torn abandoned tails not
    /// included).
    pub fn bytes(&self) -> u64 {
        self.segments.values().map(|m| m.len).sum()
    }

    /// Bytes occupied by released (dead) entries — the rewrite signal
    /// the ledger's compaction pass keys off.
    pub fn dead_bytes(&self) -> u64 {
        self.segments.values().map(|m| m.dead_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::SimStorage;

    fn store(sim: &SimStorage, segment_bytes: u64) -> SegmentStore {
        SegmentStore::open_with(Box::new(sim.clone()), SegmentOptions { segment_bytes })
            .expect("open store")
    }

    #[test]
    fn roundtrips_across_rotation() {
        let sim = SimStorage::new();
        let mut s = store(&sim, 64);
        let payloads: Vec<Vec<u8>> = (0u8..20).map(|i| vec![i; i as usize + 1]).collect();
        let mut refs = Vec::new();
        for chunk in payloads.chunks(3) {
            let batch: Vec<&[u8]> = chunk.iter().map(Vec::as_slice).collect();
            refs.extend(s.append_batch(&batch).expect("append"));
        }
        assert!(s.segment_count() > 1, "rotation never happened");
        for (p, r) in payloads.iter().zip(&refs) {
            assert_eq!(&s.read(r).expect("read"), p);
        }
        assert_eq!(s.live_entries(), 20);
    }

    #[test]
    fn open_wipes_leftover_spill_files() {
        let sim = SimStorage::new();
        let mut s = store(&sim, 1 << 20);
        s.append_batch(&[b"stale"]).expect("append");
        drop(s);
        let s = store(&sim, 1 << 20);
        assert_eq!(s.live_entries(), 0);
        assert!(sim.list().expect("list").is_empty());
    }

    #[test]
    fn releasing_a_sealed_segment_deletes_its_file() {
        let sim = SimStorage::new();
        let mut s = store(&sim, 1);
        let a = s.append_batch(&[b"first"]).expect("append")[0];
        // segment_bytes = 1: the next batch rotates, sealing seg 0.
        let b = s.append_batch(&[b"second"]).expect("append")[0];
        assert_eq!(sim.list().expect("list").len(), 2);
        s.release(&a).expect("release");
        assert_eq!(sim.list().expect("list").len(), 1);
        // The active segment is never deleted mid-life...
        s.release(&b).expect("release");
        assert_eq!(s.live_entries(), 0);
        // ...and dead bytes are visible to the compaction signal.
        assert!(s.dead_bytes() > 0);
    }

    #[test]
    fn rotate_seals_the_active_segment_for_reclamation() {
        let sim = SimStorage::new();
        let mut s = store(&sim, 1 << 20);
        let a = s.append_batch(&[b"old"]).expect("append")[0];
        // Without rotation both entries share the active segment and
        // releasing `a` could never delete the file. Sealing first
        // makes the rewrite reclaim it.
        s.rotate();
        let b = s.append_batch(&[b"rewritten"]).expect("append")[0];
        assert_ne!(a.seg, b.seg);
        s.release(&a).expect("release");
        assert_eq!(sim.list().expect("list").len(), 1);
        assert_eq!(s.read(&b).expect("read"), b"rewritten");
        // Rotating an empty store is a no-op.
        let mut empty = store(&SimStorage::new(), 1 << 20);
        empty.rotate();
        let c = empty.append_batch(&[b"x"]).expect("append")[0];
        assert_eq!(c.seg, 0);
    }

    #[test]
    fn corruption_is_detected_on_read() {
        let sim = SimStorage::new();
        let mut s = store(&sim, 1 << 20);
        let r = s.append_batch(&[b"payload"]).expect("append")[0];
        let name = "seg-0000000000000000";
        let whole = sim.read(name).expect("read file");
        // Flip the payload's last byte in place via truncate + append.
        sim.truncate(name, whole.len() as u64 - 1)
            .expect("truncate");
        sim.append(name, &[whole.last().unwrap() ^ 0xFF])
            .expect("append");
        let err = s.read(&r).expect_err("corrupt read");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"));
        // A truncated (torn) frame surfaces as an error too.
        sim.truncate(name, 4).expect("truncate");
        assert!(s.read(&r).is_err());
    }

    #[test]
    fn failed_appends_abandon_the_segment_and_keep_old_entries() {
        let sim = SimStorage::new();
        let mut s = store(&sim, 1 << 20);
        let ok = s.append_batch(&[b"kept"]).expect("append")[0];
        sim.set_append_errors(true);
        assert!(s.append_batch(&[b"lost"]).is_err());
        sim.set_append_errors(false);
        // New batches land in a fresh segment; the old ref still reads.
        let next = s.append_batch(&[b"after"]).expect("append")[0];
        assert_ne!(next.seg, ok.seg);
        assert_eq!(s.read(&ok).expect("read"), b"kept");
        assert_eq!(s.read(&next).expect("read"), b"after");
    }

    #[test]
    fn injected_crashes_fail_spills_without_corrupting_reads() {
        let sim = SimStorage::new();
        let mut s = store(&sim, 1 << 20);
        let ok = s.append_batch(&[b"durable enough"]).expect("append")[0];
        // Crash mid-way through the next spill: a torn tail lands.
        sim.arm_crash_after(5);
        assert!(s.append_batch(&[b"torn away"]).is_err());
        // Reads stay available on the wreck and verify checksums.
        assert_eq!(s.read(&ok).expect("read"), b"durable enough");
    }
}
