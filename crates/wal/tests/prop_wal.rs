//! dpack-check property suite for the WAL.
//!
//! The central invariant: for **any** seeded op sequence (appends of
//! arbitrary payloads, snapshots, segment rotation) and **any** crash
//! point — including a crash landing mid-record, which `SimStorage`
//! models as a torn prefix write — reopening yields **exactly the
//! acknowledged records, in order**: never a corrupt record, never a
//! reordering, never a loss of an acknowledged append, never a ghost
//! from a torn one.

use dpack_check::{check_cases, ints, prop_assert, prop_assert_eq, vecs, Config, Failed, Strategy};
use dpack_wal::{FsStorage, SimStorage, TempDir, Wal, WalOptions, WalStorage};

const CASES: u32 = 64;

/// One drawn op: `pick < 5` appends the payload, `pick == 5` snapshots.
type Op = (u8, Vec<u8>);
/// (ops, segment_bytes pick, crash byte offset).
type Scenario = (Vec<Op>, u8, u64);

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    vecs(
        (
            ints(0u8..6),
            vecs(ints(0u64..256), 0..24).prop_map(|v| v.iter().map(|x| *x as u8).collect()),
        ),
        1..40,
    )
}

fn segment_bytes(pick: u8) -> u64 {
    // Small segments force rotation mid-sequence; 1 MiB never rotates.
    [32, 64, 256, 1 << 20][usize::from(pick) % 4]
}

/// Applies ops, extending `history` with every append the log
/// acknowledged (oldest first) — the model the recovered state must
/// reproduce exactly. Snapshots persist the *full* history so far,
/// length-prefixed, so a recovered (snapshot, suffix) pair decodes
/// back to it.
fn drive(wal: &mut Wal, ops: &[Op], history: &mut Vec<Vec<u8>>) {
    for (pick, payload) in ops {
        if *pick == 5 {
            if wal.snapshot(&encode_list(history)).is_err() {
                break;
            }
        } else if wal.append(payload).is_ok() {
            history.push(payload.clone());
        } else {
            break;
        }
    }
}

fn encode_list(records: &[Vec<u8>]) -> Vec<u8> {
    let mut buf = Vec::new();
    for r in records {
        buf.extend_from_slice(&(u32::try_from(r.len()).expect("small records")).to_le_bytes());
        buf.extend_from_slice(r);
    }
    buf
}

fn decode_list(mut bytes: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    while !bytes.is_empty() {
        let len = u32::from_le_bytes(bytes[..4].try_into().expect("length prefix")) as usize;
        out.push(bytes[4..4 + len].to_vec());
        bytes = &bytes[4 + len..];
    }
    out
}

/// Reopens the surviving bytes and flattens (snapshot, suffix) back
/// into the logical record list.
fn recovered_history(storage: &SimStorage, segment_bytes: u64) -> Vec<Vec<u8>> {
    let (_, rec) = Wal::open(Box::new(storage.surviving()), WalOptions { segment_bytes })
        .expect("open on surviving storage");
    let mut history = decode_list(rec.snapshot.as_deref().unwrap_or_default());
    history.extend(rec.records.iter().cloned());
    history
}

/// Acknowledged-prefix recovery under arbitrary ops and crash points.
#[test]
fn reopen_yields_exactly_the_acknowledged_records() {
    check_cases(
        "reopen_yields_exactly_the_acknowledged_records",
        CASES,
        (ops_strategy(), ints(0u8..4), ints(0u64..6000)),
        |(ops, seg_pick, crash_at): &Scenario| {
            let seg = segment_bytes(*seg_pick);
            let sim = SimStorage::with_crash_after(*crash_at);
            let (mut wal, rec) =
                Wal::open(Box::new(sim.clone()), WalOptions { segment_bytes: seg })
                    .map_err(|e| Failed::new(format!("open: {e}")))?;
            prop_assert!(rec.records.is_empty(), "fresh log must be empty");
            let mut acked = Vec::new();
            drive(&mut wal, ops, &mut acked);
            let history = recovered_history(&sim, seg);
            prop_assert_eq!(
                &history,
                &acked,
                "recovered history diverged (crash_at {}, seg {})",
                crash_at,
                seg
            );
            // Recovery is deterministic: a second reboot agrees.
            prop_assert_eq!(recovered_history(&sim, seg), history);
            Ok(())
        },
    );
}

/// Without a crash the same holds and the log stays appendable across
/// arbitrarily many reopen cycles.
#[test]
fn reopen_without_crash_is_lossless_and_appendable() {
    check_cases(
        "reopen_without_crash_is_lossless_and_appendable",
        CASES,
        (ops_strategy(), ints(0u8..4)),
        |(ops, seg_pick): &(Vec<Op>, u8)| {
            let seg = segment_bytes(*seg_pick);
            let sim = SimStorage::new();
            // Split the ops over two sessions with a reopen between.
            let half = ops.len() / 2;
            let mut acked = Vec::new();
            for chunk in [&ops[..half], &ops[half..]] {
                let (mut wal, rec) =
                    Wal::open(Box::new(sim.clone()), WalOptions { segment_bytes: seg })
                        .map_err(|e| Failed::new(format!("open: {e}")))?;
                let mut history = decode_list(rec.snapshot.as_deref().unwrap_or_default());
                history.extend(rec.records);
                prop_assert_eq!(&history, &acked, "reopen lost or invented records");
                drive(&mut wal, chunk, &mut acked);
            }
            prop_assert_eq!(recovered_history(&sim, seg), acked);
            Ok(())
        },
    );
}

/// The fs backend round-trips the same histories (no crash injection —
/// that is `SimStorage`'s job), through the panic-safe [`TempDir`].
#[test]
fn fs_backend_round_trips_histories() {
    check_cases(
        "fs_backend_round_trips_histories",
        16,
        (ops_strategy(), ints(0u8..4)),
        |(ops, seg_pick): &(Vec<Op>, u8)| {
            let seg = segment_bytes(*seg_pick);
            let tmp = TempDir::new("prop-fs").map_err(|e| Failed::new(format!("tempdir: {e}")))?;
            let fs = FsStorage::new(tmp.path()).map_err(|e| Failed::new(format!("fs: {e}")))?;
            let (mut wal, _) = Wal::open(
                fs.sub("log")
                    .map_err(|e| Failed::new(format!("sub: {e}")))?,
                WalOptions { segment_bytes: seg },
            )
            .map_err(|e| Failed::new(format!("open: {e}")))?;
            let mut acked = Vec::new();
            drive(&mut wal, ops, &mut acked);
            drop(wal);
            let (_, rec) = Wal::open(
                fs.sub("log")
                    .map_err(|e| Failed::new(format!("sub: {e}")))?,
                WalOptions { segment_bytes: seg },
            )
            .map_err(|e| Failed::new(format!("reopen: {e}")))?;
            let mut history = decode_list(rec.snapshot.as_deref().unwrap_or_default());
            history.extend(rec.records);
            prop_assert_eq!(history, acked);
            Ok(())
        },
    );
}

/// The group-commit invariant under arbitrary batching and crash
/// points: batched ops acknowledge all-or-nothing, so reopening still
/// yields **exactly** the acknowledged records — a crash inside any
/// record of a batched write (header, mid-record, between records)
/// must drop the whole failed batch and nothing before it.
#[test]
fn batched_appends_recover_exactly_the_acknowledged_records() {
    // One drawn op: `pick == 0` snapshots, `pick == 1` single-appends
    // the first payload, otherwise the payloads go through
    // `append_batch` as one group commit.
    type BatchOp = (u8, Vec<Vec<u8>>);
    let payloads = || {
        vecs(
            vecs(ints(0u64..256), 0..12).prop_map(|v| v.iter().map(|x| *x as u8).collect()),
            1..10,
        )
    };
    check_cases(
        "batched_appends_recover_exactly_the_acknowledged_records",
        CASES,
        (
            vecs((ints(0u8..8), payloads()), 1..24),
            ints(0u8..4),
            ints(0u64..6000),
        ),
        |(ops, seg_pick, crash_at): &(Vec<BatchOp>, u8, u64)| {
            let seg = segment_bytes(*seg_pick);
            let sim = SimStorage::with_crash_after(*crash_at);
            let (mut wal, _) = Wal::open(Box::new(sim.clone()), WalOptions { segment_bytes: seg })
                .map_err(|e| Failed::new(format!("open: {e}")))?;
            let mut acked: Vec<Vec<u8>> = Vec::new();
            for (pick, payloads) in ops {
                let result = match pick {
                    0 => wal.snapshot(&encode_list(&acked)).err().map(|_| ()),
                    1 => match wal.append(&payloads[0]) {
                        Ok(()) => {
                            acked.push(payloads[0].clone());
                            None
                        }
                        Err(_) => Some(()),
                    },
                    _ => {
                        let views: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
                        match wal.append_batch(&views) {
                            Ok(receipt) => {
                                prop_assert_eq!(receipt.records, payloads.len());
                                acked.extend(payloads.iter().cloned());
                                None
                            }
                            Err(_) => Some(()),
                        }
                    }
                };
                if result.is_some() {
                    break;
                }
            }
            // All-or-nothing batches: the surviving bytes replay to
            // exactly the acknowledged sequence, never a prefix of a
            // failed batch.
            prop_assert_eq!(
                recovered_history(&sim, seg),
                acked,
                "recovered history diverged (crash_at {}, seg {})",
                crash_at,
                seg
            );
            Ok(())
        },
    );
}

/// Meta: the shrinker minimizes a failing (ops, crash-point) pair — a
/// deliberately broken property must come back as the smallest op list
/// and the smallest crash offset that still fail.
#[test]
fn shrinker_minimizes_the_failing_op_crash_pair() {
    let config = Config {
        cases: 64,
        forced_seed: None,
        max_shrink_evals: 2048,
        max_discards: 256,
    };
    let strategy = (
        vecs(ints(0u64..100), 0..20), // Op payload stand-ins.
        ints(0u64..6000),             // Crash offset.
    );
    // "Bug": any non-empty op list fails, whatever the crash point.
    let failure = dpack_check::run(
        "shrinker_minimizes_the_failing_op_crash_pair",
        &config,
        &strategy,
        &|(ops, _crash)| {
            if ops.is_empty() {
                Ok(())
            } else {
                Err(Failed::new("synthetic failure"))
            }
        },
    )
    .expect_err("the synthetic property must fail");
    assert_eq!(
        failure.value,
        format!("{:#?}", (vec![0u64], 0u64)),
        "expected the 1-minimal op/crash pair, got:\n{}",
        failure.value
    );
}
