//! The microbenchmark curve library (§6.2 of the paper).
//!
//! 620 RDP curves drawn from five realistic mechanism families —
//! Laplace, subsampled Laplace, Gaussian, subsampled Gaussian, and
//! Laplace⊕Gaussian compositions — normalized against the default block
//! budget `(ε_G, δ_G) = (10, 10⁻⁷)` and bucketed by *best alpha*: the
//! grid order at which the curve's normalized demand is smallest, i.e.
//! the order at which a block can host the most copies of the task.
//!
//! As in the paper, the usable best alphas are `{3, 4, 5, 6, 8, 16, 32,
//! 64}` (smaller orders have negative capacity under the default
//! budget), and the library covers every bucket.

use dp_accounting::mechanisms::{
    GaussianMechanism, LaplaceMechanism, Mechanism, SubsampledGaussian, SubsampledLaplace,
};
use dp_accounting::{block_capacity, AlphaGrid, RdpCurve};

/// The mechanism family a curve came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CurveFamily {
    /// Plain Laplace (simple statistics).
    Laplace,
    /// Poisson-subsampled Laplace.
    SubsampledLaplace,
    /// Plain Gaussian (multidimensional statistics / histograms).
    Gaussian,
    /// Poisson-subsampled Gaussian (DP-SGD steps).
    SubsampledGaussian,
    /// Composition of one Laplace and one Gaussian invocation.
    LaplaceGaussian,
}

/// One library entry.
#[derive(Debug, Clone)]
pub struct CurveSpec {
    /// Which family generated the curve.
    pub family: CurveFamily,
    /// The raw RDP curve (unnormalized ε per order).
    pub curve: RdpCurve,
    /// Grid index of the best alpha (argmin of normalized demand over
    /// usable orders).
    pub best_alpha_idx: usize,
    /// The normalized minimum demand `ε_min = min_α d(α)/c(α)`.
    pub eps_min: f64,
}

/// The curve library with best-alpha buckets.
#[derive(Debug, Clone)]
pub struct CurveLibrary {
    grid: AlphaGrid,
    capacity: RdpCurve,
    curves: Vec<CurveSpec>,
    /// `buckets[k]` lists curve indices whose best alpha is
    /// `TARGET_ALPHAS[k]`.
    buckets: Vec<Vec<usize>>,
}

/// The usable best alphas under the default block budget, ascending —
/// the bucket axis of the `σ_α` knob.
pub const TARGET_ALPHAS: [f64; 8] = [3.0, 4.0, 5.0, 6.0, 8.0, 16.0, 32.0, 64.0];

/// Index into [`TARGET_ALPHAS`] of α = 5, the center of the paper's
/// truncated-Gaussian bucket sampling.
pub const CENTER_BUCKET: usize = 2;

/// Computes the best alpha (grid index) and `ε_min` of a curve against a
/// capacity curve; `None` if no order is usable or every usable order
/// has zero demand.
pub fn best_alpha(curve: &RdpCurve, capacity: &RdpCurve) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for (i, _) in capacity.grid().iter() {
        let c = capacity.epsilon(i);
        if c <= 0.0 {
            continue;
        }
        let ratio = curve.epsilon(i) / c;
        if best.is_none_or(|(_, r)| ratio < r) {
            best = Some((i, ratio));
        }
    }
    best.filter(|&(_, r)| r > 0.0)
}

/// Rescales a curve multiplicatively so its normalized minimum demand
/// equals `target_eps_min` — the paper's "shifting the curves up or
/// down" that changes workload size while preserving best alphas.
///
/// # Panics
///
/// Panics if the curve has no usable order or `target_eps_min ≤ 0`.
pub fn rescale_to_eps_min(curve: &RdpCurve, capacity: &RdpCurve, target_eps_min: f64) -> RdpCurve {
    assert!(
        target_eps_min > 0.0 && target_eps_min.is_finite(),
        "target eps_min must be finite and > 0"
    );
    let (_, eps_min) = best_alpha(curve, capacity).expect("curve has a usable order");
    curve.scale(target_eps_min / eps_min)
}

impl CurveLibrary {
    /// Builds the standard 620-curve library on the standard grid with
    /// the default `(10, 10⁻⁷)` block budget.
    pub fn standard() -> Self {
        Self::build(
            &AlphaGrid::standard(),
            crate::DEFAULT_BLOCK_EPSILON,
            crate::DEFAULT_BLOCK_DELTA,
        )
    }

    /// Builds the library for an arbitrary grid and block budget.
    ///
    /// # Panics
    ///
    /// Panics if the budget parameters are invalid (propagated from
    /// [`block_capacity`]).
    pub fn build(grid: &AlphaGrid, epsilon_g: f64, delta_g: f64) -> Self {
        let capacity = block_capacity(grid, epsilon_g, delta_g).expect("valid block budget");
        let mut raw: Vec<(CurveFamily, RdpCurve)> = Vec::with_capacity(620);

        // Note on composition: tasks are later rescaled to a target
        // normalized ε_min, so only the *shape* of a curve matters. The
        // Gaussian is scale-homogeneous (ε ∝ α) — every σ collapses to
        // one normalized shape — so the library keeps few of them and
        // invests its budget in the families whose parameters genuinely
        // change shape: the Laplace scale `b`, the subsampling rate `q`,
        // and the Laplace/Gaussian mixing ratio. Subsampled mechanisms
        // with moderate-to-high `q` contribute the *steep* profiles
        // (expensive away from their best alpha) that give the σ_α knob
        // its bite.
        //
        // 30 Laplace curves: `b` sweeps the best alpha from 64 (weak
        // noise, saturated curve) through 8 down to 5 (strong noise,
        // Gaussian-like).
        for i in 0..15 {
            let b = log_space(0.3, 30.0, 15, i);
            let m = LaplaceMechanism::new(b).expect("valid scale");
            raw.push((CurveFamily::Laplace, m.curve(grid)));
        }
        // 5 Gaussian curves (one shape; kept for family realism).
        for i in 0..5 {
            let sigma = log_space(0.5, 50.0, 5, i);
            let m = GaussianMechanism::new(sigma).expect("valid sigma");
            raw.push((CurveFamily::Gaussian, m.curve(grid)));
        }
        // 270 subsampled Gaussian curves: `q` is the main shape knob
        // (high q → steep, best alpha 3–4; low q → near-linear, best
        // alpha 5) and σ places the superexponential blowup, pushing
        // steep best alphas up to 64.
        for i in 0..15 {
            let sigma = log_space(0.3, 30.0, 15, i);
            for j in 0..18 {
                let q = log_space(0.05, 0.98, 18, j);
                let m = SubsampledGaussian::new(sigma, q).expect("valid params");
                raw.push((CurveFamily::SubsampledGaussian, m.curve(grid)));
            }
        }
        // 270 subsampled Laplace curves.
        for i in 0..15 {
            let b = log_space(0.3, 30.0, 15, i);
            for j in 0..18 {
                let q = log_space(0.05, 0.98, 18, j);
                let m = SubsampledLaplace::new(b, q).expect("valid params");
                raw.push((CurveFamily::SubsampledLaplace, m.curve(grid)));
            }
        }
        // 60 Laplace ⊕ Gaussian compositions: the mixing ratio sweeps
        // the best alpha across the mid-range buckets (6, 8, 16, 32).
        for i in 0..12 {
            let b = log_space(0.2, 20.0, 12, i);
            for j in 0..5 {
                let sigma = log_space(0.5, 30.0, 5, j);
                let lap = LaplaceMechanism::new(b).expect("valid scale").curve(grid);
                let gau = GaussianMechanism::new(sigma)
                    .expect("valid sigma")
                    .curve(grid);
                raw.push((
                    CurveFamily::LaplaceGaussian,
                    lap.compose(&gau).expect("same grid"),
                ));
            }
        }
        debug_assert_eq!(raw.len(), 620);

        // Classify into best-alpha buckets; drop curves whose best alpha
        // is not a target order (cannot happen on the standard grid with
        // the default budget, but grids are configurable).
        let target_idx: Vec<Option<usize>> = grid
            .orders()
            .iter()
            .map(|a| TARGET_ALPHAS.iter().position(|t| t == a))
            .collect();
        let mut curves = Vec::new();
        let mut buckets = vec![Vec::new(); TARGET_ALPHAS.len()];
        for (family, curve) in raw {
            let Some((idx, eps_min)) = best_alpha(&curve, &capacity) else {
                continue;
            };
            let Some(bucket) = target_idx[idx] else {
                continue;
            };
            buckets[bucket].push(curves.len());
            curves.push(CurveSpec {
                family,
                curve,
                best_alpha_idx: idx,
                eps_min,
            });
        }
        Self {
            grid: grid.clone(),
            capacity,
            curves,
            buckets,
        }
    }

    /// The grid the library lives on.
    pub fn grid(&self) -> &AlphaGrid {
        &self.grid
    }

    /// The normalization capacity curve.
    pub fn capacity(&self) -> &RdpCurve {
        &self.capacity
    }

    /// All curves.
    pub fn curves(&self) -> &[CurveSpec] {
        &self.curves
    }

    /// Curve indices in the bucket for `TARGET_ALPHAS[bucket]`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket >= 8`.
    pub fn bucket(&self, bucket: usize) -> &[usize] {
        &self.buckets[bucket]
    }

    /// Number of non-empty buckets (8 for the standard library).
    pub fn coverage(&self) -> usize {
        self.buckets.iter().filter(|b| !b.is_empty()).count()
    }
}

/// The `i`-th of `n` log-spaced points in `[lo, hi]`.
fn log_space(lo: f64, hi: f64, n: usize, i: usize) -> f64 {
    debug_assert!(lo > 0.0 && hi > lo && i < n);
    if n == 1 {
        return lo;
    }
    let t = i as f64 / (n - 1) as f64;
    (lo.ln() + t * (hi.ln() - lo.ln())).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_covers_every_bucket() {
        let lib = CurveLibrary::standard();
        assert_eq!(lib.coverage(), 8, "bucket sizes: {:?}", bucket_sizes(&lib));
        assert!(lib.curves().len() > 500, "kept {}", lib.curves().len());
    }

    fn bucket_sizes(lib: &CurveLibrary) -> Vec<usize> {
        (0..8).map(|b| lib.bucket(b).len()).collect()
    }

    #[test]
    fn best_alpha_matches_definition() {
        let lib = CurveLibrary::standard();
        for spec in lib.curves().iter().take(50) {
            let cap = lib.capacity();
            // No usable order does better than the recorded one.
            for (i, _) in lib.grid().iter() {
                let c = cap.epsilon(i);
                if c > 0.0 {
                    assert!(
                        spec.eps_min <= spec.curve.epsilon(i) / c + 1e-12,
                        "curve min not minimal"
                    );
                }
            }
            assert!(spec.eps_min > 0.0);
        }
    }

    #[test]
    fn gaussians_have_best_alpha_five() {
        // Under the (10, 1e-7) budget, α/c(α) is minimized at α = 5, so
        // every pure Gaussian lands in the α = 5 bucket regardless of σ.
        let lib = CurveLibrary::standard();
        for spec in lib.curves() {
            if spec.family == CurveFamily::Gaussian {
                assert_eq!(lib.grid().order(spec.best_alpha_idx), 5.0);
            }
        }
    }

    #[test]
    fn weak_laplace_has_best_alpha_64() {
        let grid = AlphaGrid::standard();
        let cap = block_capacity(&grid, 10.0, 1e-7).unwrap();
        let weak = LaplaceMechanism::new(std::f64::consts::SQRT_2)
            .unwrap()
            .curve(&grid);
        let (idx, _) = best_alpha(&weak, &cap).unwrap();
        assert_eq!(grid.order(idx), 64.0);
    }

    #[test]
    fn rescale_preserves_best_alpha_and_hits_target() {
        let lib = CurveLibrary::standard();
        let spec = &lib.curves()[0];
        for target in [0.005, 0.1, 0.9] {
            let scaled = rescale_to_eps_min(&spec.curve, lib.capacity(), target);
            let (idx, eps_min) = best_alpha(&scaled, lib.capacity()).unwrap();
            assert_eq!(idx, spec.best_alpha_idx);
            assert!((eps_min - target).abs() < 1e-9);
        }
    }

    #[test]
    fn log_space_endpoints() {
        assert!((log_space(1.0, 100.0, 5, 0) - 1.0).abs() < 1e-12);
        assert!((log_space(1.0, 100.0, 5, 4) - 100.0).abs() < 1e-9);
        assert!((log_space(1.0, 100.0, 5, 2) - 10.0).abs() < 1e-9);
    }
}

#[cfg(test)]
mod diagnostics {
    use super::*;

    /// Prints per-bucket counts and steepness (run with `--ignored
    /// --nocapture` while tuning the library composition).
    #[test]
    #[ignore]
    fn print_library_stats() {
        let lib = CurveLibrary::standard();
        let cap = lib.capacity();
        for (b, alpha) in TARGET_ALPHAS.iter().enumerate() {
            let members = lib.bucket(b);
            // Steepness: cost at the cheapest *other* order divided by
            // the min — 1.0 means another order is equally cheap.
            let mut steep: Vec<f64> = members
                .iter()
                .map(|&i| {
                    let spec = &lib.curves()[i];
                    let mut second = f64::INFINITY;
                    for (k, _) in lib.grid().iter() {
                        let c = cap.epsilon(k);
                        if c > 0.0 && k != spec.best_alpha_idx {
                            second = second.min(spec.curve.epsilon(k) / c);
                        }
                    }
                    second / spec.eps_min
                })
                .collect();
            steep.sort_by(|a, b| a.total_cmp(b));
            let med = steep.get(steep.len() / 2).copied().unwrap_or(f64::NAN);
            println!(
                "bucket α={alpha:>2}: {:>3} curves, median adjacent-cost x{:.2}",
                members.len(),
                med
            );
        }
    }
}
