//! The Amazon Reviews macrobenchmark from PrivateKube (§6.3, Fig. 7).
//!
//! The PrivateKube paper trains several DP models on the Amazon Reviews
//! dataset; the DPack paper reuses that workload as a *low-heterogeneity*
//! contrast to Alibaba-DP: 24 neural-network task types (compositions of
//! subsampled Gaussians) and 18 statistics task types (Laplace), where
//! 63% of tasks request a single block, 95% request ≤ 5 blocks (max 50),
//! and only two best alphas occur (4 and 5, with ~81% at 5). On this
//! workload all schedulers perform similarly (Fig. 7(a)); adding the
//! weight grids `{10, 50, 100, 500}` (large tasks) and `{1, 5, 10, 50}`
//! (small tasks) creates enough heterogeneity for DPack to win again
//! (Fig. 7(b)).
//!
//! Tasks arrive as a Poisson process and request the most recent blocks.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use dp_accounting::mechanisms::{LaplaceMechanism, Mechanism, SubsampledGaussian};
use dp_accounting::{block_capacity, AlphaGrid, RdpCurve};
use dpack_core::problem::{Block, Task};

use crate::curves::rescale_to_eps_min;
use crate::stats::exponential;
use crate::OnlineWorkload;

/// A reusable task template.
#[derive(Debug, Clone)]
pub struct TaskType {
    /// Human-readable kind.
    pub kind: TaskKind,
    /// Demand curve, already normalized to its target `ε_min`.
    pub demand: RdpCurve,
    /// Number of most-recent blocks requested.
    pub n_blocks: usize,
}

/// Whether a template is a model-training or statistics task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// One of the 24 neural-network training pipelines.
    NeuralNetwork,
    /// One of the 18 summary-statistics pipelines.
    Statistics,
}

/// Workload parameters.
#[derive(Debug, Clone)]
pub struct AmazonConfig {
    /// Number of blocks (one arrives per virtual time unit).
    pub n_blocks: usize,
    /// Mean tasks arriving per block period (the Fig. 7 x-axis).
    pub mean_tasks_per_block: f64,
    /// Assign the Fig. 7(b) weight grids instead of weight 1.
    pub weighted: bool,
    /// Per-block global budget.
    pub epsilon_g: f64,
    /// Per-block global budget.
    pub delta_g: f64,
}

impl Default for AmazonConfig {
    fn default() -> Self {
        Self {
            n_blocks: 50,
            mean_tasks_per_block: 500.0,
            weighted: false,
            epsilon_g: crate::DEFAULT_BLOCK_EPSILON,
            delta_g: crate::DEFAULT_BLOCK_DELTA,
        }
    }
}

/// Builds the 42 task templates (24 NN + 18 statistics) on a grid.
///
/// The NN templates use per-step subsampled-Gaussian curves composed
/// over the run length; small sampling rates give the near-linear curves
/// whose best alpha is 5, larger rates bend the curve toward best alpha
/// 4. Statistics templates use strongly-noised Laplace mechanisms, whose
/// best alpha under the default budget is also 5.
pub fn task_types(grid: &AlphaGrid, epsilon_g: f64, delta_g: f64) -> Vec<TaskType> {
    let capacity = block_capacity(grid, epsilon_g, delta_g).expect("valid block budget");
    let mut types = Vec::with_capacity(42);

    // 24 NN types. Block counts: 63% of *instances* must request 1
    // block; those are the statistics below, so NN types take 2..=5
    // mostly, with a tail of large requests up to 50.
    let nn_blocks = [
        2, 2, 3, 3, 4, 4, 5, 5, 2, 3, 4, 5, 2, 3, 4, 5, 2, 3, 5, 10, 20, 30, 40, 50,
    ];
    for (i, &nb) in nn_blocks.iter().enumerate() {
        // Two sampling regimes: small q (best alpha 5) for two thirds of
        // the types, moderate q (best alpha 4) for the rest.
        let (sigma, q) = if i % 3 == 2 {
            (1.0, 0.20 + 0.02 * (i % 4) as f64)
        } else {
            (2.0, 0.01 + 0.002 * (i % 6) as f64)
        };
        let steps = 500 + 250 * (i as u32 % 5);
        let curve = SubsampledGaussian::new(sigma, q)
            .expect("valid params")
            .curve(grid)
            .compose_k(steps);
        let eps_min = 0.05 + 0.01 * (i % 6) as f64;
        types.push(TaskType {
            kind: TaskKind::NeuralNetwork,
            demand: rescale_to_eps_min(&curve, &capacity, eps_min),
            n_blocks: nb,
        });
    }

    // 18 statistics types: strongly-noised Laplace, one block each.
    for i in 0..18usize {
        let b = 5.0 + i as f64; // Strong noise → Gaussian-like curve.
        let curve = LaplaceMechanism::new(b).expect("valid scale").curve(grid);
        let eps_min = 0.004 + 0.002 * (i % 8) as f64;
        types.push(TaskType {
            kind: TaskKind::Statistics,
            demand: rescale_to_eps_min(&curve, &capacity, eps_min),
            n_blocks: 1,
        });
    }
    types
}

/// Generates the online workload.
///
/// # Panics
///
/// Panics on zero blocks or a non-positive arrival rate.
pub fn generate(config: &AmazonConfig, seed: u64) -> OnlineWorkload {
    assert!(config.n_blocks > 0, "need at least one block");
    assert!(
        config.mean_tasks_per_block > 0.0,
        "mean tasks per block must be > 0"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let grid = AlphaGrid::standard();
    let capacity =
        block_capacity(&grid, config.epsilon_g, config.delta_g).expect("valid block budget");
    let blocks: Vec<Block> = (0..config.n_blocks as u64)
        .map(|j| Block::new(j, capacity.clone(), j as f64))
        .collect();
    let types = task_types(&grid, config.epsilon_g, config.delta_g);
    let n_nn = types
        .iter()
        .filter(|t| t.kind == TaskKind::NeuralNetwork)
        .count();

    let mut tasks = Vec::new();
    let mut t = 0.0f64;
    let mut id = 0u64;
    loop {
        t += exponential(&mut rng, config.mean_tasks_per_block);
        if t >= config.n_blocks as f64 {
            break;
        }
        // 63% of instances are single-block statistics tasks.
        let ty = if rng.random::<f64>() < 0.63 {
            &types[n_nn + rng.random_range(0..(types.len() - n_nn))]
        } else {
            &types[rng.random_range(0..n_nn)]
        };
        let newest = (t.floor() as u64).min(config.n_blocks as u64 - 1);
        let n_req = ty.n_blocks.min(newest as usize + 1);
        let requested: Vec<u64> = (newest + 1 - n_req as u64..=newest).collect();
        let weight = if config.weighted {
            let grid_w: [f64; 4] = match ty.kind {
                TaskKind::NeuralNetwork => [10.0, 50.0, 100.0, 500.0],
                TaskKind::Statistics => [1.0, 5.0, 10.0, 50.0],
            };
            grid_w[rng.random_range(0..4usize)]
        } else {
            1.0
        };
        tasks.push(Task::new(id, weight, requested, ty.demand.clone(), t));
        id += 1;
    }

    let wl = OnlineWorkload {
        grid,
        blocks,
        tasks,
    };
    debug_assert!(wl.validate().is_ok());
    wl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curves::best_alpha;

    #[test]
    fn forty_two_task_types() {
        let grid = AlphaGrid::standard();
        let types = task_types(&grid, 10.0, 1e-7);
        assert_eq!(types.len(), 42);
        assert_eq!(
            types
                .iter()
                .filter(|t| t.kind == TaskKind::NeuralNetwork)
                .count(),
            24
        );
        assert_eq!(
            types
                .iter()
                .filter(|t| t.kind == TaskKind::Statistics)
                .count(),
            18
        );
    }

    #[test]
    fn best_alphas_are_low_heterogeneity() {
        // The paper: only two best alphas (4 or 5), ~81% of tasks at 5.
        let grid = AlphaGrid::standard();
        let cap = block_capacity(&grid, 10.0, 1e-7).unwrap();
        let types = task_types(&grid, 10.0, 1e-7);
        let alphas: Vec<f64> = types
            .iter()
            .map(|t| {
                let (idx, _) = best_alpha(&t.demand, &cap).unwrap();
                grid.order(idx)
            })
            .collect();
        for a in &alphas {
            assert!(
                *a == 4.0 || *a == 5.0,
                "best alpha {a} outside {{4, 5}}: {alphas:?}"
            );
        }
        let at5 = alphas.iter().filter(|a| **a == 5.0).count();
        assert!(
            at5 * 10 >= alphas.len() * 6,
            "too few best-5 types: {at5}/{}",
            alphas.len()
        );
    }

    #[test]
    fn block_count_distribution_matches_paper() {
        let cfg = AmazonConfig {
            n_blocks: 60,
            mean_tasks_per_block: 200.0,
            ..Default::default()
        };
        let wl = generate(&cfg, 3);
        wl.validate().unwrap();
        let n = wl.tasks.len() as f64;
        // Ignore early warm-up truncation by looking at steady state.
        let one = wl.tasks.iter().filter(|t| t.blocks.len() == 1).count() as f64;
        let le5 = wl.tasks.iter().filter(|t| t.blocks.len() <= 5).count() as f64;
        let max = wl.tasks.iter().map(|t| t.blocks.len()).max().unwrap();
        assert!(
            (one / n - 0.63).abs() < 0.05,
            "1-block fraction {}",
            one / n
        );
        assert!(le5 / n > 0.9, "≤5-block fraction {}", le5 / n);
        assert!(max <= 50);
    }

    #[test]
    fn poisson_arrivals_match_rate() {
        let cfg = AmazonConfig {
            n_blocks: 40,
            mean_tasks_per_block: 300.0,
            ..Default::default()
        };
        let wl = generate(&cfg, 4);
        let rate = wl.tasks.len() as f64 / 40.0;
        assert!((rate - 300.0).abs() < 25.0, "rate {rate}");
        assert!(wl.tasks.windows(2).all(|w| w[0].arrival <= w[1].arrival));
    }

    #[test]
    fn weighted_variant_uses_the_grids() {
        let cfg = AmazonConfig {
            n_blocks: 30,
            mean_tasks_per_block: 200.0,
            weighted: true,
            ..Default::default()
        };
        let wl = generate(&cfg, 5);
        let allowed = [1.0, 5.0, 10.0, 50.0, 100.0, 500.0];
        let weights: std::collections::BTreeSet<u64> =
            wl.tasks.iter().map(|t| t.weight as u64).collect();
        assert!(weights.len() >= 4, "weights seen: {weights:?}");
        for t in &wl.tasks {
            assert!(allowed.contains(&t.weight), "weight {}", t.weight);
        }
        // Unweighted variant is all ones.
        let plain = generate(
            &AmazonConfig {
                weighted: false,
                ..cfg
            },
            5,
        );
        assert!(plain.tasks.iter().all(|t| t.weight == 1.0));
    }

    #[test]
    fn determinism_under_seed() {
        let cfg = AmazonConfig {
            n_blocks: 20,
            mean_tasks_per_block: 100.0,
            ..Default::default()
        };
        let a = generate(&cfg, 6);
        let b = generate(&cfg, 6);
        assert_eq!(a.tasks.len(), b.tasks.len());
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x, y);
        }
    }
}
