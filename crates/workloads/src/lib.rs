//! Workload generators for the DPack evaluation.
//!
//! Three workloads, mirroring §6 of the paper:
//!
//! * [`microbenchmark`] — the §6.2 offline microbenchmark: a library of
//!   620 RDP curves over five mechanism families ([`curves`]), with two
//!   heterogeneity knobs (`σ_blocks`, `σ_α`).
//! * [`alibaba`] — the §6.3 Alibaba-DP macrobenchmark. The real Alibaba
//!   2022 GPU-cluster trace is not redistributable here, so a synthetic
//!   trace calibrated to its published marginals is generated first and
//!   the paper's proxy mapping (machine type → mechanism, memory → ε,
//!   network bytes → #blocks) is applied unchanged (substitution #3 in
//!   DESIGN.md).
//! * [`amazon`] — the PrivateKube Amazon Reviews macrobenchmark: 24
//!   neural-network task types plus 18 Laplace statistics tasks, with the
//!   low block/alpha heterogeneity the paper reports, and the weighted
//!   variant of Fig. 7(b).
//!
//! All generators are deterministic given a seed, and produce
//! [`dpack_core::problem::Task`]/[`Block`] values directly usable by the
//! offline schedulers and the online simulator.

pub mod alibaba;
pub mod amazon;
pub mod curves;
pub mod microbenchmark;
pub mod stats;

use dp_accounting::AlphaGrid;
use dpack_core::problem::{Block, Task};

/// A generated online workload: blocks arriving one per virtual time
/// unit and tasks arriving at real-valued times.
#[derive(Debug, Clone)]
pub struct OnlineWorkload {
    /// The alpha grid all curves share.
    pub grid: AlphaGrid,
    /// Blocks, with `blocks[j].arrival == j` by convention.
    pub blocks: Vec<Block>,
    /// Tasks sorted by arrival time.
    pub tasks: Vec<Task>,
}

impl OnlineWorkload {
    /// Sanity-checks orderings and references; used by generator tests.
    pub fn validate(&self) -> Result<(), String> {
        for w in self.tasks.windows(2) {
            if w[0].arrival > w[1].arrival {
                return Err("tasks not sorted by arrival".into());
            }
        }
        let max_block = self.blocks.len() as u64;
        for t in &self.tasks {
            if t.blocks.iter().any(|b| *b >= max_block) {
                return Err(format!("task {} requests nonexistent block", t.id));
            }
            if t.blocks.is_empty() {
                return Err(format!("task {} requests no blocks", t.id));
            }
        }
        Ok(())
    }
}

/// The paper's default per-block budget: `(ε_G, δ_G) = (10, 10⁻⁷)`
/// (§6.2).
pub const DEFAULT_BLOCK_EPSILON: f64 = 10.0;

/// See [`DEFAULT_BLOCK_EPSILON`].
pub const DEFAULT_BLOCK_DELTA: f64 = 1e-7;
