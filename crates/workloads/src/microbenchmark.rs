//! The §6.2 offline microbenchmark with heterogeneity knobs.
//!
//! Two knobs control workload heterogeneity:
//!
//! * `σ_blocks` — the number of blocks a task requests is a truncated
//!   discrete Gaussian `N(μ_blocks, σ_blocks²)`; the requested blocks
//!   are drawn uniformly without replacement.
//! * `σ_α` — the task's RDP-curve bucket (its *best alpha*) is a
//!   truncated discrete Gaussian over the bucket axis `{3, 4, 5, 6, 8,
//!   16, 32, 64}` centered at α = 5; the curve is drawn uniformly from
//!   the bucket and rescaled so its normalized minimum demand equals
//!   `ε_min`.
//!
//! `σ_blocks = σ_α = 0` is the fully homogeneous workload where DPF
//! already performs near-optimally; raising either knob recreates the
//! regimes of Fig. 4.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dp_accounting::block_capacity;
use dpack_core::problem::{Block, ProblemState, Task};

use crate::curves::{rescale_to_eps_min, CurveLibrary, CENTER_BUCKET};
use crate::stats::{sample_without_replacement, truncated_discrete_gaussian};

/// Microbenchmark parameters.
#[derive(Debug, Clone)]
pub struct MicrobenchmarkConfig {
    /// Number of tasks to generate.
    pub n_tasks: usize,
    /// Number of blocks in the system.
    pub n_blocks: usize,
    /// Mean requested block count `μ_blocks`.
    pub mu_blocks: f64,
    /// Heterogeneity knob for requested block counts.
    pub sigma_blocks: f64,
    /// Heterogeneity knob for best alphas.
    pub sigma_alpha: f64,
    /// Target normalized minimum demand per task.
    pub eps_min: f64,
    /// Per-block budget `ε_G`.
    pub epsilon_g: f64,
    /// Per-block budget `δ_G`.
    pub delta_g: f64,
}

impl Default for MicrobenchmarkConfig {
    fn default() -> Self {
        Self {
            n_tasks: 100,
            n_blocks: 10,
            mu_blocks: 10.0,
            sigma_blocks: 0.0,
            sigma_alpha: 0.0,
            eps_min: 0.1,
            epsilon_g: crate::DEFAULT_BLOCK_EPSILON,
            delta_g: crate::DEFAULT_BLOCK_DELTA,
        }
    }
}

/// Generates an offline microbenchmark instance from a prebuilt curve
/// library (build it once and reuse it across sweep points — library
/// construction is the expensive part).
///
/// # Panics
///
/// Panics on inconsistent parameters (zero blocks/tasks, `μ_blocks`
/// exceeding the block count, non-positive `ε_min`).
pub fn generate(library: &CurveLibrary, config: &MicrobenchmarkConfig, seed: u64) -> ProblemState {
    assert!(config.n_blocks > 0, "need at least one block");
    assert!(config.n_tasks > 0, "need at least one task");
    assert!(
        config.mu_blocks >= 1.0 && config.mu_blocks <= config.n_blocks as f64,
        "mu_blocks must be in [1, n_blocks]"
    );
    assert!(
        config.eps_min > 0.0 && config.eps_min.is_finite(),
        "eps_min must be finite and > 0"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let grid = library.grid().clone();
    let capacity =
        block_capacity(&grid, config.epsilon_g, config.delta_g).expect("valid block budget");

    let blocks: Vec<Block> = (0..config.n_blocks as u64)
        .map(|j| Block::new(j, capacity.clone(), 0.0))
        .collect();

    let mut tasks = Vec::with_capacity(config.n_tasks);
    for id in 0..config.n_tasks as u64 {
        // Knob 1: number of requested blocks.
        let k = truncated_discrete_gaussian(
            &mut rng,
            config.mu_blocks,
            config.sigma_blocks,
            1,
            config.n_blocks as i64,
        ) as usize;
        let requested: Vec<u64> = sample_without_replacement(&mut rng, config.n_blocks, k)
            .into_iter()
            .map(|b| b as u64)
            .collect();

        // Knob 2: best-alpha bucket, then a uniform curve from it.
        let bucket = pick_bucket(library, &mut rng, config.sigma_alpha);
        let members = library.bucket(bucket);
        let pick = members[rng_index(&mut rng, members.len())];
        let raw = &library.curves()[pick].curve;
        let demand = rescale_to_eps_min(raw, library.capacity(), config.eps_min);

        tasks.push(Task::new(id, 1.0, requested, demand, 0.0));
    }

    ProblemState::new(grid, blocks, tasks).expect("generated instance is well-formed")
}

/// Samples a bucket index from the truncated discrete Gaussian centered
/// at the α = 5 bucket, skipping empty buckets by resampling toward the
/// center.
fn pick_bucket(library: &CurveLibrary, rng: &mut StdRng, sigma_alpha: f64) -> usize {
    for _ in 0..64 {
        let b = truncated_discrete_gaussian(rng, CENTER_BUCKET as f64, sigma_alpha, 0, 7) as usize;
        if !library.bucket(b).is_empty() {
            return b;
        }
    }
    CENTER_BUCKET
}

fn rng_index(rng: &mut StdRng, len: usize) -> usize {
    use rand::RngExt;
    debug_assert!(len > 0);
    rng.random_range(0..len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpack_core::schedulers::{DPack, Dpf, Scheduler};

    fn library() -> CurveLibrary {
        CurveLibrary::standard()
    }

    #[test]
    fn homogeneous_workload_has_uniform_shape() {
        let lib = library();
        let cfg = MicrobenchmarkConfig {
            n_tasks: 50,
            n_blocks: 10,
            mu_blocks: 10.0,
            sigma_blocks: 0.0,
            sigma_alpha: 0.0,
            ..Default::default()
        };
        let state = generate(&lib, &cfg, 1);
        assert_eq!(state.tasks().len(), 50);
        assert_eq!(state.blocks().len(), 10);
        for t in state.tasks() {
            // σ_blocks = 0, μ = 10: everyone requests all 10 blocks.
            assert_eq!(t.blocks.len(), 10);
            // σ_α = 0: best alpha is 5 for everyone.
            let (idx, eps_min) = crate::curves::best_alpha(&t.demand, lib.capacity()).unwrap();
            assert_eq!(state.grid().order(idx), 5.0);
            assert!((eps_min - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn sigma_blocks_spreads_request_counts() {
        let lib = library();
        let cfg = MicrobenchmarkConfig {
            n_tasks: 200,
            n_blocks: 20,
            mu_blocks: 10.0,
            sigma_blocks: 3.0,
            ..Default::default()
        };
        let state = generate(&lib, &cfg, 2);
        let counts: Vec<usize> = state.tasks().iter().map(|t| t.blocks.len()).collect();
        let distinct: std::collections::BTreeSet<_> = counts.iter().collect();
        assert!(distinct.len() > 3, "no spread: {distinct:?}");
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        assert!((mean - 10.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn sigma_alpha_spreads_best_alphas() {
        let lib = library();
        let cfg = MicrobenchmarkConfig {
            n_tasks: 300,
            n_blocks: 1,
            mu_blocks: 1.0,
            sigma_alpha: 4.0,
            eps_min: 0.005,
            ..Default::default()
        };
        let state = generate(&lib, &cfg, 3);
        let alphas: std::collections::BTreeSet<u64> = state
            .tasks()
            .iter()
            .map(|t| {
                let (idx, _) = crate::curves::best_alpha(&t.demand, lib.capacity()).unwrap();
                state.grid().order(idx) as u64
            })
            .collect();
        assert!(alphas.len() >= 4, "alphas seen: {alphas:?}");
    }

    #[test]
    fn determinism_under_seed() {
        let lib = library();
        let cfg = MicrobenchmarkConfig::default();
        let a = generate(&lib, &cfg, 7);
        let b = generate(&lib, &cfg, 7);
        for (x, y) in a.tasks().iter().zip(b.tasks()) {
            assert_eq!(x, y);
        }
        let c = generate(&lib, &cfg, 8);
        assert!(a.tasks().iter().zip(c.tasks()).any(|(x, y)| x != y));
    }

    #[test]
    fn heterogeneous_workload_separates_dpack_from_dpf() {
        // The Q1 effect in miniature: with block-count heterogeneity,
        // DPack allocates at least as much as DPF (and typically more).
        let lib = library();
        let cfg = MicrobenchmarkConfig {
            n_tasks: 120,
            n_blocks: 12,
            mu_blocks: 6.0,
            sigma_blocks: 3.0,
            sigma_alpha: 0.0,
            eps_min: 0.2,
            ..Default::default()
        };
        let state = generate(&lib, &cfg, 4);
        let dpack = DPack::default().schedule(&state).scheduled.len();
        let dpf = Dpf.schedule(&state).scheduled.len();
        assert!(dpack >= dpf, "dpack {dpack} < dpf {dpf}");
    }

    #[test]
    #[should_panic(expected = "mu_blocks")]
    fn rejects_mu_exceeding_blocks() {
        let lib = library();
        let cfg = MicrobenchmarkConfig {
            n_blocks: 5,
            mu_blocks: 10.0,
            ..Default::default()
        };
        generate(&lib, &cfg, 0);
    }
}
