//! The Alibaba-DP macrobenchmark (§6.3 of the paper).
//!
//! The paper derives a DP workload from Alibaba's 2022 GPU-cluster trace
//! (Weng et al., NSDI '22) by mapping system metrics to privacy
//! parameters. The raw trace is a multi-gigabyte external artifact that
//! is not redistributable here, so this module first generates a
//! **synthetic trace** calibrated to the published marginals of the real
//! one — a minority of GPU tasks, heavy-tailed (log-normal/power-law)
//! memory and network usage, Zipf-distributed users, diurnal submission
//! times over one month — and then applies the paper's own proxy mapping
//! unchanged:
//!
//! * machine type → DP mechanism family (CPU → {Laplace, Gaussian,
//!   subsampled Laplace}; GPU → {composed subsampled Gaussians, composed
//!   Gaussians});
//! * memory (GB·h) → traditional-DP ε, affinely;
//! * network bytes → number of requested blocks, affinely;
//! * truncation: drop tasks requesting more than 100 blocks or whose
//!   smallest normalized RDP ε falls outside `[0.001, 1]`.
//!
//! Tasks request the most recent blocks and carry weight 1. This is
//! substitution #3 of DESIGN.md; what Fig. 6 needs from the workload is
//! heterogeneity in block counts and best alphas, which the mapping
//! reproduces by construction.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use dp_accounting::mechanisms::{
    GaussianMechanism, LaplaceMechanism, Mechanism, SubsampledGaussian, SubsampledLaplace,
};
use dp_accounting::{block_capacity, AlphaGrid, RdpCurve};
use dpack_core::problem::{Block, Task};

use crate::curves::rescale_to_eps_min;
use crate::stats::{lognormal, pareto, Zipf};
use crate::OnlineWorkload;

/// Machine type in the synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineType {
    /// CPU-only task: statistics / analytics / lightweight ML.
    Cpu,
    /// GPU task: deep-learning training.
    Gpu,
}

/// One synthetic trace record, in the units of the real trace.
#[derive(Debug, Clone)]
pub struct TraceTask {
    /// Submitting user (Zipf-distributed over 1,300 users, as in the
    /// trace's user population).
    pub user: u32,
    /// Submission time in fractional days over a one-month window.
    pub submit_day: f64,
    /// CPU or GPU machine.
    pub machine: MachineType,
    /// Memory usage in GB·hours (log-normal, heavy-tailed).
    pub mem_gb_hours: f64,
    /// Bytes read over the network (Pareto power law).
    pub net_bytes: f64,
}

/// Fraction of GPU tasks in the synthetic trace (the 2022 trace is a
/// GPU-cluster trace where most submitted tasks are still CPU-side
/// pipeline stages).
pub const GPU_FRACTION: f64 = 0.25;

/// Number of distinct users (from the trace description: ~1,300).
pub const N_USERS: usize = 1300;

/// Days in the sampled window (the paper samples one month).
pub const TRACE_DAYS: f64 = 30.0;

/// Generates `n` synthetic trace records sorted by submission time.
pub fn generate_trace(n: usize, rng: &mut StdRng) -> Vec<TraceTask> {
    let users = Zipf::new(N_USERS, 1.1);
    let mut tasks: Vec<TraceTask> = (0..n)
        .map(|_| {
            // Diurnal submission profile via accept-reject over the day.
            let submit_day = loop {
                let t: f64 = rng.random::<f64>() * TRACE_DAYS;
                let phase = 2.0 * std::f64::consts::PI * t.fract();
                let intensity = (1.0 + 0.4 * phase.sin()) / 1.4;
                if rng.random::<f64>() < intensity {
                    break t;
                }
            };
            let machine = if rng.random::<f64>() < GPU_FRACTION {
                MachineType::Gpu
            } else {
                MachineType::Cpu
            };
            // GPU tasks skew larger in both memory and network usage.
            let (mem_mu, net_xm) = match machine {
                MachineType::Cpu => (1.2, 1.0e8),
                MachineType::Gpu => (2.2, 4.0e8),
            };
            TraceTask {
                user: users.sample(rng) as u32,
                submit_day,
                machine,
                mem_gb_hours: lognormal(rng, mem_mu, 1.4),
                net_bytes: pareto(rng, net_xm, 1.2),
            }
        })
        .collect();
    tasks.sort_by(|a, b| a.submit_day.total_cmp(&b.submit_day));
    tasks
}

/// Parameters of the trace-to-DP mapping.
#[derive(Debug, Clone)]
pub struct AlibabaDpConfig {
    /// Number of blocks the workload spans (one block arrives per
    /// virtual time unit; the trace month is scaled onto `[0, n_blocks)`).
    pub n_blocks: usize,
    /// Number of tasks to draw from the synthetic trace (before
    /// truncation drops a small fraction).
    pub n_tasks: usize,
    /// Slope of the memory → `ε_min` affine map.
    pub eps_slope: f64,
    /// Intercept of the memory → `ε_min` affine map.
    pub eps_intercept: f64,
    /// Bytes per requested block in the network → blocks affine map.
    pub bytes_per_block: f64,
    /// Per-block global budget.
    pub epsilon_g: f64,
    /// Per-block global budget.
    pub delta_g: f64,
}

impl Default for AlibabaDpConfig {
    fn default() -> Self {
        Self {
            n_blocks: 90,
            n_tasks: 60_000,
            eps_slope: 0.002,
            eps_intercept: 0.0005,
            bytes_per_block: 1.2e8,
            epsilon_g: crate::DEFAULT_BLOCK_EPSILON,
            delta_g: crate::DEFAULT_BLOCK_DELTA,
        }
    }
}

/// Normalized-`ε` truncation window of the paper.
pub const EPS_MIN_RANGE: (f64, f64) = (0.001, 1.0);

/// Block-count truncation of the paper.
pub const MAX_BLOCKS_PER_TASK: usize = 100;

/// Builds the Alibaba-DP online workload.
///
/// # Panics
///
/// Panics on zero blocks/tasks.
pub fn generate(config: &AlibabaDpConfig, seed: u64) -> OnlineWorkload {
    assert!(config.n_blocks > 0 && config.n_tasks > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let grid = AlphaGrid::standard();
    let capacity =
        block_capacity(&grid, config.epsilon_g, config.delta_g).expect("valid block budget");
    let blocks: Vec<Block> = (0..config.n_blocks as u64)
        .map(|j| Block::new(j, capacity.clone(), j as f64))
        .collect();

    let trace = generate_trace(config.n_tasks, &mut rng);
    let time_scale = config.n_blocks as f64 / TRACE_DAYS;

    let mut tasks = Vec::with_capacity(trace.len());
    let mut id = 0u64;
    for rec in &trace {
        // Memory → target normalized ε, with the paper's truncation.
        let eps_min = config.eps_slope * rec.mem_gb_hours + config.eps_intercept;
        if !(EPS_MIN_RANGE.0..=EPS_MIN_RANGE.1).contains(&eps_min) {
            continue;
        }
        // Network bytes → requested block count, with truncation.
        let n_req = (rec.net_bytes / config.bytes_per_block).ceil().max(1.0) as usize;
        if n_req > MAX_BLOCKS_PER_TASK {
            continue;
        }

        // Machine type → mechanism family → raw RDP curve shape.
        let raw = sample_mechanism_curve(&grid, rec.machine, &mut rng);
        // The rescale realizes the affine ε proxy while preserving the
        // mechanism's curve shape (and hence its best alpha).
        let demand = rescale_to_eps_min(&raw, &capacity, eps_min);

        // Most recent blocks at arrival.
        let arrival = rec.submit_day * time_scale;
        let newest = (arrival.floor() as u64).min(config.n_blocks as u64 - 1);
        let n_req = n_req.min(newest as usize + 1);
        let requested: Vec<u64> = (newest + 1 - n_req as u64..=newest).collect();

        tasks.push(Task::new(id, 1.0, requested, demand, arrival));
        id += 1;
    }

    let wl = OnlineWorkload {
        grid,
        blocks,
        tasks,
    };
    debug_assert!(wl.validate().is_ok());
    wl
}

/// Draws a mechanism curve for a trace record, per the paper's mapping.
fn sample_mechanism_curve(grid: &AlphaGrid, machine: MachineType, rng: &mut StdRng) -> RdpCurve {
    let logu = |rng: &mut StdRng, lo: f64, hi: f64| -> f64 {
        (lo.ln() + rng.random::<f64>() * (hi.ln() - lo.ln())).exp()
    };
    match machine {
        MachineType::Cpu => match rng.random_range(0..3u32) {
            0 => {
                let b = logu(rng, 0.5, 20.0);
                LaplaceMechanism::new(b).expect("valid scale").curve(grid)
            }
            1 => {
                let sigma = logu(rng, 0.5, 20.0);
                GaussianMechanism::new(sigma)
                    .expect("valid sigma")
                    .curve(grid)
            }
            _ => {
                let b = logu(rng, 0.5, 10.0);
                let q = logu(rng, 0.01, 0.5);
                SubsampledLaplace::new(b, q)
                    .expect("valid params")
                    .curve(grid)
            }
        },
        MachineType::Gpu => {
            if rng.random::<f64>() < 0.5 {
                // Composition of subsampled Gaussians: a DP-SGD run.
                let sigma = logu(rng, 0.5, 4.0);
                let q = logu(rng, 0.005, 0.1);
                let steps = rng.random_range(100..5000u32);
                SubsampledGaussian::new(sigma, q)
                    .expect("valid params")
                    .curve(grid)
                    .compose_k(steps)
            } else {
                // Composition of Gaussians: DP-FTRL-style training.
                let sigma = logu(rng, 1.0, 20.0);
                let steps = rng.random_range(10..500u32);
                GaussianMechanism::new(sigma)
                    .expect("valid sigma")
                    .curve(grid)
                    .compose_k(steps)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curves::best_alpha;

    #[test]
    fn trace_marginals_are_plausible() {
        let mut rng = StdRng::seed_from_u64(5);
        let trace = generate_trace(20_000, &mut rng);
        assert_eq!(trace.len(), 20_000);
        // Sorted by submission.
        assert!(trace.windows(2).all(|w| w[0].submit_day <= w[1].submit_day));
        // GPU fraction near the calibration target.
        let gpu = trace
            .iter()
            .filter(|t| t.machine == MachineType::Gpu)
            .count() as f64
            / trace.len() as f64;
        assert!((gpu - GPU_FRACTION).abs() < 0.02, "gpu fraction {gpu}");
        // Memory is heavy-tailed: mean well above median.
        let mut mems: Vec<f64> = trace.iter().map(|t| t.mem_gb_hours).collect();
        mems.sort_by(|a, b| a.total_cmp(b));
        let median = mems[mems.len() / 2];
        let mean = mems.iter().sum::<f64>() / mems.len() as f64;
        assert!(mean > 1.5 * median, "mean {mean} median {median}");
        // A busy user exists (Zipf head).
        let mut per_user = std::collections::HashMap::new();
        for t in &trace {
            *per_user.entry(t.user).or_insert(0usize) += 1;
        }
        let max_user = per_user.values().copied().max().unwrap();
        assert!(max_user > trace.len() / 200);
    }

    #[test]
    fn workload_respects_truncation_rules() {
        let cfg = AlibabaDpConfig {
            n_blocks: 30,
            n_tasks: 5_000,
            ..Default::default()
        };
        let wl = generate(&cfg, 9);
        wl.validate().unwrap();
        assert!(!wl.tasks.is_empty());
        let capacity = &wl.blocks[0].capacity;
        for t in &wl.tasks {
            assert!(t.blocks.len() <= MAX_BLOCKS_PER_TASK);
            let (_, eps_min) = best_alpha(&t.demand, capacity).unwrap();
            assert!(
                (EPS_MIN_RANGE.0 - 1e-9..=EPS_MIN_RANGE.1 + 1e-9).contains(&eps_min),
                "eps_min {eps_min}"
            );
        }
    }

    #[test]
    fn tasks_request_most_recent_blocks() {
        let cfg = AlibabaDpConfig {
            n_blocks: 20,
            n_tasks: 2_000,
            ..Default::default()
        };
        let wl = generate(&cfg, 10);
        for t in &wl.tasks {
            let newest = *t.blocks.last().unwrap();
            assert!(newest as f64 <= t.arrival, "block after arrival");
            // Contiguous most-recent range.
            let expect: Vec<u64> = (newest + 1 - t.blocks.len() as u64..=newest).collect();
            assert_eq!(t.blocks, expect);
        }
    }

    #[test]
    fn workload_is_heterogeneous_in_blocks_and_alphas() {
        // The property Fig. 6 relies on.
        let cfg = AlibabaDpConfig {
            n_blocks: 90,
            n_tasks: 8_000,
            ..Default::default()
        };
        let wl = generate(&cfg, 11);
        let capacity = &wl.blocks[0].capacity;
        let block_counts: std::collections::BTreeSet<usize> =
            wl.tasks.iter().map(|t| t.blocks.len()).collect();
        assert!(block_counts.len() >= 5, "block counts: {block_counts:?}");
        let alphas: std::collections::BTreeSet<u64> = wl
            .tasks
            .iter()
            .map(|t| {
                let (idx, _) = best_alpha(&t.demand, capacity).unwrap();
                wl.grid.order(idx) as u64
            })
            .collect();
        assert!(alphas.len() >= 3, "best alphas: {alphas:?}");
    }

    #[test]
    fn determinism_under_seed() {
        let cfg = AlibabaDpConfig {
            n_blocks: 10,
            n_tasks: 500,
            ..Default::default()
        };
        let a = generate(&cfg, 42);
        let b = generate(&cfg, 42);
        assert_eq!(a.tasks.len(), b.tasks.len());
        for (x, y) in a.tasks.iter().zip(&b.tasks) {
            assert_eq!(x, y);
        }
    }
}
