//! Distribution samplers used by the workload generators.
//!
//! Implemented directly on [`rand::Rng`] (Box–Muller, inverse-CDF,
//! inversion-by-table) to stay within the approved dependency set — the
//! paper's generators need normal, discrete/truncated-normal, Poisson
//! process, log-normal, Pareto (power-law) and Zipf draws.

use rand::{Rng, RngExt};

/// One standard-normal sample via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A normal sample with the given mean and standard deviation (σ may be
/// zero, collapsing to the mean).
///
/// # Panics
///
/// Panics on negative or non-finite `sigma`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    assert!(
        sigma.is_finite() && sigma >= 0.0,
        "sigma must be finite and >= 0 (got {sigma})"
    );
    if sigma == 0.0 {
        return mu;
    }
    mu + sigma * standard_normal(rng)
}

/// A discrete Gaussian: a rounded normal sample (the paper's block-count
/// and best-alpha knobs, §6.2).
pub fn discrete_gaussian<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> i64 {
    normal(rng, mu, sigma).round() as i64
}

/// A truncated discrete Gaussian over `[lo, hi]`: resamples up to 64
/// times, then clamps (so the function always terminates even for
/// extreme parameters).
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn truncated_discrete_gaussian<R: Rng + ?Sized>(
    rng: &mut R,
    mu: f64,
    sigma: f64,
    lo: i64,
    hi: i64,
) -> i64 {
    assert!(lo <= hi, "truncation range must be non-empty ({lo} > {hi})");
    for _ in 0..64 {
        let v = discrete_gaussian(rng, mu, sigma);
        if (lo..=hi).contains(&v) {
            return v;
        }
    }
    discrete_gaussian(rng, mu, sigma).clamp(lo, hi)
}

/// An exponential inter-arrival time for a Poisson process with the
/// given rate (events per unit time).
///
/// # Panics
///
/// Panics on non-positive `rate`.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(
        rate.is_finite() && rate > 0.0,
        "rate must be finite and > 0 (got {rate})"
    );
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    -u.ln() / rate
}

/// A log-normal sample `exp(N(mu, sigma²))` — the heavy-tailed shape of
/// cluster-trace resource usage.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// A Pareto (power-law) sample with scale `x_m > 0` and shape
/// `alpha > 0`: `x_m / U^{1/alpha}`.
///
/// # Panics
///
/// Panics on non-positive parameters.
pub fn pareto<R: Rng + ?Sized>(rng: &mut R, x_m: f64, alpha: f64) -> f64 {
    assert!(x_m > 0.0 && x_m.is_finite(), "x_m must be > 0 (got {x_m})");
    assert!(
        alpha > 0.0 && alpha.is_finite(),
        "alpha must be > 0 (got {alpha})"
    );
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    x_m / u.powf(1.0 / alpha)
}

/// A Zipf sampler over ranks `1..=n` with exponent `s`, via a
/// precomputed cumulative table (O(log n) per draw).
#[derive(Debug, Clone)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not finite and positive.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s > 0.0, "Zipf exponent must be > 0");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        Self { cumulative }
    }

    /// Draws a rank in `1..=n` (rank 1 is the most likely).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random::<f64>();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).unwrap_or(std::cmp::Ordering::Less))
        {
            Ok(i) | Err(i) => (i + 1).min(self.cumulative.len()),
        }
    }
}

/// Samples `k` distinct values uniformly from `0..n` (partial
/// Fisher–Yates).
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_without_replacement<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct values from {n}");
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = i + rng.random_range(0..(n - i));
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05);
        assert!((var - 4.0).abs() < 0.15);
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let mut r = rng();
        assert_eq!(normal(&mut r, 5.0, 0.0), 5.0);
        assert_eq!(discrete_gaussian(&mut r, 5.4, 0.0), 5);
    }

    #[test]
    fn truncated_discrete_gaussian_respects_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = truncated_discrete_gaussian(&mut r, 0.0, 10.0, 0, 7);
            assert!((0..=7).contains(&v));
        }
        // Extreme sigma still terminates and lands in range.
        let v = truncated_discrete_gaussian(&mut r, 100.0, 0.0, 0, 7);
        assert_eq!(v, 7);
    }

    #[test]
    fn exponential_has_unit_over_rate_mean() {
        let mut r = rng();
        let n = 100_000;
        let mean = (0..n).map(|_| exponential(&mut r, 4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01);
    }

    #[test]
    fn pareto_is_heavy_tailed_with_min_xm() {
        let mut r = rng();
        let samples: Vec<f64> = (0..50_000).map(|_| pareto(&mut r, 2.0, 1.5)).collect();
        assert!(samples.iter().all(|&x| x >= 2.0));
        // The tail: some samples should be far above the median.
        let max = samples.iter().copied().fold(0.0f64, f64::max);
        assert!(max > 50.0);
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let mut r = rng();
        let z = Zipf::new(100, 1.2);
        let mut counts = vec![0usize; 101];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        assert_eq!(counts[0], 0); // Ranks start at 1.
    }

    #[test]
    fn sampling_without_replacement_is_distinct() {
        let mut r = rng();
        for _ in 0..100 {
            let s = sample_without_replacement(&mut r, 20, 10);
            let set: std::collections::BTreeSet<_> = s.iter().collect();
            assert_eq!(set.len(), 10);
            assert!(s.iter().all(|&x| x < 20));
        }
        assert_eq!(sample_without_replacement(&mut r, 5, 5).len(), 5);
    }

    #[test]
    fn lognormal_is_positive() {
        let mut r = rng();
        assert!((0..1000).all(|_| lognormal(&mut r, 0.0, 2.0) > 0.0));
    }
}
