//! Strategies: composable value generators over a [`Source`].

use std::fmt::Debug;
use std::ops::Range;

use rand::{RangeSample, RngExt};

use crate::source::Source;

/// A strategy failed to produce a value (a [`Strategy::prop_filter`]
/// predicate could not be satisfied). The runner discards the case
/// during generation and skips the candidate during shrinking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rejected {
    /// The label of the filter that gave up, if any.
    pub filter: Option<&'static str>,
}

/// A composable generator of test inputs.
///
/// Implementations must be *monotone in the draw stream* where
/// possible: smaller draws should produce "smaller" values, because the
/// shrinker minimizes the recorded draws, not the values themselves.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Builds one value from the draw stream.
    ///
    /// # Errors
    ///
    /// [`Rejected`] when a filter predicate cannot be satisfied.
    fn try_build(&self, src: &mut Source) -> Result<Self::Value, Rejected>;

    /// Transforms generated values; shrinking passes through to the
    /// underlying draws, so mapped strategies shrink for free.
    fn prop_map<T: Debug, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, redrawing up to a fixed
    /// retry budget before rejecting the case. `label` names the
    /// constraint in reports.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        label: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            label,
            pred,
        }
    }

    /// Type-erases the strategy (for heterogeneous [`one_of`] lists).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn try_build(&self, src: &mut Source) -> Result<T, Rejected> {
        self.0.try_build(src)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Debug, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn try_build(&self, src: &mut Source) -> Result<T, Rejected> {
        self.inner.try_build(src).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    label: &'static str,
    pred: F,
}

/// How many fresh draws a filter attempts before rejecting. In replay
/// mode an exhausted buffer keeps producing the same (all-zero) value,
/// so retrying further is pointless; a small budget keeps rejection
/// cheap there too.
const FILTER_RETRIES: usize = 64;

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn try_build(&self, src: &mut Source) -> Result<S::Value, Rejected> {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.try_build(src)?;
            if (self.pred)(&v) {
                return Ok(v);
            }
        }
        Err(Rejected {
            filter: Some(self.label),
        })
    }
}

/// Uniform integers in a half-open range (any type the `rand` shim's
/// [`RangeSample`] covers: `u8..u64`, `i8..i64`, `usize`, `isize`).
/// Shrinks toward `range.start`.
pub fn ints<T: RangeSample + Copy + Debug>(range: Range<T>) -> IntRange<T> {
    IntRange { range }
}

/// See [`ints`].
#[derive(Debug, Clone)]
pub struct IntRange<T> {
    range: Range<T>,
}

impl<T: RangeSample + Copy + Debug> Strategy for IntRange<T> {
    type Value = T;
    fn try_build(&self, src: &mut Source) -> Result<T, Rejected> {
        Ok(src.random_range(self.range.clone()))
    }
}

/// Uniform `f64` in a half-open range. Shrinks toward `range.start`.
///
/// # Panics
///
/// Panics (at build time) if the bounds are not finite or the range is
/// empty.
pub fn floats(range: Range<f64>) -> FloatRange {
    FloatRange { range }
}

/// See [`floats`].
#[derive(Debug, Clone)]
pub struct FloatRange {
    range: Range<f64>,
}

impl Strategy for FloatRange {
    type Value = f64;
    fn try_build(&self, src: &mut Source) -> Result<f64, Rejected> {
        assert!(
            self.range.start.is_finite() && self.range.end.is_finite(),
            "float strategy bounds must be finite"
        );
        assert!(self.range.start < self.range.end, "empty float range");
        let unit: f64 = src.random();
        Ok(self.range.start + unit * (self.range.end - self.range.start))
    }
}

/// Uniform booleans. Shrinks toward `false` (a zero draw is `false`).
pub fn bools() -> Bools {
    Bools
}

/// See [`bools`].
#[derive(Debug, Clone, Copy)]
pub struct Bools;

impl Strategy for Bools {
    type Value = bool;
    fn try_build(&self, src: &mut Source) -> Result<bool, Rejected> {
        Ok(src.random_range(0..2u32) == 1)
    }
}

/// The constant strategy: always `value`, consuming no draws.
pub fn just<T: Clone + Debug>(value: T) -> Just<T> {
    Just { value }
}

/// See [`just`].
#[derive(Debug, Clone)]
pub struct Just<T> {
    value: T,
}

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn try_build(&self, _src: &mut Source) -> Result<T, Rejected> {
        Ok(self.value.clone())
    }
}

/// Vectors of `element` values with a length drawn uniformly from
/// `len`. Shrinks toward shorter vectors of smaller elements.
pub fn vecs<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// See [`vecs`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn try_build(&self, src: &mut Source) -> Result<Vec<S::Value>, Rejected> {
        let n = if self.len.start + 1 == self.len.end {
            self.len.start // Fixed length: consume no draw for it.
        } else {
            src.random_range(self.len.clone())
        };
        (0..n).map(|_| self.element.try_build(src)).collect()
    }
}

/// Weighted choice among constants: picks `value` with probability
/// `weight / total`. Shrinks toward the *first* choice, so order the
/// simplest outcome first.
///
/// # Panics
///
/// Panics (at build time) if `choices` is empty or all weights are 0.
pub fn weighted<T: Clone + Debug>(choices: Vec<(u32, T)>) -> Weighted<T> {
    Weighted { choices }
}

/// See [`weighted`].
#[derive(Debug, Clone)]
pub struct Weighted<T> {
    choices: Vec<(u32, T)>,
}

impl<T: Clone + Debug> Strategy for Weighted<T> {
    type Value = T;
    fn try_build(&self, src: &mut Source) -> Result<T, Rejected> {
        let total: u64 = self.choices.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "weighted strategy needs a positive total weight");
        let mut roll = src.random_range(0..total);
        for (w, v) in &self.choices {
            let w = u64::from(*w);
            if roll < w {
                return Ok(v.clone());
            }
            roll -= w;
        }
        unreachable!("roll < total is covered by the cumulative scan")
    }
}

/// Uniform choice among strategies of a common value type. Shrinks
/// toward the first alternative.
///
/// # Panics
///
/// Panics (at build time) if `alternatives` is empty.
pub fn one_of<T: Debug>(alternatives: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    OneOf { alternatives }
}

/// See [`one_of`].
pub struct OneOf<T> {
    alternatives: Vec<BoxedStrategy<T>>,
}

impl<T: Debug> Strategy for OneOf<T> {
    type Value = T;
    fn try_build(&self, src: &mut Source) -> Result<T, Rejected> {
        assert!(!self.alternatives.is_empty(), "one_of needs alternatives");
        let i = src.random_range(0..self.alternatives.len());
        self.alternatives[i].try_build(src)
    }
}

/// `Option<T>` values: `None` or a generated `Some`. Shrinks toward
/// `None`.
pub fn options<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`options`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn try_build(&self, src: &mut Source) -> Result<Option<S::Value>, Rejected> {
        if src.random_range(0..2u32) == 0 {
            Ok(None)
        } else {
            self.inner.try_build(src).map(Some)
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn try_build(&self, src: &mut Source) -> Result<Self::Value, Rejected> {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                Ok(($($name.try_build(src)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;

    fn build<S: Strategy>(s: &S, seed: u64) -> S::Value {
        s.try_build(&mut Source::from_seed(seed))
            .expect("no filter")
    }

    #[test]
    fn ranges_respect_bounds() {
        for seed in 0..200 {
            let v = build(&ints(3..17u32), seed);
            assert!((3..17).contains(&v));
            let f = build(&floats(-2.0..3.5), seed);
            assert!((-2.0..3.5).contains(&f));
        }
    }

    #[test]
    fn vec_lengths_respect_bounds_and_fixed_lengths_draw_nothing() {
        for seed in 0..100 {
            let v = build(&vecs(ints(0..5u8), 2..9), seed);
            assert!((2..9).contains(&v.len()));
        }
        // A fixed length must not consume a draw: zero draws still
        // produce the full-length vector (shrink-stability).
        let mut src = Source::replay(vec![]);
        let v = vecs(ints(0..5u8), 3..4).try_build(&mut src).unwrap();
        assert_eq!(v, vec![0, 0, 0]);
    }

    #[test]
    fn map_and_filter_compose() {
        let even_squares = ints(0..100u64)
            .prop_filter("even", |n| n % 2 == 0)
            .prop_map(|n| n * n);
        for seed in 0..100 {
            let v = build(&even_squares, seed);
            let root = (v as f64).sqrt().round() as u64;
            assert_eq!(root * root, v);
            assert_eq!(root % 2, 0);
        }
    }

    #[test]
    fn unsatisfiable_filters_reject_with_their_label() {
        let s = ints(0..10u32).prop_filter("impossible", |_| false);
        assert_eq!(
            s.try_build(&mut Source::from_seed(1)),
            Err(Rejected {
                filter: Some("impossible")
            })
        );
    }

    #[test]
    fn weighted_choices_follow_weights_and_shrink_to_first() {
        let s = weighted(vec![(1, "rare"), (9, "common")]);
        let hits = (0..2000)
            .filter(|seed| build(&s, *seed) == "common")
            .count();
        assert!((hits as f64 / 2000.0 - 0.9).abs() < 0.05, "{hits}");
        // Zero draws select the first (smallest) alternative.
        let mut src = Source::replay(vec![]);
        assert_eq!(s.try_build(&mut src).unwrap(), "rare");
    }

    #[test]
    fn one_of_and_options_and_just() {
        let s = one_of(vec![just(1u8).boxed(), ints(10..20u8).boxed()]);
        let mut seen_small = false;
        let mut seen_big = false;
        for seed in 0..100 {
            match build(&s, seed) {
                1 => seen_small = true,
                v if (10..20).contains(&v) => seen_big = true,
                v => panic!("unexpected {v}"),
            }
        }
        assert!(seen_small && seen_big);
        let o = options(ints(0..5u8));
        let nones = (0..1000).filter(|s| build(&o, *s).is_none()).count();
        assert!((300..700).contains(&nones), "{nones}");
        // All-zero draws give None (the smallest option).
        assert_eq!(o.try_build(&mut Source::replay(vec![])).unwrap(), None);
    }

    #[test]
    fn tuples_build_left_to_right() {
        let v = build(&(just(1u8), ints(0..9u8), bools()), 3);
        assert_eq!(v.0, 1);
        assert!(v.1 < 9);
    }
}
