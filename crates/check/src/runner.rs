//! The case runner: seeds, discards, shrinking, reporting.

use std::fmt;
use std::panic::{self, AssertUnwindSafe};

use crate::shrink::shrink_draws;
use crate::source::Source;
use crate::strategy::Strategy;

/// Environment variable overriding every suite's case count.
pub const CASES_ENV: &str = "DPACK_CHECK_CASES";
/// Environment variable replaying a single case by its printed seed.
pub const SEED_ENV: &str = "DPACK_CHECK_SEED";

/// A property failure: the message carried back to the report.
///
/// Produced by [`prop_assert!`](crate::prop_assert) /
/// [`prop_assert_eq!`](crate::prop_assert_eq), by returning `Err`
/// directly, or captured from a panic inside the property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failed {
    /// What went wrong.
    pub message: String,
}

impl Failed {
    /// A failure with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for Failed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "property failed: {}", self.message)
    }
}

impl std::error::Error for Failed {}

/// What a property returns: `Ok(())` to pass, `Err` to fail the case.
pub type PropResult = Result<(), Failed>;

/// Runner configuration. Constructed by [`Config::new`], which applies
/// the `DPACK_CHECK_CASES` / `DPACK_CHECK_SEED` environment overrides.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases to run.
    pub cases: u32,
    /// When set, run exactly one case from this seed (the reproduction
    /// path printed by failure reports).
    pub forced_seed: Option<u64>,
    /// Budget of generator+property evaluations the shrinker may spend.
    pub max_shrink_evals: u32,
    /// How many filter-rejected cases to tolerate before giving up.
    pub max_discards: u32,
}

impl Config {
    /// A configuration running `cases` cases, after environment
    /// overrides: `DPACK_CHECK_CASES=<n>` replaces the case count,
    /// `DPACK_CHECK_SEED=<seed>` switches to single-case replay.
    pub fn new(cases: u32) -> Self {
        let cases = env_u64(CASES_ENV).map_or(cases, |n| n.clamp(1, u64::from(u32::MAX)) as u32);
        Self {
            cases,
            forced_seed: env_u64(SEED_ENV),
            max_shrink_evals: 1024,
            max_discards: cases.saturating_mul(16).max(256),
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => panic!("[dpack-check] {name}={raw:?} is not a u64"),
    }
}

/// A passing run's summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Cases that ran and passed.
    pub cases: u32,
    /// Cases discarded by filters.
    pub discards: u32,
}

/// A failing run: everything a report (or a meta-test) needs.
#[derive(Debug, Clone)]
pub struct Failure {
    /// The test name passed to [`run`].
    pub test: String,
    /// The seed that generated the failing case — `DPACK_CHECK_SEED`
    /// input for reproduction.
    pub seed: u64,
    /// Which case hit the failure (0-based; 0 under a forced seed).
    pub case: u32,
    /// `Debug` rendering of the *shrunk* counterexample.
    pub value: String,
    /// The shrunk case's failure message.
    pub message: String,
    /// Shrink candidates adopted.
    pub shrink_steps: u32,
    /// Shrink candidates evaluated.
    pub shrink_evals: u32,
}

impl std::error::Error for Failure {}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[dpack-check] property '{}' failed", self.test)?;
        writeln!(
            f,
            "  counterexample (after {} shrink steps, {} evals):",
            self.shrink_steps, self.shrink_evals
        )?;
        for line in self.value.lines() {
            writeln!(f, "    {line}")?;
        }
        writeln!(f, "  failure: {}", self.message)?;
        writeln!(f, "  seed: {} (case {})", self.seed, self.case)?;
        write!(
            f,
            "  reproduce: {SEED_ENV}={} cargo test -q {}",
            self.seed, self.test
        )
    }
}

/// One generator + property evaluation over a source. `Ok(None)` means
/// the case passed, `Ok(Some(_))` that it failed, `Err(())` that the
/// strategy rejected (filter) or the *generator* panicked.
fn eval_case<S: Strategy>(
    strategy: &S,
    prop: &dyn Fn(&S::Value) -> PropResult,
    src: &mut Source,
) -> Result<Option<(String, Failed)>, ()> {
    let built = panic::catch_unwind(AssertUnwindSafe(|| strategy.try_build(src)));
    let value = match built {
        Ok(Ok(v)) => v,
        Ok(Err(_rejected)) => return Err(()),
        Err(_generator_panic) => return Err(()),
    };
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| prop(&value)));
    Ok(match outcome {
        Ok(Ok(())) => None,
        Ok(Err(failed)) => Some((format!("{value:#?}"), failed)),
        Err(payload) => Some((format!("{value:#?}"), Failed::new(panic_message(&*payload)))),
    })
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// Runs `prop` against values of `strategy` under `config`, returning
/// the (shrunk) failure instead of panicking — the programmatic core of
/// [`check`], used directly by meta-tests.
///
/// # Errors
///
/// The first failing case, minimized by the shrinker.
///
/// # Panics
///
/// Panics if filters discard more than `config.max_discards` cases
/// (the strategy is unsatisfiable in practice).
pub fn run<S: Strategy>(
    test: &str,
    config: &Config,
    strategy: &S,
    prop: &dyn Fn(&S::Value) -> PropResult,
) -> Result<RunSummary, Failure> {
    // The seed of case `i` is a pure function of the test name, so
    // cases are enumerated lazily (a cranked DPACK_CHECK_CASES must
    // cost time, not memory).
    let base = fnv1a(test.as_bytes());
    let total = if config.forced_seed.is_some() {
        1
    } else {
        config.cases
    };

    let mut discards = 0u32;
    let mut passed = 0u32;
    for case in 0..total {
        let seed = config.forced_seed.unwrap_or_else(|| {
            base.wrapping_add(u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        });
        let mut src = Source::from_seed(seed);
        match eval_case(strategy, prop, &mut src) {
            Err(()) => {
                discards += 1;
                assert!(
                    discards <= config.max_discards,
                    "[dpack-check] '{test}' gave up: {discards} cases discarded by filters \
                     (strategy too restrictive?)"
                );
            }
            Ok(None) => passed += 1,
            Ok(Some((_, first_failed))) => {
                // Shrink: minimize the recorded draws, quieting the
                // panic hook while candidates run (each failing
                // candidate panics internally).
                let draws = src.recorded().to_vec();
                let quiet = QuietPanics::install();
                let shrunk = shrink_draws(
                    draws,
                    ("<unshrunk>".to_string(), first_failed),
                    |candidate| {
                        let mut replay = Source::replay(candidate.to_vec());
                        eval_case(strategy, prop, &mut replay).ok().flatten()
                    },
                    config.max_shrink_evals,
                );
                drop(quiet);
                // Re-render the winning buffer once (the initial
                // failure's value string was built pre-shrink).
                let (value, message) = {
                    let mut replay = Source::replay(shrunk.draws.clone());
                    match eval_case(strategy, prop, &mut replay) {
                        Ok(Some((value, failed))) => (value, failed.message),
                        // The shrunk buffer must still fail; fall back
                        // to the recorded failure if re-evaluation is
                        // somehow flaky (e.g. an interior HashMap
                        // iteration order dependence).
                        _ => (shrunk.failure.0, shrunk.failure.1.message),
                    }
                };
                return Err(Failure {
                    test: test.to_string(),
                    seed,
                    case,
                    value,
                    message,
                    shrink_steps: shrunk.adopted,
                    shrink_evals: shrunk.evals,
                });
            }
        }
    }
    Ok(RunSummary {
        cases: passed,
        discards,
    })
}

/// Runs a property over 64 cases (or the `DPACK_CHECK_CASES` /
/// `DPACK_CHECK_SEED` overrides), panicking with a full report —
/// shrunk counterexample, failure message, reproducing seed — on the
/// first failure.
pub fn check<S: Strategy>(test: &str, strategy: S, prop: impl Fn(&S::Value) -> PropResult) {
    check_cases(test, 64, strategy, prop)
}

/// [`check`] with an explicit default case count (still subject to the
/// environment overrides).
pub fn check_cases<S: Strategy>(
    test: &str,
    cases: u32,
    strategy: S,
    prop: impl Fn(&S::Value) -> PropResult,
) {
    let config = Config::new(cases);
    if let Err(failure) = run(test, &config, &strategy, &|v| prop(v)) {
        panic!("{failure}");
    }
}

/// Temporarily replaces the global panic hook with a no-op so shrink
/// candidates (which fail by panicking, by design) do not spam stderr.
/// Restores the previous hook on drop.
///
/// The hook is process-global, so install/restore pairs are serialized
/// through a lock: two concurrently-failing properties must not
/// interleave (the loser would restore the other's no-op hook as "the
/// real one", permanently swallowing all later panic output, including
/// these failure reports). While a shrink is in flight, a panic in an
/// unrelated concurrently-failing test loses its location line (the
/// test still fails normally) — the standard trade-off property
/// runners make.
type PanicHook = Box<dyn Fn(&panic::PanicHookInfo<'_>) + Sync + Send>;

static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

struct QuietPanics {
    previous: Option<PanicHook>,
    _serialized: std::sync::MutexGuard<'static, ()>,
}

impl QuietPanics {
    fn install() -> Self {
        // A poisoned lock only means another shrink panicked while
        // holding it; the hook invariant is restored by its Drop.
        let guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let previous = panic::take_hook();
        panic::set_hook(Box::new(|_| {}));
        Self {
            previous: Some(previous),
            _serialized: guard,
        }
    }
}

impl Drop for QuietPanics {
    fn drop(&mut self) {
        if let Some(previous) = self.previous.take() {
            let _ = panic::take_hook();
            panic::set_hook(previous);
        }
    }
}

/// FNV-1a over the test name: a stable, platform-independent base seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{ints, vecs};

    #[test]
    fn passing_properties_report_all_cases() {
        let cfg = Config {
            cases: 32,
            forced_seed: None,
            max_shrink_evals: 64,
            max_discards: 64,
        };
        let summary = run("always_passes", &cfg, &ints(0..10u32), &|_| Ok(())).unwrap();
        assert_eq!(summary.cases, 32);
        assert_eq!(summary.discards, 0);
    }

    #[test]
    fn seeds_are_stable_across_runs() {
        // The same name and config must produce the same failing seed.
        let cfg = Config {
            cases: 64,
            forced_seed: None,
            max_shrink_evals: 256,
            max_discards: 64,
        };
        let fail = |v: &u32| {
            if *v >= 500 {
                Err(Failed::new("too big"))
            } else {
                Ok(())
            }
        };
        let a = run("stable_seeds", &cfg, &ints(0..1000u32), &fail).unwrap_err();
        let b = run("stable_seeds", &cfg, &ints(0..1000u32), &fail).unwrap_err();
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn forced_seed_replays_the_same_counterexample() {
        let cfg = Config {
            cases: 64,
            forced_seed: None,
            max_shrink_evals: 512,
            max_discards: 64,
        };
        let fail = |v: &Vec<u32>| {
            if v.iter().any(|x| *x >= 700) {
                Err(Failed::new("contains a big element"))
            } else {
                Ok(())
            }
        };
        let strategy = vecs(ints(0..1000u32), 0..20);
        let original = run("forced_replay", &cfg, &strategy, &fail).unwrap_err();
        let forced = Config {
            forced_seed: Some(original.seed),
            ..cfg
        };
        let replayed = run("forced_replay", &forced, &strategy, &fail).unwrap_err();
        assert_eq!(replayed.case, 0);
        assert_eq!(
            replayed.value, original.value,
            "replay must re-shrink identically"
        );
        assert_eq!(replayed.message, original.message);
    }

    #[test]
    fn shrinking_minimizes_through_collections() {
        let cfg = Config {
            cases: 64,
            forced_seed: None,
            max_shrink_evals: 1024,
            max_discards: 64,
        };
        let fail = |v: &Vec<u64>| {
            if v.iter().any(|x| *x >= 1000) {
                Err(Failed::new("big"))
            } else {
                Ok(())
            }
        };
        let failure =
            run("shrinks_vec", &cfg, &vecs(ints(0..10_000u64), 0..30), &fail).unwrap_err();
        assert_eq!(
            failure.value,
            format!("{:#?}", vec![1000u64]),
            "expected the minimal counterexample"
        );
        assert!(failure.shrink_steps > 0);
    }

    #[test]
    fn panics_inside_properties_are_failures_with_captured_messages() {
        let cfg = Config {
            cases: 16,
            forced_seed: None,
            max_shrink_evals: 128,
            max_discards: 64,
        };
        let failure = run("panicking_prop", &cfg, &ints(0..10u32), &|v| {
            assert!(*v > 100, "v was {v}");
            Ok(())
        })
        .unwrap_err();
        assert!(failure.message.contains("panic:"), "{}", failure.message);
        assert!(failure.message.contains("v was"), "{}", failure.message);
    }

    #[test]
    fn report_prints_seed_and_reproduction_line() {
        let f = Failure {
            test: "demo".into(),
            seed: 1234,
            case: 7,
            value: "42".into(),
            message: "boom".into(),
            shrink_steps: 3,
            shrink_evals: 50,
        };
        let report = f.to_string();
        assert!(report.contains("DPACK_CHECK_SEED=1234"));
        assert!(report.contains("seed: 1234"));
        assert!(report.contains("boom"));
    }
}
