//! `dpack-check`: vendored, std-only property testing.
//!
//! The offline build environment cannot fetch `proptest`, so this crate
//! provides the subset the workspace's property suites need, built on
//! the vendored xoshiro256++ shim in `crates/rand`:
//!
//! * [`Strategy`] — value generators with combinators: integer and
//!   float ranges ([`ints`], [`floats`]), collections ([`vecs`]),
//!   tuples, constants ([`just`]), weighted and uniform choice
//!   ([`weighted`], [`one_of`]), [`Strategy::prop_map`] and
//!   [`Strategy::prop_filter`].
//! * A runner ([`check`], [`check_cases`]) with a configurable case
//!   count and deterministic per-case seeds.
//! * Greedy input shrinking that minimizes failing cases and prints the
//!   reproducing seed.
//!
//! # Design: draw-stream generation
//!
//! A strategy builds its value from a [`Source`] — a stream of `u64`
//! draws that is *recorded* during generation and *replayed* during
//! shrinking (the Hypothesis approach). Shrinking never inverts a
//! generator: it mutates the recorded draw buffer (deleting spans,
//! minimizing individual draws toward zero) and re-runs the generator
//! on the mutated stream. Because every primitive strategy maps
//! smaller draws to "smaller" values (range strategies collapse toward
//! their start, vector lengths toward their minimum, choices toward
//! their first alternative), buffer minimization is value minimization
//! — and it composes through [`Strategy::prop_map`] and
//! [`Strategy::prop_filter`] with no extra machinery.
//!
//! # Reproducibility
//!
//! Each case runs from a deterministic seed derived from the test name
//! and case index. A failure report prints that seed; re-running with
//! `DPACK_CHECK_SEED=<seed>` replays exactly that case (and its
//! deterministic shrink). `DPACK_CHECK_CASES=<n>` overrides every
//! suite's case count, e.g. to crank nightly runs.
//!
//! # Examples
//!
//! ```
//! use dpack_check::{check, floats, vecs, prop_assert, PropResult};
//!
//! check("sum_is_monotone", vecs(floats(0.0..1.0), 0..20), |xs| {
//!     let sum: f64 = xs.iter().sum();
//!     prop_assert!(sum >= 0.0, "negative sum {sum}");
//!     Ok(())
//! });
//! ```

mod runner;
mod shrink;
mod source;
mod strategy;

pub use runner::{check, check_cases, run, Config, Failed, Failure, PropResult, RunSummary};
pub use source::Source;
pub use strategy::{
    bools, floats, ints, just, one_of, options, vecs, weighted, BoxedStrategy, Rejected, Strategy,
};

/// Fails the enclosing property with a message when the condition does
/// not hold (the `dpack-check` analogue of proptest's `prop_assert!`).
///
/// Must be used inside a closure returning [`PropResult`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::Failed::new(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::Failed::new(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing property when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::Failed::new(format!(
                "assertion failed: `{:?}` != `{:?}` ({} != {})",
                l,
                r,
                stringify!($left),
                stringify!($right)
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::Failed::new(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}
