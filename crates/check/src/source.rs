//! The draw stream strategies build values from.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A stream of `u64` draws, recorded during generation and replayed
/// (possibly mutated) during shrinking.
///
/// In *generation* mode, draws come from a seeded xoshiro256++ stream
/// and are recorded. In *replay* mode, draws come from a fixed buffer;
/// once it is exhausted every further draw is `0` — for every built-in
/// strategy a zero draw is the "smallest" outcome, so truncation is a
/// shrink, never an error.
#[derive(Debug)]
pub struct Source {
    rng: Option<StdRng>,
    draws: Vec<u64>,
    pos: usize,
}

impl Source {
    /// A recording source seeded deterministically.
    pub fn from_seed(seed: u64) -> Self {
        Self {
            rng: Some(StdRng::seed_from_u64(seed)),
            draws: Vec::new(),
            pos: 0,
        }
    }

    /// A replay source over a fixed draw buffer.
    pub fn replay(draws: Vec<u64>) -> Self {
        Self {
            rng: None,
            draws,
            pos: 0,
        }
    }

    /// The draws consumed so far (generation mode: everything drawn).
    pub fn recorded(&self) -> &[u64] {
        &self.draws[..self.pos.min(self.draws.len())]
    }

    /// Number of draws consumed.
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

impl Rng for Source {
    fn next_u64(&mut self) -> u64 {
        let v = match &mut self.rng {
            Some(rng) => {
                let v = rng.next_u64();
                self.draws.push(v);
                v
            }
            None => self.draws.get(self.pos).copied().unwrap_or(0),
        };
        self.pos += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn generation_records_the_stream() {
        let mut s = Source::from_seed(7);
        let a: Vec<u64> = (0..5).map(|_| s.next_u64()).collect();
        assert_eq!(s.recorded(), &a[..]);
        assert_eq!(s.consumed(), 5);
    }

    #[test]
    fn replay_reproduces_and_pads_with_zero() {
        let mut gen_src = Source::from_seed(42);
        let drawn: Vec<u64> = (0..3).map(|_| gen_src.next_u64()).collect();
        let mut replay = Source::replay(drawn.clone());
        for d in &drawn {
            assert_eq!(replay.next_u64(), *d);
        }
        assert_eq!(replay.next_u64(), 0, "exhausted replay pads with zero");
        assert_eq!(replay.next_u64(), 0);
    }

    #[test]
    fn range_sampling_is_monotone_in_the_draw() {
        // The shrinker relies on smaller draws producing smaller values.
        let lo = Source::replay(vec![0]).random_range(5..50usize);
        assert_eq!(lo, 5);
        let hi = Source::replay(vec![u64::MAX]).random_range(5..50usize);
        assert_eq!(hi, 49);
        let f = Source::replay(vec![0]).random::<f64>();
        assert_eq!(f, 0.0);
    }
}
