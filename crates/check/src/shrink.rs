//! Greedy minimization of a failing case's recorded draw buffer.
//!
//! The shrinker never touches generated values directly: it proposes
//! smaller draw buffers and lets the caller re-run generator + property
//! on each candidate. A candidate is adopted when the property still
//! fails on it. Every built-in strategy maps smaller draws to smaller
//! values, so minimizing the buffer minimizes the counterexample.
//!
//! Passes, repeated to a fixpoint (or until the evaluation budget runs
//! out), in deterministic order:
//!
//! 1. **Span deletion** — remove contiguous chunks, halving the chunk
//!    size from `len/2` down to 1. Deleting a span both shortens
//!    collections (their length draw re-interprets the shorter stream)
//!    and drops unlucky draws entirely.
//! 2. **Per-draw minimization** — for each position, binary-search the
//!    smallest replacement draw that keeps the property failing
//!    (monotone strategies make the search exact; for non-monotone
//!    cases it is still a sound greedy heuristic).

/// The outcome of a shrink run.
#[derive(Debug, Clone)]
pub(crate) struct Shrunk<T> {
    /// The minimized draw buffer.
    pub draws: Vec<u64>,
    /// The failure produced by the minimized buffer.
    pub failure: T,
    /// Candidates adopted (shrink steps).
    pub adopted: u32,
    /// Candidates evaluated (including rejected ones).
    pub evals: u32,
}

/// Minimizes `draws` under `still_fails`, which re-runs generator and
/// property and returns `Some(failure)` when the candidate still fails.
pub(crate) fn shrink_draws<T>(
    draws: Vec<u64>,
    initial_failure: T,
    mut still_fails: impl FnMut(&[u64]) -> Option<T>,
    max_evals: u32,
) -> Shrunk<T> {
    let mut best = Shrunk {
        draws,
        failure: initial_failure,
        adopted: 0,
        evals: 0,
    };

    loop {
        let mut improved = false;

        // Pass 1: span deletion, largest chunks first.
        let mut chunk = (best.draws.len() / 2).max(1);
        while chunk >= 1 && !best.draws.is_empty() {
            let mut start = 0;
            while start < best.draws.len() {
                if best.evals >= max_evals {
                    return best;
                }
                let end = (start + chunk).min(best.draws.len());
                let mut candidate = best.draws.clone();
                candidate.drain(start..end);
                best.evals += 1;
                if let Some(failure) = still_fails(&candidate) {
                    best.draws = candidate;
                    best.failure = failure;
                    best.adopted += 1;
                    improved = true;
                    // Re-try the same start: the next span slid into it.
                } else {
                    start += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Pass 2: binary-search each draw toward zero.
        for i in 0..best.draws.len() {
            let original = best.draws[i];
            if original == 0 {
                continue;
            }
            // Invariant: `hi` fails (it is the current draw); search the
            // smallest failing value in [lo, hi] assuming monotonicity.
            let (mut lo, mut hi) = (0u64, original);
            while lo < hi {
                if best.evals >= max_evals {
                    return best;
                }
                let mid = lo + (hi - lo) / 2;
                let mut candidate = best.draws.clone();
                candidate[i] = mid;
                best.evals += 1;
                if let Some(failure) = still_fails(&candidate) {
                    best.draws = candidate;
                    best.failure = failure;
                    best.adopted += 1;
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            if best.draws[i] < original {
                improved = true;
            }
        }

        if !improved || best.evals >= max_evals {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_a_single_draw_to_the_threshold() {
        // "Fails" when the draw is >= 1000: the minimum is exactly 1000.
        let out = shrink_draws(
            vec![987_654_321],
            (),
            |d| (d.first().copied().unwrap_or(0) >= 1000).then_some(()),
            10_000,
        );
        assert_eq!(out.draws, vec![1000]);
        assert!(out.adopted > 0);
    }

    #[test]
    fn deletes_irrelevant_draws() {
        // Only the presence of some draw >= 50 matters.
        let out = shrink_draws(
            vec![3, 99, 7, 12, 60, 4],
            (),
            |d| d.iter().any(|&v| v >= 50).then_some(()),
            10_000,
        );
        assert_eq!(out.draws, vec![50]);
    }

    #[test]
    fn respects_the_eval_budget() {
        let out = shrink_draws(
            vec![u64::MAX; 64],
            (),
            |_| Some(()), // Everything fails: shrinking could run forever.
            100,
        );
        assert!(out.evals <= 100);
    }

    #[test]
    fn is_deterministic() {
        let run = || {
            shrink_draws(
                vec![17, 923, 5, 44_000, 8, 8, 123],
                (),
                |d| (d.iter().sum::<u64>() >= 500).then_some(()),
                10_000,
            )
        };
        let (a, b) = (run(), run());
        assert_eq!(a.draws, b.draws);
        assert_eq!(a.adopted, b.adopted);
        assert_eq!(a.evals, b.evals);
    }
}
