//! Meta-tests: dpack-check's failure pipeline end to end.
//!
//! These exercise the acceptance path for every suite built on this
//! crate: a broken invariant must produce a *shrunk* counterexample
//! with a printed seed that reproduces the exact same counterexample
//! deterministically (the `DPACK_CHECK_SEED` workflow), using the
//! programmatic [`run`] API so the panicking `check` wrapper stays
//! untouched.

use dpack_check::{
    bools, check, floats, ints, prop_assert, prop_assert_eq, run, vecs, Config, Failure,
    PropResult, Strategy,
};

fn config() -> Config {
    Config {
        cases: 128,
        forced_seed: None,
        max_shrink_evals: 2048,
        max_discards: 2048,
    }
}

/// A deliberately broken invariant: "no vector sums past 1500" over
/// vectors that easily do.
fn broken_invariant(v: &[u64]) -> PropResult {
    let sum: u64 = v.iter().sum();
    prop_assert!(sum < 1500, "sum {sum} exceeded the (wrong) bound");
    Ok(())
}

fn broken_run(cfg: &Config) -> Failure {
    run(
        "selftest_broken_invariant",
        cfg,
        &vecs(ints(0..1000u64), 0..40),
        &|v| broken_invariant(v),
    )
    .expect_err("the invariant is broken by construction")
}

#[test]
fn broken_invariant_is_found_shrunk_and_seed_reproducible() {
    let failure = broken_run(&config());

    // The counterexample was minimized, not just reported raw.
    assert!(failure.shrink_steps > 0, "no shrinking happened");
    let shrunk: Vec<u64> = failure
        .value
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().unwrap())
        .collect();
    let sum: u64 = shrunk.iter().sum();
    // 1-minimality (the greedy guarantee): the shrunk case still
    // fails, sits exactly on the threshold (no draw can be lowered),
    // and no single element can be deleted.
    assert_eq!(sum, 1500, "not draw-minimal: {shrunk:?}");
    for (i, v) in shrunk.iter().enumerate() {
        assert!(sum - v < 1500, "element {i} ({v}) is deletable: {shrunk:?}");
    }

    // The printed seed reproduces the identical shrunk counterexample.
    let forced = Config {
        forced_seed: Some(failure.seed),
        ..config()
    };
    let replay = broken_run(&forced);
    assert_eq!(replay.value, failure.value);
    assert_eq!(replay.message, failure.message);

    // And the report carries the reproduction line.
    let report = failure.to_string();
    assert!(report.contains(&format!("DPACK_CHECK_SEED={}", failure.seed)));
}

#[test]
fn failure_runs_are_deterministic_end_to_end() {
    let (a, b) = (broken_run(&config()), broken_run(&config()));
    assert_eq!(a.seed, b.seed);
    assert_eq!(a.case, b.case);
    assert_eq!(a.value, b.value);
    assert_eq!(a.shrink_steps, b.shrink_steps);
    assert_eq!(a.shrink_evals, b.shrink_evals);
}

#[test]
fn shrinking_reaches_through_map_and_filter() {
    // A mapped + filtered strategy: the minimized case must satisfy
    // the filter and still break the property — shrinking operates on
    // the underlying draws, so combinators are transparent to it.
    let strategy = vecs(
        (ints(0..1000u64), floats(0.0..1.0)).prop_map(|(w, f)| (w, f)),
        1..20,
    )
    .prop_filter("nonempty", |v| !v.is_empty());
    let failure = run("selftest_map_filter", &config(), &strategy, &|v: &Vec<
        (u64, f64),
    >| {
        prop_assert!(v.iter().all(|(w, _)| *w < 90), "an element is too heavy");
        Ok(())
    })
    .expect_err("breakable");
    // Minimal: exactly one pair, weight on the threshold, float at 0.
    assert_eq!(failure.value.matches('(').count(), 1, "{}", failure.value);
    assert!(failure.value.contains("90"), "{}", failure.value);
    assert!(failure.value.contains("0.0"), "{}", failure.value);
}

#[test]
fn passing_suites_stay_quiet() {
    // The public `check` wrapper: a true invariant over mixed
    // strategies runs to completion without panicking.
    check(
        "selftest_true_invariant",
        (vecs(floats(0.0..2.0), 0..10), bools(), ints(1..5u32)),
        |(xs, flip, k)| {
            let sum: f64 = xs.iter().sum();
            let sign = if *flip { 1.0 } else { 2.0 };
            let scaled = sum * f64::from(*k) * sign;
            prop_assert!(scaled >= 0.0);
            prop_assert_eq!(scaled == 0.0, sum == 0.0);
            Ok(())
        },
    );
}

#[test]
fn discard_heavy_strategies_still_complete() {
    check(
        "selftest_filter_discards",
        ints(0..1000u32).prop_filter("divisible by 7", |n| n % 7 == 0),
        |n| {
            prop_assert_eq!(n % 7, 0);
            Ok(())
        },
    );
}
