//! Client-side transports: how framed bytes reach a server.
//!
//! The [`Transport`] trait is the seam that lets every protocol test
//! run without a socket: [`TcpTransport`] carries frames over a real
//! `TcpStream`, [`LoopbackTransport`] hands them straight to an
//! in-process [`ServiceCore`] — same codecs, same request semantics,
//! no reactor, no ports. The client is written against the trait and
//! cannot tell the difference.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;

use dpack_service::BudgetService;

use crate::error::NetError;
use crate::server::{ServiceCore, Step};
use crate::wire::{frame_into, FrameDecoder};

/// A bidirectional, ordered frame pipe to a server.
///
/// `send_frame` takes the *message payload* (unframed); the transport
/// adds the frame header. `recv_frame` returns the next inbound
/// payload, blocking until one is available.
pub trait Transport: Send {
    /// Sends one message payload.
    ///
    /// # Errors
    ///
    /// Transport failures ([`NetError::Io`], [`NetError::Closed`]).
    fn send_frame(&mut self, payload: &[u8]) -> Result<(), NetError>;

    /// Receives the next message payload, blocking until it arrives.
    ///
    /// # Errors
    ///
    /// Transport failures, or [`NetError::Protocol`] when the inbound
    /// stream is corrupt.
    fn recv_frame(&mut self) -> Result<Vec<u8>, NetError>;

    /// Bounds how long `recv_frame` blocks; an expired bound surfaces
    /// as [`NetError::Timeout`]. `None` restores indefinite blocking.
    /// The default implementation ignores the bound (in-process
    /// transports answer synchronously and never block meaningfully).
    ///
    /// # Errors
    ///
    /// Socket configuration failures.
    fn set_read_timeout(&mut self, timeout: Option<std::time::Duration>) -> Result<(), NetError> {
        let _ = timeout;
        Ok(())
    }
}

/// Frames over a blocking `TcpStream`.
pub struct TcpTransport {
    stream: TcpStream,
    decoder: FrameDecoder,
    scratch: Vec<u8>,
}

impl TcpTransport {
    /// Connects to a [`crate::NetServer`] (or anything speaking the
    /// protocol).
    ///
    /// # Errors
    ///
    /// Socket connect/configuration failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            decoder: FrameDecoder::new(),
            scratch: Vec::new(),
        })
    }
}

impl Transport for TcpTransport {
    fn send_frame(&mut self, payload: &[u8]) -> Result<(), NetError> {
        self.scratch.clear();
        frame_into(&mut self.scratch, payload);
        self.stream.write_all(&self.scratch)?;
        Ok(())
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, NetError> {
        loop {
            if let Some(payload) = self.decoder.next_frame()? {
                return Ok(payload);
            }
            let mut chunk = [0u8; 8192];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(NetError::Closed),
                Ok(n) => self.decoder.extend(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // SO_RCVTIMEO surfaces as WouldBlock or TimedOut
                // depending on the platform.
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(NetError::Timeout)
                }
                Err(e) => return Err(NetError::Io(e)),
            }
        }
    }

    fn set_read_timeout(&mut self, timeout: Option<std::time::Duration>) -> Result<(), NetError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }
}

/// An in-memory transport wired directly to a [`ServiceCore`] — the
/// protocol without the sockets. `send_frame` runs the request
/// synchronously; `recv_frame` serves buffered immediate replies
/// first, then parks on the oldest pending decision (so something must
/// drive [`BudgetService::run_cycle`] — a background
/// [`dpack_service::ServiceHandle`] or the test itself — before or
/// while receiving).
pub struct LoopbackTransport {
    core: ServiceCore,
    ready: VecDeque<Vec<u8>>,
    pending: VecDeque<crate::server::PendingReply>,
    /// Per-connection handshake state, exactly as a socket connection
    /// tracks it — a secured core refuses everything until a
    /// successful `Hello`.
    authed: bool,
}

impl LoopbackTransport {
    /// Attaches to a shared service.
    pub fn new(service: Arc<BudgetService>) -> Self {
        Self::with_core(ServiceCore::new(service))
    }

    /// Attaches to an arbitrary core — a replica role, or a test
    /// harness core.
    pub fn with_core(core: ServiceCore) -> Self {
        Self {
            core,
            ready: VecDeque::new(),
            pending: VecDeque::new(),
            authed: false,
        }
    }
}

impl Transport for LoopbackTransport {
    fn send_frame(&mut self, payload: &[u8]) -> Result<(), NetError> {
        match self.core.handle_with(payload, &mut self.authed)? {
            Step::Reply(reply) => self.ready.push_back(reply),
            Step::Pending(p) => self.pending.push_back(p),
        }
        Ok(())
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, NetError> {
        if let Some(reply) = self.ready.pop_front() {
            return Ok(reply);
        }
        match self.pending.pop_front() {
            Some(p) => Ok(p.wait()),
            None => Err(NetError::Closed),
        }
    }
}
