//! The wire protocol: framing and message codecs.
//!
//! # Framing
//!
//! Every message — request and response alike — travels in one frame,
//! the same magic+len+checksum discipline as the WAL's on-disk format
//! (a torn or corrupted stream is detected at the frame boundary,
//! never half-decoded):
//!
//! ```text
//! ┌──────────┬────────────┬──────────────┬──────────────┐
//! │ 0xDA  u8 │ len u32 LE │ check u64 LE │ payload[len] │
//! └──────────┴────────────┴──────────────┴──────────────┘
//! ```
//!
//! with `check = fnv1a64(len_le ‖ payload)`. A frame whose magic,
//! length bound, or checksum fails marks the stream unrecoverable —
//! unlike a log file there is no "truncate and resume" for a socket,
//! so both ends drop the connection.
//!
//! # Messages
//!
//! The payload is `tag u8 ‖ request_id u64 ‖ body`. The request id is
//! chosen by the client and echoed verbatim in the response, which is
//! what makes **pipelining** work: a client may send any number of
//! requests before reading, and the server may answer *out of order*
//! (submissions resolve at a later scheduling cycle; stats answer
//! immediately). All integers and float bit patterns are
//! little-endian; curves travel as raw `f64::to_bits` so a budget
//! round-trips bit-exactly.
//!
//! Lists carry a `u32` length validated against the bytes actually
//! remaining before any allocation, so a hostile length prefix is a
//! decode error, never a huge allocation.

use std::fmt;

use dp_accounting::AlphaGrid;
use dpack_core::problem::Task;
use dpack_obs::{Event, EventKind, HistogramSnapshot, Sample, Span, SpanKind, TraceContext, Value};
use dpack_service::AdmissionError;

use crate::error::{ErrorCode, NetError};

/// First byte of every frame (distinct from the WAL's 0xD7/0xD8 so a
/// file/socket mix-up fails loudly).
pub const MAGIC: u8 = 0xDA;
/// Frame header bytes: magic + length + checksum.
pub const HEADER: usize = 1 + 4 + 8;
/// Upper bound on one frame's payload; a peer claiming more is
/// violating the protocol (far above any real message, far below an
/// allocation attack).
pub const MAX_FRAME: u32 = 1 << 24;
/// Upper bound on tasks in one [`Request::SubmitBatch`]. Bounding the
/// *request* bounds its `BatchDecision` reply too — an unbounded batch
/// of minimal tasks could otherwise decode fine yet produce a reply
/// larger than [`MAX_FRAME`] (rejection outcomes are bigger than the
/// malformed tasks that cause them).
pub const MAX_BATCH_TASKS: u32 = 4096;

const FNV_INIT: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv1a(state: u64, bytes: &[u8]) -> u64 {
    let mut hash = state;
    for b in bytes {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Frames a payload into `out`.
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_FRAME`] (a local bug: messages
/// are bounded far below it).
pub fn frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    let len = u32::try_from(payload.len()).expect("frame exceeds u32 length");
    assert!(len <= MAX_FRAME, "frame exceeds the {MAX_FRAME}-byte cap");
    let len_le = len.to_le_bytes();
    let check = fnv1a(fnv1a(FNV_INIT, &len_le), payload);
    out.reserve(HEADER + payload.len());
    out.push(MAGIC);
    out.extend_from_slice(&len_le);
    out.extend_from_slice(&check.to_le_bytes());
    out.extend_from_slice(payload);
}

/// Frames a payload into a fresh buffer.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER + payload.len());
    frame_into(&mut out, payload);
    out
}

/// Incremental frame decoder over a byte stream: feed reads in with
/// [`FrameDecoder::extend`], pop complete payloads with
/// [`FrameDecoder::next_frame`]. Both the server reactor (nonblocking
/// reads arrive in arbitrary chunks) and the blocking client transport
/// run their inbound bytes through this.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted opportunistically).
    at: usize,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes read from the stream.
    pub fn extend(&mut self, bytes: &[u8]) {
        // Compact before growing: the steady state keeps the buffer at
        // one in-flight frame.
        if self.at > 0 && self.at == self.buf.len() {
            self.buf.clear();
            self.at = 0;
        } else if self.at > 4096 {
            self.buf.drain(..self.at);
            self.at = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame's payload, `Ok(None)` if more bytes
    /// are needed.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] on bad magic, an oversized length, or a
    /// checksum mismatch — the stream cannot be resynchronized and the
    /// connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        let rest = &self.buf[self.at..];
        if rest.len() < HEADER {
            return Ok(None);
        }
        if rest[0] != MAGIC {
            return Err(NetError::Protocol(format!(
                "bad frame magic 0x{:02X}",
                rest[0]
            )));
        }
        let len = u32::from_le_bytes(rest[1..5].try_into().expect("sized slice"));
        if len > MAX_FRAME {
            return Err(NetError::Protocol(format!(
                "frame length {len} exceeds the {MAX_FRAME}-byte cap"
            )));
        }
        if rest.len() - HEADER < len as usize {
            return Ok(None);
        }
        let check = u64::from_le_bytes(rest[5..13].try_into().expect("sized slice"));
        let payload = &rest[HEADER..HEADER + len as usize];
        if fnv1a(fnv1a(FNV_INIT, &len.to_le_bytes()), payload) != check {
            return Err(NetError::Protocol("frame checksum mismatch".into()));
        }
        let payload = payload.to_vec();
        self.at += HEADER + len as usize;
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.at
    }
}

// ---- primitive codec --------------------------------------------------

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    put_u64(buf, v.to_bits());
}

fn put_len(buf: &mut Vec<u8>, n: usize) {
    put_u32(buf, u32::try_from(n).expect("list exceeds u32 length"));
}

fn put_f64s(buf: &mut Vec<u8>, vs: &[f64]) {
    put_len(buf, vs.len());
    for v in vs {
        put_f64(buf, *v);
    }
}

fn put_u64s(buf: &mut Vec<u8>, vs: &[u64]) {
    put_len(buf, vs.len());
    for v in vs {
        put_u64(buf, *v);
    }
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_len(buf, s.len());
    buf.extend_from_slice(s.as_bytes());
}

fn bad(what: impl Into<String>) -> NetError {
    NetError::Protocol(what.into())
}

struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.bytes.len() < n {
            return Err(bad("message truncated"));
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, NetError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("sized")))
    }

    fn u32(&mut self) -> Result<u32, NetError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("sized")))
    }

    fn u64(&mut self) -> Result<u64, NetError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("sized")))
    }

    fn f64(&mut self) -> Result<f64, NetError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A list length validated against the bytes actually remaining
    /// (`elem_bytes` per element) — a hostile length prefix must be a
    /// protocol error, never an allocation request.
    fn list_len(&mut self, elem_bytes: usize) -> Result<usize, NetError> {
        let n = self.u32()? as usize;
        if n.checked_mul(elem_bytes)
            .is_none_or(|b| b > self.bytes.len())
        {
            return Err(bad("list length exceeds the message"));
        }
        Ok(n)
    }

    fn f64s(&mut self) -> Result<Vec<f64>, NetError> {
        let n = self.list_len(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    fn u64s(&mut self) -> Result<Vec<u64>, NetError> {
        let n = self.list_len(8)?;
        (0..n).map(|_| self.u64()).collect()
    }

    fn str(&mut self) -> Result<String, NetError> {
        let n = self.list_len(1)?;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| bad("string is not utf-8"))
    }

    /// A length-prefixed byte blob (opaque record payloads).
    fn blob(&mut self) -> Result<Vec<u8>, NetError> {
        let n = self.list_len(1)?;
        Ok(self.take(n)?.to_vec())
    }

    fn done(self) -> Result<(), NetError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(bad("trailing bytes after message"))
        }
    }
}

// ---- task / block payloads -------------------------------------------

/// A task as it travels on the wire: curve values without a grid (the
/// server rebuilds them on its own grid; mismatched lengths surface as
/// [`ErrorCode::GridMismatch`]).
#[derive(Debug, Clone, PartialEq)]
pub struct WireTask {
    /// The task id (the commit key; unique while live).
    pub id: u64,
    /// Utility weight.
    pub weight: f64,
    /// Arrival in virtual time.
    pub arrival: f64,
    /// Relative eviction timeout.
    pub timeout: Option<f64>,
    /// Per-order demand values (bit-exact).
    pub demand: Vec<f64>,
    /// Requested block ids.
    pub blocks: Vec<u64>,
}

impl WireTask {
    /// Captures an in-process task for the wire.
    pub fn from_task(task: &Task) -> Self {
        Self {
            id: task.id,
            weight: task.weight,
            arrival: task.arrival,
            timeout: task.timeout,
            demand: task.demand.values().to_vec(),
            blocks: task.blocks.clone(),
        }
    }

    /// Rebuilds the in-process task on the service's grid. The block
    /// list is carried **verbatim** — deliberately not normalized the
    /// way [`Task::new`] sorts and deduplicates — so the service's
    /// admission validation judges exactly what the tenant sent, and a
    /// malformed remote submission is rejected precisely when the same
    /// raw task would be rejected in-process (the equivalence the
    /// protocol suite asserts).
    ///
    /// # Errors
    ///
    /// [`AdmissionError::GridMismatch`] when the demand values do not
    /// fit the grid — the same rejection an in-process mismatch gets.
    pub fn into_task(self, grid: &AlphaGrid) -> Result<Task, AdmissionError> {
        let demand = dp_accounting::RdpCurve::new(grid, self.demand)
            .map_err(|_| AdmissionError::GridMismatch { task: self.id })?;
        let mut task = Task::new(self.id, self.weight, Vec::new(), demand, self.arrival);
        task.blocks = self.blocks;
        task.timeout = self.timeout;
        Ok(task)
    }

    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.id);
        put_f64(buf, self.weight);
        put_f64(buf, self.arrival);
        match self.timeout {
            Some(t) => {
                buf.push(1);
                put_f64(buf, t);
            }
            None => buf.push(0),
        }
        put_f64s(buf, &self.demand);
        put_u64s(buf, &self.blocks);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        let id = r.u64()?;
        let weight = r.f64()?;
        let arrival = r.f64()?;
        let timeout = match r.u8()? {
            0 => None,
            1 => Some(r.f64()?),
            t => return Err(bad(format!("bad timeout flag {t}"))),
        };
        Ok(Self {
            id,
            weight,
            arrival,
            timeout,
            demand: r.f64s()?,
            blocks: r.u64s()?,
        })
    }
}

/// The final outcome of one submitted task, as reported to a remote
/// tenant. This is a *decision*, not a transport error: the request
/// round-trip succeeded and the service answered.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// A scheduling cycle committed the grant.
    Granted {
        /// Virtual time of the committing cycle.
        allocated_at: f64,
    },
    /// Admission refused the task; the code is stable
    /// ([`crate::error::admission_code`]).
    Rejected {
        /// The stable rejection code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The task timed out in the pending set and was evicted.
    Evicted,
}

impl Outcome {
    /// Whether this outcome is a grant.
    pub fn is_granted(&self) -> bool {
        matches!(self, Self::Granted { .. })
    }

    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Self::Granted { allocated_at } => {
                buf.push(1);
                put_f64(buf, *allocated_at);
            }
            Self::Rejected { code, message } => {
                buf.push(2);
                put_u16(buf, code.as_u16());
                put_str(buf, message);
            }
            Self::Evicted => buf.push(3),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        Ok(match r.u8()? {
            1 => Self::Granted {
                allocated_at: r.f64()?,
            },
            2 => {
                let raw = r.u16()?;
                let code = ErrorCode::from_u16(raw)
                    .ok_or_else(|| bad(format!("unknown error code {raw}")))?;
                Self::Rejected {
                    code,
                    message: r.str()?,
                }
            }
            3 => Self::Evicted,
            t => return Err(bad(format!("unknown outcome tag {t}"))),
        })
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Granted { allocated_at } => write!(f, "granted at t={allocated_at}"),
            Self::Rejected { code, message } => write!(f, "rejected [{code}]: {message}"),
            Self::Evicted => write!(f, "evicted (timeout)"),
        }
    }
}

/// Service counters as reported over the wire (a fixed-size subset of
/// [`dpack_service::StatsSummary`] plus the live queue/pending depths).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WireStats {
    /// Submissions attempted.
    pub submitted: u64,
    /// Submissions admitted.
    pub admitted: u64,
    /// Submissions rejected at admission.
    pub rejected: u64,
    /// Tasks granted budget.
    pub granted: u64,
    /// Tasks evicted by timeout.
    pub evicted: u64,
    /// Scheduling cycles run.
    pub cycles: u64,
    /// Sum of granted weights.
    pub granted_weight: f64,
    /// Granted tasks per second of cycle wall time.
    pub throughput: f64,
    /// Current admission-queue depth.
    pub queue_depth: u64,
    /// Tasks ingested but not yet granted or evicted.
    pub pending: u64,
}

impl WireStats {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        for v in [
            self.submitted,
            self.admitted,
            self.rejected,
            self.granted,
            self.evicted,
            self.cycles,
        ] {
            put_u64(buf, v);
        }
        put_f64(buf, self.granted_weight);
        put_f64(buf, self.throughput);
        put_u64(buf, self.queue_depth);
        put_u64(buf, self.pending);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        Ok(Self {
            submitted: r.u64()?,
            admitted: r.u64()?,
            rejected: r.u64()?,
            granted: r.u64()?,
            evicted: r.u64()?,
            cycles: r.u64()?,
            granted_weight: r.f64()?,
            throughput: r.f64()?,
            queue_depth: r.u64()?,
            pending: r.u64()?,
        })
    }
}

/// A peer as one node sees it, inside a [`WireClusterStatus`].
#[derive(Debug, Clone, PartialEq)]
pub struct WirePeer {
    /// The peer's node id.
    pub id: u64,
    /// The peer's advertised address.
    pub addr: String,
    /// Failure-detector state: 0 = up, 1 = suspect, 2 = down.
    pub state: u8,
    /// The peer's last observed election term.
    pub term: u64,
    /// Whether the peer last claimed to be primary.
    pub is_primary: bool,
    /// Per-stream replication lag (primary's durable seq − the peer's
    /// acked seq), shards in index order then the coordinator stream.
    /// Populated only when the answering node is the primary; empty
    /// otherwise.
    pub lag: Vec<u64>,
    /// Current redial backoff on the peer's replication link (nanos;
    /// 0 when the link is healthy).
    pub backoff_nanos: u64,
    /// Completed resync rounds this primaryship has run for the peer.
    pub resyncs: u64,
}

impl WirePeer {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.id);
        put_str(buf, &self.addr);
        buf.push(self.state);
        put_u64(buf, self.term);
        buf.push(u8::from(self.is_primary));
        put_u64s(buf, &self.lag);
        put_u64(buf, self.backoff_nanos);
        put_u64(buf, self.resyncs);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        Ok(Self {
            id: r.u64()?,
            addr: r.str()?,
            state: match r.u8()? {
                s @ 0..=2 => s,
                s => return Err(bad(format!("bad peer state {s}"))),
            },
            term: r.u64()?,
            is_primary: match r.u8()? {
                0 => false,
                1 => true,
                t => return Err(bad(format!("bad primary flag {t}"))),
            },
            lag: r.u64s()?,
            backoff_nanos: r.u64()?,
            resyncs: r.u64()?,
        })
    }
}

/// One node's answer to [`Request::ClusterStatus`]: its own identity
/// and durable state, plus its live view of every peer.
#[derive(Debug, Clone, PartialEq)]
pub struct WireClusterStatus {
    /// The answering node's id.
    pub node_id: u64,
    /// Whether it currently holds the primary role.
    pub is_primary: bool,
    /// Its current election term.
    pub term: u64,
    /// The node it believes leads (0 = unknown).
    pub leader: u64,
    /// Its durable per-stream seq vector (shards in index order, then
    /// the coordinator stream).
    pub vector: Vec<u64>,
    /// Its view of each configured peer.
    pub peers: Vec<WirePeer>,
}

impl WireClusterStatus {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.node_id);
        buf.push(u8::from(self.is_primary));
        put_u64(buf, self.term);
        put_u64(buf, self.leader);
        put_u64s(buf, &self.vector);
        put_len(buf, self.peers.len());
        for p in &self.peers {
            p.encode_into(buf);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        let node_id = r.u64()?;
        let is_primary = match r.u8()? {
            0 => false,
            1 => true,
            t => return Err(bad(format!("bad primary flag {t}"))),
        };
        let term = r.u64()?;
        let leader = r.u64()?;
        let vector = r.u64s()?;
        // A peer is at least id + addr len + state + term + flag +
        // lag len + backoff + resyncs = 42 bytes.
        let n = r.list_len(42)?;
        let peers = (0..n)
            .map(|_| WirePeer::decode(&mut *r))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            node_id,
            is_primary,
            term,
            leader,
            vector,
            peers,
        })
    }
}

// ---- observability payloads ------------------------------------------

// A [`dpack_obs::Value`] travels as a kind byte + body. Histograms go
// sparse: only non-empty buckets are sent (a idle histogram is 3 words
// + an empty list, not 64 buckets of zero).
const VALUE_COUNTER: u8 = 0;
const VALUE_GAUGE: u8 = 1;
const VALUE_HISTOGRAM: u8 = 2;

fn encode_sample(buf: &mut Vec<u8>, s: &Sample) {
    put_str(buf, &s.name);
    put_str(buf, &s.labels);
    match &s.value {
        Value::Counter(n) => {
            buf.push(VALUE_COUNTER);
            put_u64(buf, *n);
        }
        Value::Gauge(v) => {
            buf.push(VALUE_GAUGE);
            put_f64(buf, *v);
        }
        Value::Histogram(h) => {
            buf.push(VALUE_HISTOGRAM);
            put_u64(buf, h.count);
            put_u64(buf, h.sum);
            put_u64(buf, h.max);
            let nonzero = h.nonzero_buckets();
            put_len(buf, nonzero.len());
            for (idx, count) in nonzero {
                put_u16(buf, idx);
                put_u64(buf, count);
            }
        }
    }
}

fn decode_sample(r: &mut Reader<'_>) -> Result<Sample, NetError> {
    let name = r.str()?;
    let labels = r.str()?;
    let value = match r.u8()? {
        VALUE_COUNTER => Value::Counter(r.u64()?),
        VALUE_GAUGE => Value::Gauge(r.f64()?),
        VALUE_HISTOGRAM => {
            let count = r.u64()?;
            let sum = r.u64()?;
            let max = r.u64()?;
            // A bucket entry is a u16 index + count = 10 bytes (the
            // log-linear histogram has more than 256 buckets).
            let n = r.list_len(10)?;
            let buckets = (0..n)
                .map(|_| Ok((r.u16()?, r.u64()?)))
                .collect::<Result<Vec<_>, NetError>>()?;
            Value::Histogram(Box::new(HistogramSnapshot::from_parts(
                count, sum, max, &buckets,
            )))
        }
        t => return Err(bad(format!("unknown metric value kind {t}"))),
    };
    Ok(Sample {
        name,
        labels,
        value,
    })
}

fn encode_span(buf: &mut Vec<u8>, s: &Span) {
    put_u64(buf, s.seq);
    put_u64(buf, s.trace);
    put_u64(buf, s.span);
    put_u64(buf, s.parent);
    buf.push(s.kind as u8);
    put_u64(buf, s.node);
    put_u64(buf, s.start_nanos);
    put_u64(buf, s.end_nanos);
    put_u64(buf, s.a);
}

/// Bytes one encoded span occupies (eight words + the kind byte) —
/// the `list_len` element bound and the reply-budget divisor.
pub const SPAN_WIRE_BYTES: usize = 8 * 8 + 1;

fn decode_span(r: &mut Reader<'_>) -> Result<Span, NetError> {
    let seq = r.u64()?;
    let trace = r.u64()?;
    let span = r.u64()?;
    let parent = r.u64()?;
    let raw = r.u8()?;
    let kind = SpanKind::from_u8(raw).ok_or_else(|| bad(format!("unknown span kind {raw}")))?;
    Ok(Span {
        seq,
        trace,
        span,
        parent,
        kind,
        node: r.u64()?,
        start_nanos: r.u64()?,
        end_nanos: r.u64()?,
        a: r.u64()?,
    })
}

fn encode_trace_ctx(buf: &mut Vec<u8>, ctx: &TraceContext) {
    put_u64(buf, ctx.trace);
    put_u64(buf, ctx.span);
}

fn decode_trace_ctx(r: &mut Reader<'_>) -> Result<TraceContext, NetError> {
    Ok(TraceContext {
        trace: r.u64()?,
        span: r.u64()?,
    })
}

fn encode_event(buf: &mut Vec<u8>, e: &Event) {
    put_u64(buf, e.seq);
    buf.push(e.kind as u8);
    put_u64(buf, e.a);
    put_u64(buf, e.b);
}

fn decode_event(r: &mut Reader<'_>) -> Result<Event, NetError> {
    let seq = r.u64()?;
    let raw = r.u8()?;
    let kind = EventKind::from_u8(raw).ok_or_else(|| bad(format!("unknown event kind {raw}")))?;
    Ok(Event {
        seq,
        kind,
        a: r.u64()?,
        b: r.u64()?,
    })
}

// ---- requests ---------------------------------------------------------

const REQ_HELLO: u8 = 1;
const REQ_SUBMIT: u8 = 2;
const REQ_SUBMIT_BATCH: u8 = 3;
const REQ_REGISTER_BLOCK: u8 = 4;
const REQ_STATS: u8 = 5;
const REQ_SNAPSHOT: u8 = 6;
const REQ_METRICS: u8 = 7;
const REQ_TRACE: u8 = 8;
const REQ_REPLICATE: u8 = 9;
const REQ_PING: u8 = 10;
const REQ_VOTE: u8 = 11;
const REQ_RESYNC_STREAM: u8 = 12;
const REQ_RESYNC_COMMIT: u8 = 13;
const REQ_CLUSTER_STATUS: u8 = 14;
const REQ_SPAN_DUMP: u8 = 15;

/// The shard field value that addresses the coordinator stream in a
/// [`Request::Replicate`] (shard streams use their index).
pub const REPL_COORD_STREAM: u32 = u32::MAX;

/// Upper bound on records per `Replicate` batch (the frame cap bounds
/// the bytes; this bounds the allocation count against hostile
/// headers). Matches the service's group-commit reality: one batch is
/// one scheduling cycle's grants on one shard.
pub const MAX_REPL_RECORDS: u32 = 65_536;

/// Upper bound on trace ids riding one `Replicate` batch — traces are
/// a sampled minority of traffic, so a batch carrying more is a
/// protocol violation, not a bigger allocation.
pub const MAX_REPL_TRACES: u32 = 1024;

/// A client request body.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Protocol handshake: asks for the service's alpha grid so the
    /// tenant can build demand curves that fit. On a node configured
    /// with a shared secret, `token` must match or the handshake is
    /// refused [`ErrorCode::Unauthorized`] — and every other request
    /// on the connection is refused until a handshake succeeds.
    Hello {
        /// Optional shared-secret token (compared in constant time).
        token: Option<String>,
    },
    /// Submit one task; the response is the **final decision**.
    Submit {
        /// The submitting tenant.
        tenant: u32,
        /// The task.
        task: WireTask,
        /// Distributed-trace context: when present, the grant records
        /// spans across every node it touches under this trace id.
        trace: Option<TraceContext>,
    },
    /// Submit many tasks in one frame; one response carries every
    /// decision once the last one is made.
    SubmitBatch {
        /// The submitting tenant.
        tenant: u32,
        /// The tasks, decided independently.
        tasks: Vec<WireTask>,
        /// Per-task trace contexts: empty (nothing traced) or exactly
        /// one per task, in task order.
        traces: Vec<TraceContext>,
    },
    /// Register a data block (arrives with its full capacity curve).
    RegisterBlock {
        /// The block id.
        id: u64,
        /// Arrival in virtual time.
        arrival: f64,
        /// Per-order capacity values (bit-exact).
        capacity: Vec<f64>,
    },
    /// Read the service counters.
    Stats,
    /// Read every block's available budget at a virtual time.
    Snapshot {
        /// The §3.4 unlocking time to evaluate at.
        now: f64,
    },
    /// Scrape the service's metrics registry (counters, gauges,
    /// histograms) as one point-in-time snapshot.
    Metrics,
    /// Dump the service's flight recorder from a sequence number
    /// (`since = 0` for everything retained); a scraper remembers the
    /// last seq it saw and asks incrementally.
    Trace {
        /// Only events with `seq >= since` are returned.
        since: u64,
    },
    /// Primary → replica: one durably appended WAL batch of one
    /// stream, verbatim record payloads in append order. Streams are
    /// per-shard (`shard` = shard index) plus the coordinator decision
    /// log (`shard` = [`REPL_COORD_STREAM`]); `seq` numbers batches
    /// per stream from 1, so a replica detects duplicates (idempotent
    /// ack) and gaps (refused — applying out of order would diverge).
    /// `term` is the sender's election term: a replica that has seen a
    /// newer term refuses the ship with [`ErrorCode::StaleTerm`], which
    /// is how a deposed primary learns it must stop acknowledging.
    Replicate {
        /// The shipping primary's election term (0 before any
        /// election).
        term: u64,
        /// Stream address: shard index, or [`REPL_COORD_STREAM`].
        shard: u32,
        /// Per-stream batch sequence number, from 1.
        seq: u64,
        /// The record payloads, exactly as appended on the primary.
        records: Vec<Vec<u8>>,
        /// Trace ids of the traced grants in this batch: the replica
        /// derives every span id it records from these alone, so the
        /// ship carries no span structure.
        traces: Vec<u64>,
    },
    /// Failure-detector heartbeat. Carries the sender's term and its
    /// durable per-stream sequence vector (shards in index order, then
    /// the coordinator stream) so peers can cheaply judge how current
    /// it is; the [`Response::Pong`] reply carries the receiver's.
    Ping {
        /// The sender's current election term.
        term: u64,
        /// The sender's durable per-stream seq vector.
        vector: Vec<u64>,
    },
    /// Leader election: the candidate asks for this peer's vote in
    /// `term`. The vote is granted iff the term is newer than anything
    /// the voter has seen or voted in **and** the candidate's ballot
    /// (its durable seq vector) is at least as current as the voter's
    /// own — the highest-durable-seq-wins rule that keeps every
    /// acknowledged grant on whichever node wins.
    Vote {
        /// The proposed (new) term.
        term: u64,
        /// The candidate's node id (the deterministic tiebreak).
        candidate: u64,
        /// The candidate's durable per-stream seq vector.
        ballot: Vec<u64>,
    },
    /// Catch-up: the primary installs one stream's snapshot on a
    /// lagging replica, resetting that stream to `base_seq` (the
    /// compaction law: snapshot + suffix replays to the same state).
    /// The first install of a round durably marks the replica dirty;
    /// only [`Request::ResyncCommit`] clears the mark.
    ResyncStream {
        /// The installing primary's term.
        term: u64,
        /// Stream address: shard index, or [`REPL_COORD_STREAM`].
        shard: u32,
        /// The stream's new base: ships resume at `base_seq + 1`.
        base_seq: u64,
        /// The snapshot payload (empty for the coordinator stream).
        snapshot: Vec<u8>,
    },
    /// Catch-up: every stream is installed; the replica persists
    /// `lineage` (the installing primary's term), clears its dirty
    /// mark, and resumes counting toward the quorum.
    ResyncCommit {
        /// The installing primary's term.
        term: u64,
        /// The lineage to persist (the installing primary's term).
        lineage: u64,
    },
    /// Cluster introspection: the node's own role/term/vector plus its
    /// view of every peer (state, term, per-stream replication lag on
    /// the primary, resync/backoff state). Served by every node.
    ClusterStatus,
    /// Dump the node's span ring from a sequence number (`since = 0`
    /// for everything retained) — the per-node half of cross-node
    /// trace assembly. Paginated exactly like [`Request::Trace`].
    SpanDump {
        /// Only spans with `seq >= since` are returned.
        since: u64,
    },
}

/// A framed request: client-chosen id + body. The id is echoed in the
/// response, enabling pipelining and out-of-order completion.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Client-chosen correlation id.
    pub id: u64,
    /// The request body.
    pub body: Request,
}

impl RequestFrame {
    /// Serializes the message payload (unframed).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match &self.body {
            Request::Hello { token } => {
                buf.push(REQ_HELLO);
                put_u64(&mut buf, self.id);
                match token {
                    Some(t) => {
                        buf.push(1);
                        put_str(&mut buf, t);
                    }
                    None => buf.push(0),
                }
            }
            Request::Submit {
                tenant,
                task,
                trace,
            } => {
                buf.push(REQ_SUBMIT);
                put_u64(&mut buf, self.id);
                put_u32(&mut buf, *tenant);
                task.encode_into(&mut buf);
                match trace {
                    Some(ctx) => {
                        buf.push(1);
                        encode_trace_ctx(&mut buf, ctx);
                    }
                    None => buf.push(0),
                }
            }
            Request::SubmitBatch {
                tenant,
                tasks,
                traces,
            } => {
                buf.push(REQ_SUBMIT_BATCH);
                put_u64(&mut buf, self.id);
                put_u32(&mut buf, *tenant);
                put_len(&mut buf, tasks.len());
                for t in tasks {
                    t.encode_into(&mut buf);
                }
                put_len(&mut buf, traces.len());
                for ctx in traces {
                    encode_trace_ctx(&mut buf, ctx);
                }
            }
            Request::RegisterBlock {
                id,
                arrival,
                capacity,
            } => {
                buf.push(REQ_REGISTER_BLOCK);
                put_u64(&mut buf, self.id);
                put_u64(&mut buf, *id);
                put_f64(&mut buf, *arrival);
                put_f64s(&mut buf, capacity);
            }
            Request::Stats => {
                buf.push(REQ_STATS);
                put_u64(&mut buf, self.id);
            }
            Request::Snapshot { now } => {
                buf.push(REQ_SNAPSHOT);
                put_u64(&mut buf, self.id);
                put_f64(&mut buf, *now);
            }
            Request::Metrics => {
                buf.push(REQ_METRICS);
                put_u64(&mut buf, self.id);
            }
            Request::Trace { since } => {
                buf.push(REQ_TRACE);
                put_u64(&mut buf, self.id);
                put_u64(&mut buf, *since);
            }
            Request::Replicate {
                term,
                shard,
                seq,
                records,
                traces,
            } => {
                buf.push(REQ_REPLICATE);
                put_u64(&mut buf, self.id);
                put_u64(&mut buf, *term);
                put_u32(&mut buf, *shard);
                put_u64(&mut buf, *seq);
                put_len(&mut buf, records.len());
                for r in records {
                    put_len(&mut buf, r.len());
                    buf.extend_from_slice(r);
                }
                put_u64s(&mut buf, traces);
            }
            Request::Ping { term, vector } => {
                buf.push(REQ_PING);
                put_u64(&mut buf, self.id);
                put_u64(&mut buf, *term);
                put_u64s(&mut buf, vector);
            }
            Request::Vote {
                term,
                candidate,
                ballot,
            } => {
                buf.push(REQ_VOTE);
                put_u64(&mut buf, self.id);
                put_u64(&mut buf, *term);
                put_u64(&mut buf, *candidate);
                put_u64s(&mut buf, ballot);
            }
            Request::ResyncStream {
                term,
                shard,
                base_seq,
                snapshot,
            } => {
                buf.push(REQ_RESYNC_STREAM);
                put_u64(&mut buf, self.id);
                put_u64(&mut buf, *term);
                put_u32(&mut buf, *shard);
                put_u64(&mut buf, *base_seq);
                put_len(&mut buf, snapshot.len());
                buf.extend_from_slice(snapshot);
            }
            Request::ResyncCommit { term, lineage } => {
                buf.push(REQ_RESYNC_COMMIT);
                put_u64(&mut buf, self.id);
                put_u64(&mut buf, *term);
                put_u64(&mut buf, *lineage);
            }
            Request::ClusterStatus => {
                buf.push(REQ_CLUSTER_STATUS);
                put_u64(&mut buf, self.id);
            }
            Request::SpanDump { since } => {
                buf.push(REQ_SPAN_DUMP);
                put_u64(&mut buf, self.id);
                put_u64(&mut buf, *since);
            }
        }
        buf
    }

    /// Deserializes a message payload.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] on an unknown tag, malformed body, or
    /// trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, NetError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let id = r.u64()?;
        let body = match tag {
            REQ_HELLO => Request::Hello {
                token: match r.u8()? {
                    0 => None,
                    1 => Some(r.str()?),
                    t => return Err(bad(format!("bad token flag {t}"))),
                },
            },
            REQ_SUBMIT => Request::Submit {
                tenant: r.u32()?,
                task: WireTask::decode(&mut r)?,
                trace: match r.u8()? {
                    0 => None,
                    1 => Some(decode_trace_ctx(&mut r)?),
                    t => return Err(bad(format!("bad trace flag {t}"))),
                },
            },
            REQ_SUBMIT_BATCH => {
                let tenant = r.u32()?;
                // A task is at least id+weight+arrival+flag+two list
                // lengths = 33 bytes.
                let n = r.list_len(33)?;
                if n > MAX_BATCH_TASKS as usize {
                    return Err(bad(format!(
                        "batch of {n} tasks exceeds the {MAX_BATCH_TASKS}-task cap"
                    )));
                }
                let tasks = (0..n)
                    .map(|_| WireTask::decode(&mut r))
                    .collect::<Result<Vec<_>, _>>()?;
                let nt = r.list_len(16)?;
                if nt != 0 && nt != tasks.len() {
                    return Err(bad(
                        "batch trace list must be empty or match the task count",
                    ));
                }
                let traces = (0..nt)
                    .map(|_| decode_trace_ctx(&mut r))
                    .collect::<Result<Vec<_>, _>>()?;
                Request::SubmitBatch {
                    tenant,
                    tasks,
                    traces,
                }
            }
            REQ_REGISTER_BLOCK => Request::RegisterBlock {
                id: r.u64()?,
                arrival: r.f64()?,
                capacity: r.f64s()?,
            },
            REQ_STATS => Request::Stats,
            REQ_SNAPSHOT => Request::Snapshot { now: r.f64()? },
            REQ_METRICS => Request::Metrics,
            REQ_TRACE => Request::Trace { since: r.u64()? },
            REQ_REPLICATE => {
                let term = r.u64()?;
                let shard = r.u32()?;
                let seq = r.u64()?;
                // A record is at least its own length prefix.
                let n = r.list_len(4)?;
                if n > MAX_REPL_RECORDS as usize {
                    return Err(bad(format!(
                        "replication batch of {n} records exceeds the {MAX_REPL_RECORDS}-record cap"
                    )));
                }
                let records = (0..n).map(|_| r.blob()).collect::<Result<Vec<_>, _>>()?;
                let nt = r.list_len(8)?;
                if nt > MAX_REPL_TRACES as usize {
                    return Err(bad(format!(
                        "replication batch of {nt} traces exceeds the {MAX_REPL_TRACES}-trace cap"
                    )));
                }
                let traces = (0..nt).map(|_| r.u64()).collect::<Result<Vec<_>, _>>()?;
                Request::Replicate {
                    term,
                    shard,
                    seq,
                    records,
                    traces,
                }
            }
            REQ_PING => Request::Ping {
                term: r.u64()?,
                vector: r.u64s()?,
            },
            REQ_VOTE => Request::Vote {
                term: r.u64()?,
                candidate: r.u64()?,
                ballot: r.u64s()?,
            },
            REQ_RESYNC_STREAM => Request::ResyncStream {
                term: r.u64()?,
                shard: r.u32()?,
                base_seq: r.u64()?,
                snapshot: r.blob()?,
            },
            REQ_RESYNC_COMMIT => Request::ResyncCommit {
                term: r.u64()?,
                lineage: r.u64()?,
            },
            REQ_CLUSTER_STATUS => Request::ClusterStatus,
            REQ_SPAN_DUMP => Request::SpanDump { since: r.u64()? },
            t => return Err(bad(format!("unknown request tag {t}"))),
        };
        r.done()?;
        Ok(Self { id, body })
    }
}

// ---- responses --------------------------------------------------------

const RESP_HELLO: u8 = 1;
const RESP_DECISION: u8 = 2;
const RESP_BATCH: u8 = 3;
const RESP_BLOCK_REGISTERED: u8 = 4;
const RESP_STATS: u8 = 5;
const RESP_SNAPSHOT: u8 = 6;
const RESP_ERROR: u8 = 7;
const RESP_METRICS: u8 = 8;
const RESP_TRACE: u8 = 9;
const RESP_REPLICATE_ACK: u8 = 10;
const RESP_PONG: u8 = 11;
const RESP_VOTE_REPLY: u8 = 12;
const RESP_RESYNC_ACK: u8 = 13;
const RESP_CLUSTER_STATUS: u8 = 14;
const RESP_SPAN_DUMP: u8 = 15;

/// A server response body.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The handshake answer: the service's Rényi orders.
    Hello {
        /// The alpha grid, ascending.
        alphas: Vec<f64>,
    },
    /// The final decision for one submitted task.
    Decision {
        /// The task the decision is for.
        task: u64,
        /// Its outcome.
        outcome: Outcome,
    },
    /// The final decisions for a batch, in submission order.
    BatchDecision {
        /// `(task id, outcome)` per submitted task.
        decisions: Vec<(u64, Outcome)>,
    },
    /// The block was registered.
    BlockRegistered {
        /// The registered block id.
        id: u64,
    },
    /// The service counters.
    Stats(WireStats),
    /// Every block's available budget values at the requested time.
    Snapshot {
        /// `(block id, per-order available values)` ascending by id.
        blocks: Vec<(u64, Vec<f64>)>,
    },
    /// The request failed; the code is stable.
    Error {
        /// The stable failure code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// The metrics snapshot, sorted by (name, labels). Rebuild a
    /// [`dpack_obs::MetricsSnapshot`] from it for rendering.
    Metrics {
        /// Every registered instrument's sampled value.
        samples: Vec<Sample>,
    },
    /// The flight-recorder dump, in sequence order.
    Trace {
        /// The retained events matching the request's `since`.
        events: Vec<Event>,
    },
    /// Replica → primary: the batch is durable. `durable` is the
    /// stream's highest contiguously applied sequence number, so a
    /// duplicate delivery acks idempotently (`durable >= seq`) and the
    /// primary can compute replication lag.
    ReplicateAck {
        /// The acknowledged batch's stream address.
        shard: u32,
        /// The acknowledged sequence number (echoed).
        seq: u64,
        /// Highest durably applied seq on that stream.
        durable: u64,
    },
    /// Heartbeat reply: the receiver's term, role, lineage, and durable
    /// per-stream seq vector. The redial fast path compares `lineage`
    /// and `vector` against the primary's to decide whether a
    /// reconnecting replica needs a resync at all.
    Pong {
        /// The responder's current election term.
        term: u64,
        /// Whether the responder believes it is the primary.
        is_primary: bool,
        /// The responder's persisted lineage (the term of the primary
        /// whose stream it follows; 0 = unattached).
        lineage: u64,
        /// The responder's durable per-stream seq vector.
        vector: Vec<u64>,
    },
    /// Election reply. `term` is the voter's (possibly newer) term so a
    /// refused candidate adopts it and campaigns above it next time.
    VoteReply {
        /// The voter's current term after processing the request.
        term: u64,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Catch-up acknowledgement: the install (or commit) is durable.
    ResyncAck {
        /// The echoed stream address (a commit ack echoes
        /// [`REPL_COORD_STREAM`]'s value; the pairing request
        /// disambiguates).
        stream: u32,
        /// The stream's new durable seq (the install's `base_seq`; a
        /// commit ack echoes the persisted lineage).
        durable: u64,
    },
    /// The node's introspection answer.
    ClusterStatus(WireClusterStatus),
    /// The span-ring dump, in sequence order.
    SpanDump {
        /// The retained spans matching the request's `since`.
        spans: Vec<Span>,
    },
}

/// A framed response: the echoed request id + body.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseFrame {
    /// The request id this answers.
    pub id: u64,
    /// The response body.
    pub body: Response,
}

impl ResponseFrame {
    /// Serializes the message payload (unframed).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match &self.body {
            Response::Hello { alphas } => {
                buf.push(RESP_HELLO);
                put_u64(&mut buf, self.id);
                put_f64s(&mut buf, alphas);
            }
            Response::Decision { task, outcome } => {
                buf.push(RESP_DECISION);
                put_u64(&mut buf, self.id);
                put_u64(&mut buf, *task);
                outcome.encode_into(&mut buf);
            }
            Response::BatchDecision { decisions } => {
                buf.push(RESP_BATCH);
                put_u64(&mut buf, self.id);
                put_len(&mut buf, decisions.len());
                for (task, outcome) in decisions {
                    put_u64(&mut buf, *task);
                    outcome.encode_into(&mut buf);
                }
            }
            Response::BlockRegistered { id } => {
                buf.push(RESP_BLOCK_REGISTERED);
                put_u64(&mut buf, self.id);
                put_u64(&mut buf, *id);
            }
            Response::Stats(stats) => {
                buf.push(RESP_STATS);
                put_u64(&mut buf, self.id);
                stats.encode_into(&mut buf);
            }
            Response::Snapshot { blocks } => {
                buf.push(RESP_SNAPSHOT);
                put_u64(&mut buf, self.id);
                put_len(&mut buf, blocks.len());
                for (id, values) in blocks {
                    put_u64(&mut buf, *id);
                    put_f64s(&mut buf, values);
                }
            }
            Response::Error { code, message } => {
                buf.push(RESP_ERROR);
                put_u64(&mut buf, self.id);
                put_u16(&mut buf, code.as_u16());
                put_str(&mut buf, message);
            }
            Response::Metrics { samples } => {
                buf.push(RESP_METRICS);
                put_u64(&mut buf, self.id);
                put_len(&mut buf, samples.len());
                for s in samples {
                    encode_sample(&mut buf, s);
                }
            }
            Response::Trace { events } => {
                buf.push(RESP_TRACE);
                put_u64(&mut buf, self.id);
                put_len(&mut buf, events.len());
                for e in events {
                    encode_event(&mut buf, e);
                }
            }
            Response::ReplicateAck {
                shard,
                seq,
                durable,
            } => {
                buf.push(RESP_REPLICATE_ACK);
                put_u64(&mut buf, self.id);
                put_u32(&mut buf, *shard);
                put_u64(&mut buf, *seq);
                put_u64(&mut buf, *durable);
            }
            Response::Pong {
                term,
                is_primary,
                lineage,
                vector,
            } => {
                buf.push(RESP_PONG);
                put_u64(&mut buf, self.id);
                put_u64(&mut buf, *term);
                buf.push(u8::from(*is_primary));
                put_u64(&mut buf, *lineage);
                put_u64s(&mut buf, vector);
            }
            Response::VoteReply { term, granted } => {
                buf.push(RESP_VOTE_REPLY);
                put_u64(&mut buf, self.id);
                put_u64(&mut buf, *term);
                buf.push(u8::from(*granted));
            }
            Response::ResyncAck { stream, durable } => {
                buf.push(RESP_RESYNC_ACK);
                put_u64(&mut buf, self.id);
                put_u32(&mut buf, *stream);
                put_u64(&mut buf, *durable);
            }
            Response::ClusterStatus(status) => {
                buf.push(RESP_CLUSTER_STATUS);
                put_u64(&mut buf, self.id);
                status.encode_into(&mut buf);
            }
            Response::SpanDump { spans } => {
                buf.push(RESP_SPAN_DUMP);
                put_u64(&mut buf, self.id);
                put_len(&mut buf, spans.len());
                for s in spans {
                    encode_span(&mut buf, s);
                }
            }
        }
        buf
    }

    /// Deserializes a message payload.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] on an unknown tag, malformed body, or
    /// trailing bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, NetError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let id = r.u64()?;
        let body = match tag {
            RESP_HELLO => Response::Hello { alphas: r.f64s()? },
            RESP_DECISION => Response::Decision {
                task: r.u64()?,
                outcome: Outcome::decode(&mut r)?,
            },
            RESP_BATCH => {
                // A decision is at least task id + outcome tag = 9.
                let n = r.list_len(9)?;
                let decisions = (0..n)
                    .map(|_| Ok((r.u64()?, Outcome::decode(&mut r)?)))
                    .collect::<Result<Vec<_>, NetError>>()?;
                Response::BatchDecision { decisions }
            }
            RESP_BLOCK_REGISTERED => Response::BlockRegistered { id: r.u64()? },
            RESP_STATS => Response::Stats(WireStats::decode(&mut r)?),
            RESP_SNAPSHOT => {
                // A snapshot entry is at least id + list length = 12.
                let n = r.list_len(12)?;
                let blocks = (0..n)
                    .map(|_| Ok((r.u64()?, r.f64s()?)))
                    .collect::<Result<Vec<_>, NetError>>()?;
                Response::Snapshot { blocks }
            }
            RESP_ERROR => {
                let raw = r.u16()?;
                let code = ErrorCode::from_u16(raw)
                    .ok_or_else(|| bad(format!("unknown error code {raw}")))?;
                Response::Error {
                    code,
                    message: r.str()?,
                }
            }
            RESP_METRICS => {
                // A sample is at least two list lengths + kind + one
                // word = 17 bytes.
                let n = r.list_len(17)?;
                let samples = (0..n)
                    .map(|_| decode_sample(&mut r))
                    .collect::<Result<Vec<_>, _>>()?;
                Response::Metrics { samples }
            }
            RESP_TRACE => {
                // An event is seq + kind + two payload words = 25 bytes.
                let n = r.list_len(25)?;
                let events = (0..n)
                    .map(|_| decode_event(&mut r))
                    .collect::<Result<Vec<_>, _>>()?;
                Response::Trace { events }
            }
            RESP_REPLICATE_ACK => Response::ReplicateAck {
                shard: r.u32()?,
                seq: r.u64()?,
                durable: r.u64()?,
            },
            RESP_PONG => Response::Pong {
                term: r.u64()?,
                is_primary: match r.u8()? {
                    0 => false,
                    1 => true,
                    t => return Err(bad(format!("bad primary flag {t}"))),
                },
                lineage: r.u64()?,
                vector: r.u64s()?,
            },
            RESP_VOTE_REPLY => Response::VoteReply {
                term: r.u64()?,
                granted: match r.u8()? {
                    0 => false,
                    1 => true,
                    t => return Err(bad(format!("bad granted flag {t}"))),
                },
            },
            RESP_RESYNC_ACK => Response::ResyncAck {
                stream: r.u32()?,
                durable: r.u64()?,
            },
            RESP_CLUSTER_STATUS => Response::ClusterStatus(WireClusterStatus::decode(&mut r)?),
            RESP_SPAN_DUMP => {
                let n = r.list_len(SPAN_WIRE_BYTES)?;
                let spans = (0..n)
                    .map(|_| decode_span(&mut r))
                    .collect::<Result<Vec<_>, _>>()?;
                Response::SpanDump { spans }
            }
            t => return Err(bad(format!("unknown response tag {t}"))),
        };
        r.done()?;
        Ok(Self { id, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_the_incremental_decoder() {
        let payloads: Vec<Vec<u8>> = vec![vec![], vec![1, 2, 3], vec![0xDA; 100]];
        let mut stream = Vec::new();
        for p in &payloads {
            frame_into(&mut stream, p);
        }
        // Feed one byte at a time: frames pop exactly at boundaries.
        let mut dec = FrameDecoder::new();
        let mut got = Vec::new();
        for b in &stream {
            dec.extend(&[*b]);
            while let Some(p) = dec.next_frame().expect("valid stream") {
                got.push(p);
            }
        }
        assert_eq!(got, payloads);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn corrupt_frames_are_protocol_errors() {
        let mut ok = frame(b"hello");
        ok[HEADER + 1] ^= 0x40; // Flip a payload bit.
        let mut dec = FrameDecoder::new();
        dec.extend(&ok);
        assert!(matches!(dec.next_frame(), Err(NetError::Protocol(_))));
        // Bad magic.
        let mut dec = FrameDecoder::new();
        dec.extend(&[0x00; HEADER]);
        assert!(dec.next_frame().is_err());
        // Oversized length claim fails before any buffering happens.
        let mut dec = FrameDecoder::new();
        let mut huge = vec![MAGIC];
        huge.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        huge.extend_from_slice(&[0u8; 8]);
        dec.extend(&huge);
        assert!(dec.next_frame().is_err());
    }

    fn sample_hist() -> Box<HistogramSnapshot> {
        let h = dpack_obs::Histogram::new();
        h.record(3);
        h.record(100);
        h.record(100_000);
        Box::new(h.snapshot())
    }

    fn sample_task() -> WireTask {
        WireTask {
            id: 42,
            weight: 2.5,
            arrival: 0.1 + 0.2, // Not 0.3: bit-exactness matters.
            timeout: Some(7.0),
            demand: vec![0.25, f64::MIN_POSITIVE, 1.0],
            blocks: vec![1, 5, 9],
        }
    }

    #[test]
    fn requests_round_trip() {
        let requests = vec![
            RequestFrame {
                id: 1,
                body: Request::Hello { token: None },
            },
            RequestFrame {
                id: 2,
                body: Request::Hello {
                    token: Some("s3cret".into()),
                },
            },
            RequestFrame {
                id: u64::MAX,
                body: Request::Submit {
                    tenant: 7,
                    task: sample_task(),
                    trace: None,
                },
            },
            RequestFrame {
                id: 16,
                body: Request::Submit {
                    tenant: 7,
                    task: sample_task(),
                    trace: Some(TraceContext {
                        trace: 0xDEAD_BEEF,
                        span: 0x5EED,
                    }),
                },
            },
            RequestFrame {
                id: 3,
                body: Request::SubmitBatch {
                    tenant: 0,
                    tasks: vec![sample_task(), sample_task()],
                    traces: Vec::new(),
                },
            },
            RequestFrame {
                id: 17,
                body: Request::SubmitBatch {
                    tenant: 0,
                    tasks: vec![sample_task(), sample_task()],
                    traces: vec![
                        TraceContext { trace: 1, span: 2 },
                        TraceContext { trace: 3, span: 4 },
                    ],
                },
            },
            RequestFrame {
                id: 4,
                body: Request::RegisterBlock {
                    id: 11,
                    arrival: 2.0,
                    capacity: vec![1.0, -3.5],
                },
            },
            RequestFrame {
                id: 5,
                body: Request::Stats,
            },
            RequestFrame {
                id: 6,
                body: Request::Snapshot { now: 4.25 },
            },
            RequestFrame {
                id: 7,
                body: Request::Metrics,
            },
            RequestFrame {
                id: 8,
                body: Request::Trace { since: 1234 },
            },
            RequestFrame {
                id: 9,
                body: Request::Replicate {
                    term: 0,
                    shard: 3,
                    seq: 17,
                    records: vec![vec![], vec![0xD7, 1, 2, 3], vec![0xD8; 64]],
                    traces: vec![0xABCD, 0xEF01],
                },
            },
            RequestFrame {
                id: 10,
                body: Request::Replicate {
                    term: 4,
                    shard: REPL_COORD_STREAM,
                    seq: 1,
                    records: vec![vec![0xFF]],
                    traces: Vec::new(),
                },
            },
            RequestFrame {
                id: 11,
                body: Request::Ping {
                    term: 3,
                    vector: vec![9, 4, 12],
                },
            },
            RequestFrame {
                id: 12,
                body: Request::Vote {
                    term: 5,
                    candidate: 2,
                    ballot: vec![9, 4, 12],
                },
            },
            RequestFrame {
                id: 13,
                body: Request::ResyncStream {
                    term: 5,
                    shard: REPL_COORD_STREAM,
                    base_seq: 12,
                    snapshot: vec![],
                },
            },
            RequestFrame {
                id: 14,
                body: Request::ResyncStream {
                    term: 5,
                    shard: 1,
                    base_seq: 4,
                    snapshot: vec![0xD7, 0, 1, 2],
                },
            },
            RequestFrame {
                id: 15,
                body: Request::ResyncCommit {
                    term: 5,
                    lineage: 5,
                },
            },
            RequestFrame {
                id: 18,
                body: Request::ClusterStatus,
            },
            RequestFrame {
                id: 19,
                body: Request::SpanDump { since: 77 },
            },
        ];
        for req in requests {
            let back = RequestFrame::decode(&req.encode()).expect("round trip");
            assert_eq!(back, req);
        }
    }

    #[test]
    fn batch_trace_lists_must_be_empty_or_pair_with_the_tasks() {
        let frame = RequestFrame {
            id: 1,
            body: Request::SubmitBatch {
                tenant: 0,
                tasks: vec![sample_task(), sample_task()],
                traces: vec![TraceContext { trace: 1, span: 2 }],
            },
        }
        .encode();
        let err = RequestFrame::decode(&frame).expect_err("mismatched trace list");
        assert!(err.to_string().contains("trace list"));
    }

    #[test]
    fn responses_round_trip() {
        let responses = vec![
            ResponseFrame {
                id: 1,
                body: Response::Hello {
                    alphas: vec![2.0, 4.0],
                },
            },
            ResponseFrame {
                id: 2,
                body: Response::Decision {
                    task: 9,
                    outcome: Outcome::Granted { allocated_at: 3.0 },
                },
            },
            ResponseFrame {
                id: 3,
                body: Response::BatchDecision {
                    decisions: vec![
                        (1, Outcome::Evicted),
                        (
                            2,
                            Outcome::Rejected {
                                code: ErrorCode::DuplicateTask,
                                message: "task id 2 is already queued or pending".into(),
                            },
                        ),
                    ],
                },
            },
            ResponseFrame {
                id: 4,
                body: Response::BlockRegistered { id: 11 },
            },
            ResponseFrame {
                id: 5,
                body: Response::Stats(WireStats {
                    submitted: 10,
                    admitted: 9,
                    rejected: 1,
                    granted: 8,
                    evicted: 1,
                    cycles: 4,
                    granted_weight: 8.0,
                    throughput: 123.5,
                    queue_depth: 2,
                    pending: 1,
                }),
            },
            ResponseFrame {
                id: 6,
                body: Response::Snapshot {
                    blocks: vec![(0, vec![0.5, 0.25]), (3, vec![])],
                },
            },
            ResponseFrame {
                id: 7,
                body: Response::Error {
                    code: ErrorCode::Protocol,
                    message: "bad".into(),
                },
            },
            ResponseFrame {
                id: 8,
                body: Response::Metrics {
                    samples: vec![
                        Sample {
                            name: "dpack_granted_total".into(),
                            labels: String::new(),
                            value: Value::Counter(42),
                        },
                        Sample {
                            name: "dpack_queue_depth".into(),
                            labels: "tenant=\"3\"".into(),
                            value: Value::Gauge(7.5),
                        },
                        Sample {
                            name: "dpack_grant_latency_nanos".into(),
                            labels: String::new(),
                            value: Value::Histogram(sample_hist()),
                        },
                    ],
                },
            },
            ResponseFrame {
                id: 9,
                body: Response::Trace {
                    events: vec![
                        dpack_obs::Event {
                            seq: 1,
                            kind: EventKind::TaskAdmitted,
                            a: 42,
                            b: 7,
                        },
                        dpack_obs::Event {
                            seq: 2,
                            kind: EventKind::TaskGranted,
                            a: 42,
                            b: 1.0f64.to_bits(),
                        },
                    ],
                },
            },
            ResponseFrame {
                id: 10,
                body: Response::ReplicateAck {
                    shard: REPL_COORD_STREAM,
                    seq: 17,
                    durable: 17,
                },
            },
            ResponseFrame {
                id: 11,
                body: Response::Pong {
                    term: 3,
                    is_primary: true,
                    lineage: 2,
                    vector: vec![9, 4, 12],
                },
            },
            ResponseFrame {
                id: 12,
                body: Response::VoteReply {
                    term: 5,
                    granted: false,
                },
            },
            ResponseFrame {
                id: 13,
                body: Response::ResyncAck {
                    stream: 1,
                    durable: 4,
                },
            },
            ResponseFrame {
                id: 14,
                body: Response::ClusterStatus(WireClusterStatus {
                    node_id: 2,
                    is_primary: true,
                    term: 9,
                    leader: 2,
                    vector: vec![17, 4],
                    peers: vec![
                        WirePeer {
                            id: 1,
                            addr: "10.0.0.1:7001".into(),
                            state: 0,
                            term: 9,
                            is_primary: false,
                            lag: vec![0, 0],
                            backoff_nanos: 0,
                            resyncs: 0,
                        },
                        WirePeer {
                            id: 3,
                            addr: String::new(),
                            state: 2,
                            term: 8,
                            is_primary: false,
                            lag: vec![17, 4],
                            backoff_nanos: 1_500_000_000,
                            resyncs: 2,
                        },
                    ],
                }),
            },
            ResponseFrame {
                id: 15,
                body: Response::SpanDump {
                    spans: vec![dpack_obs::Span {
                        seq: 1,
                        trace: 0xABCD,
                        span: 0x1234,
                        parent: 0,
                        kind: SpanKind::Grant,
                        node: 2,
                        start_nanos: 100,
                        end_nanos: 900,
                        a: 42,
                    }],
                },
            },
        ];
        for resp in responses {
            let back = ResponseFrame::decode(&resp.encode()).expect("round trip");
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn over_cap_replication_batches_are_rejected_at_decode() {
        let mut buf = Vec::new();
        buf.push(REQ_REPLICATE);
        put_u64(&mut buf, 1); // request id
        put_u64(&mut buf, 0); // term
        put_u32(&mut buf, 0); // shard
        put_u64(&mut buf, 1); // seq
        put_len(&mut buf, MAX_REPL_RECORDS as usize + 1);
        // Enough backing bytes that the length claim itself is
        // plausible, so the record cap (not the length check) fires.
        buf.extend(std::iter::repeat_n(
            0u8,
            (MAX_REPL_RECORDS as usize + 1) * 4,
        ));
        let err = RequestFrame::decode(&buf).expect_err("over cap");
        assert!(matches!(err, NetError::Protocol(_)));
        assert!(err.to_string().contains("record cap"));
    }

    #[test]
    fn wire_tasks_rebuild_bit_exactly_or_reject_on_grid_mismatch() {
        let grid = AlphaGrid::new(vec![2.0, 4.0, 8.0]).unwrap();
        let wire = sample_task();
        let task = wire.clone().into_task(&grid).expect("3 values fit");
        assert_eq!(task.id, 42);
        assert_eq!(task.timeout, Some(7.0));
        assert_eq!(
            task.demand
                .values()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            wire.demand.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(WireTask::from_task(&task), wire);
        let narrow = AlphaGrid::new(vec![2.0, 4.0]).unwrap();
        assert!(matches!(
            wire.into_task(&narrow),
            Err(AdmissionError::GridMismatch { task: 42 })
        ));
    }

    #[test]
    fn over_cap_batches_are_rejected_at_decode() {
        // Bounding the request bounds the reply: the cap is what keeps
        // a maximal BatchDecision under MAX_FRAME.
        let tiny = WireTask {
            id: 0,
            weight: 1.0,
            arrival: 0.0,
            timeout: None,
            demand: vec![],
            blocks: vec![],
        };
        let frame = |n: usize| {
            RequestFrame {
                id: 1,
                body: Request::SubmitBatch {
                    tenant: 0,
                    tasks: vec![tiny.clone(); n],
                    traces: Vec::new(),
                },
            }
            .encode()
        };
        assert!(RequestFrame::decode(&frame(MAX_BATCH_TASKS as usize)).is_ok());
        assert!(RequestFrame::decode(&frame(MAX_BATCH_TASKS as usize + 1)).is_err());
    }

    #[test]
    fn histograms_travel_sparse_and_rebuild_exactly() {
        let snap = sample_hist();
        // The payload carries only the 3 touched buckets, not 64.
        let frame = ResponseFrame {
            id: 1,
            body: Response::Metrics {
                samples: vec![Sample {
                    name: "h".into(),
                    labels: String::new(),
                    value: Value::Histogram(snap.clone()),
                }],
            },
        };
        let bytes = frame.encode();
        // tag+id+list + name+labels+kind + count/sum/max + bucket list
        // + 3 × (u16 idx + count).
        assert_eq!(bytes.len(), 9 + 4 + (5 + 4 + 1) + 24 + 4 + 3 * 10);
        let back = ResponseFrame::decode(&bytes).expect("round trip");
        let Response::Metrics { samples } = back.body else {
            panic!("metrics body");
        };
        assert_eq!(samples[0].value, Value::Histogram(snap));
    }

    #[test]
    fn unknown_event_kinds_and_value_kinds_are_protocol_errors() {
        let mut bytes = vec![RESP_TRACE];
        bytes.extend_from_slice(&1u64.to_le_bytes()); // request id
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one event
        bytes.extend_from_slice(&1u64.to_le_bytes()); // seq
        bytes.push(99); // no such kind
        bytes.extend_from_slice(&[0u8; 16]);
        assert!(ResponseFrame::decode(&bytes).is_err());

        let mut bytes = vec![RESP_METRICS];
        bytes.extend_from_slice(&1u64.to_le_bytes()); // request id
        bytes.extend_from_slice(&1u32.to_le_bytes()); // one sample
        bytes.extend_from_slice(&1u32.to_le_bytes()); // name len 1
        bytes.push(b'x');
        bytes.extend_from_slice(&0u32.to_le_bytes()); // empty labels
        bytes.push(9); // no such value kind
        bytes.extend_from_slice(&[0u8; 8]);
        assert!(ResponseFrame::decode(&bytes).is_err());
    }

    #[test]
    fn malformed_messages_are_errors_not_panics() {
        assert!(RequestFrame::decode(&[]).is_err());
        assert!(RequestFrame::decode(&[99, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
        assert!(ResponseFrame::decode(&[99, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
        // Trailing garbage is rejected.
        let mut bytes = RequestFrame {
            id: 1,
            body: Request::Stats,
        }
        .encode();
        bytes.push(0);
        assert!(RequestFrame::decode(&bytes).is_err());
        // Hostile list length: claims 2^32-1 tasks in a tiny message.
        let mut bytes = vec![REQ_SUBMIT_BATCH];
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(RequestFrame::decode(&bytes).is_err());
    }
}
