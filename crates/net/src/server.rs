//! The remote frontend's server side: a shared request-processing core
//! and a poll-based TCP reactor around it.
//!
//! # Design
//!
//! [`ServiceCore`] is the transport-independent half: one wire request
//! in, either an immediate response or a [`PendingReply`] out. A
//! submission's reply is *pending* by construction — the service
//! answers with the **final decision** (via
//! [`dpack_service::BudgetService::submit_async`] tickets), which a
//! later scheduling cycle produces. The loopback transport calls the
//! core synchronously; the TCP reactor polls pending replies in its
//! sweep.
//!
//! [`NetServer`] is the socket half: a single-threaded reactor over
//! nonblocking `std::net` sockets in the house style — vendored,
//! deterministic, no async runtime. Each sweep accepts new
//! connections, reads whatever bytes are available (clients may
//! pipeline any number of requests), processes complete frames, polls
//! pending decisions, and flushes write buffers. Request ids make
//! out-of-order completion safe: a stats request answers immediately
//! even while earlier submissions are still awaiting their cycle.
//!
//! The reactor never blocks on any one connection (a slow reader only
//! grows its own write buffer) and a protocol violation answers with a
//! final [`Response::Error`] frame before the connection closes.
//!
//! Scheduling cycles are *not* the server's job: the embedded
//! [`BudgetService`] is shared (an `Arc`), and whoever owns it drives
//! [`BudgetService::run_cycle`] — a [`dpack_service::ServiceHandle`]
//! loop in production, the test itself in deterministic tests.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use dpack_obs::trace::{span_id, SpanKind};
use dpack_obs::{Clock, Counter, EventKind, FlightRecorder, Gauge, Histogram, TraceContext};
use dpack_service::{BudgetService, Decision, SubmissionTicket};

use crate::error::{admission_code, ErrorCode, NetError};
use crate::repl::{ReplicaNode, Replicator};
use crate::wire::{
    frame_into, FrameDecoder, Outcome, Request, RequestFrame, Response, ResponseFrame,
    WireClusterStatus, WireStats, MAX_FRAME,
};

/// Flight-recorder events one `Trace` reply may carry. Replies keep
/// the **oldest** events past the cap, so a client paginating with
/// `since` always makes progress toward the ring's head.
const MAX_TRACE_EVENTS_PER_REPLY: usize = 65_536;

/// Spans one `SpanDump` reply may carry (same oldest-first pagination
/// contract as `Trace`). Both caps keep worst-case replies a few MiB —
/// comfortably inside the reply budget [`clamp_reply`] enforces.
const MAX_SPANS_PER_REPLY: usize = 65_536;

/// Replaces a reply that cannot fit in one frame with an `Error`
/// response for the same request id. A tenant can legitimately request
/// more than a frame holds (a snapshot of a very large ledger), and an
/// oversized reply must degrade to an error — never trip the frame
/// encoder's size assertion inside the reactor.
fn clamp_reply(payload: Vec<u8>) -> Vec<u8> {
    if payload.len() <= MAX_FRAME as usize {
        return payload;
    }
    // `tag u8 ‖ request id u64` prefixes every encoded response.
    let id = u64::from_le_bytes(payload[1..9].try_into().expect("sized"));
    ResponseFrame {
        id,
        body: Response::Error {
            code: ErrorCode::Protocol,
            message: format!(
                "response of {} bytes exceeds the {MAX_FRAME}-byte frame cap",
                payload.len()
            ),
        },
    }
    .encode()
}

/// One slot of a (possibly batched) submission reply.
#[derive(Debug)]
enum Slot {
    /// Decided at admission time (rejections) or by an earlier poll.
    Done(u64, Outcome),
    /// Awaiting the scheduling cycle's decision.
    Waiting(SubmissionTicket),
}

impl Slot {
    fn poll(&mut self) -> bool {
        if let Slot::Waiting(ticket) = self {
            match ticket.try_decision() {
                Some(d) => *self = Slot::Done(ticket.task_id(), decision_outcome(d)),
                None => return false,
            }
        }
        true
    }

    fn block(&mut self) {
        if let Slot::Waiting(ticket) = self {
            let d = ticket.wait();
            *self = Slot::Done(ticket.task_id(), decision_outcome(d));
        }
    }
}

fn decision_outcome(d: Decision) -> Outcome {
    match d {
        Decision::Granted { allocated_at } => Outcome::Granted { allocated_at },
        Decision::Evicted => Outcome::Evicted,
    }
}

/// A reply that resolves when the scheduling loop decides the
/// submission(s) it answers.
#[derive(Debug)]
pub struct PendingReply {
    request_id: u64,
    /// `false` encodes a single [`Response::Decision`]; `true` a
    /// [`Response::BatchDecision`] (even for a 1-task batch, so the
    /// reply shape always matches the request shape).
    batch: bool,
    slots: Vec<Slot>,
}

impl PendingReply {
    fn encode(self) -> Vec<u8> {
        let decisions: Vec<(u64, Outcome)> = self
            .slots
            .into_iter()
            .map(|s| match s {
                Slot::Done(task, outcome) => (task, outcome),
                Slot::Waiting(_) => unreachable!("encode is called only once resolved"),
            })
            .collect();
        let body = if self.batch {
            Response::BatchDecision { decisions }
        } else {
            let (task, outcome) = decisions.into_iter().next().expect("single slot");
            Response::Decision { task, outcome }
        };
        clamp_reply(
            ResponseFrame {
                id: self.request_id,
                body,
            }
            .encode(),
        )
    }

    /// Polls every undecided slot; returns the encoded response once
    /// all are decided. Never blocks.
    pub fn try_poll(&mut self) -> Option<Vec<u8>> {
        let mut all = true;
        for slot in &mut self.slots {
            all &= slot.poll();
        }
        all.then(|| {
            std::mem::replace(
                self,
                PendingReply {
                    request_id: 0,
                    batch: false,
                    slots: Vec::new(),
                },
            )
            .encode()
        })
    }

    /// Parks until every slot is decided and returns the encoded
    /// response (the loopback transport's path; cycles must be driven
    /// by another thread or before this call).
    pub fn wait(mut self) -> Vec<u8> {
        for slot in &mut self.slots {
            slot.block();
        }
        self.encode()
    }
}

/// What [`ServiceCore::handle`] produced for one request.
#[derive(Debug)]
pub enum Step {
    /// The response payload, ready to send.
    Reply(Vec<u8>),
    /// A submission awaiting its cycle decision.
    Pending(PendingReply),
}

/// Which half of a replicated pair this node is serving as. The role
/// is *swappable* ([`ServiceCore::promote`] / [`ServiceCore::demote`]):
/// self-healing failover changes what a node is without rebinding its
/// socket or dropping its connections.
#[derive(Clone)]
enum Role {
    /// The full service surface (and the only role that accepts
    /// tenant traffic).
    Primary {
        /// The embedded service.
        service: Arc<BudgetService>,
        /// The outbound replication fan-out, when this primary ships
        /// to replicas (answers heartbeats with its term and seq
        /// vector).
        repl: Option<Arc<Replicator>>,
    },
    /// A durability follower: answers [`Request::Replicate`],
    /// heartbeats, votes, and resync installs (and its own
    /// metrics/trace scrapes); every tenant request is refused with
    /// [`ErrorCode::NotPrimary`] so failover probes move on.
    Replica(Arc<ReplicaNode>),
}

/// Constant-time byte-string comparison (length folded into the
/// accumulator, so mismatched lengths cost the same as mismatched
/// bytes): the handshake token check must not leak a prefix-length
/// timing oracle.
fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= usize::from(x ^ y);
    }
    diff == 0
}

/// The transport-independent request processor: decodes one request
/// payload, runs it against the embedded service (or replica state),
/// and produces either an immediate reply or a pending one. Clones
/// share the role, so a promotion through one clone is visible to all.
#[derive(Clone)]
pub struct ServiceCore {
    role: Arc<RwLock<Role>>,
    /// Pinned at construction so the reactor's instruments survive
    /// role swaps (a promotion must not orphan the sweep histogram).
    obs: Arc<dpack_obs::Obs>,
    /// Optional shared-secret; when set, connections must present it
    /// in `Hello` before any other request is served.
    secret: Option<Arc<str>>,
    auth_rejected: Counter,
    /// The deployment view behind [`Request::ClusterStatus`]: whoever
    /// drives this node (a [`crate::ClusterNode`] step loop) pushes
    /// what only it knows — node ids, peer addresses, the believed
    /// leader — and the handler overlays the live role-owned fields
    /// (term, seq vector, per-stream lag) at answer time.
    cluster: Arc<RwLock<Option<WireClusterStatus>>>,
}

impl ServiceCore {
    /// Wraps a shared service as a **primary**.
    pub fn new(service: Arc<BudgetService>) -> Self {
        Self::new_replicated(service, None)
    }

    /// Wraps a shared service as a **primary** shipping to replicas:
    /// the fan-out answers peer heartbeats with this node's term and
    /// durable seq vector.
    pub fn new_replicated(service: Arc<BudgetService>, repl: Option<Arc<Replicator>>) -> Self {
        let obs = Arc::clone(service.obs());
        Self::from_role(Role::Primary { service, repl }, obs)
    }

    /// Wraps replica state: the node answers the primary's replication
    /// stream and refuses tenant traffic with
    /// [`ErrorCode::NotPrimary`].
    pub fn replica(node: Arc<ReplicaNode>) -> Self {
        let obs = Arc::clone(node.obs());
        Self::from_role(Role::Replica(node), obs)
    }

    fn from_role(role: Role, obs: Arc<dpack_obs::Obs>) -> Self {
        let auth_rejected = obs.registry.counter("dpack_auth_rejected_total", "");
        Self {
            role: Arc::new(RwLock::new(role)),
            obs,
            secret: None,
            auth_rejected,
            cluster: Arc::new(RwLock::new(None)),
        }
    }

    /// Publishes the deployment view served by
    /// [`Request::ClusterStatus`] — node ids, peer addresses and
    /// states, the believed leader. Role-owned fields (term, seq
    /// vector, per-stream lag) are refreshed live at answer time, so
    /// the pushed view only needs to be topologically current.
    pub fn set_cluster_view(&self, view: WireClusterStatus) {
        *self.cluster.write().expect("cluster view lock poisoned") = Some(view);
    }

    /// The last pushed deployment view, if any.
    pub fn cluster_view(&self) -> Option<WireClusterStatus> {
        self.cluster
            .read()
            .expect("cluster view lock poisoned")
            .clone()
    }

    /// Requires every connection to present `secret` in its `Hello`
    /// before any other request is served (compared in constant time;
    /// failures count in `dpack_auth_rejected_total`).
    #[must_use]
    pub fn with_secret(mut self, secret: impl Into<String>) -> Self {
        self.secret = Some(Arc::from(secret.into()));
        self
    }

    /// The embedded service when this core is currently a primary.
    pub fn service(&self) -> Option<Arc<BudgetService>> {
        match &*self.role.read().expect("role lock poisoned") {
            Role::Primary { service, .. } => Some(Arc::clone(service)),
            Role::Replica(_) => None,
        }
    }

    /// The replication fan-out when this core is a shipping primary.
    pub fn replicator(&self) -> Option<Arc<Replicator>> {
        match &*self.role.read().expect("role lock poisoned") {
            Role::Primary { repl, .. } => repl.clone(),
            Role::Replica(_) => None,
        }
    }

    /// The replica node when this core is currently a replica.
    pub fn replica_node(&self) -> Option<Arc<ReplicaNode>> {
        match &*self.role.read().expect("role lock poisoned") {
            Role::Primary { .. } => None,
            Role::Replica(node) => Some(Arc::clone(node)),
        }
    }

    /// Whether this core currently serves the primary role.
    pub fn is_primary(&self) -> bool {
        matches!(
            &*self.role.read().expect("role lock poisoned"),
            Role::Primary { .. }
        )
    }

    /// Swaps the role to primary — the decided end of a won election.
    /// In-flight requests finish under the old role; everything after
    /// sees the new one.
    pub fn promote(&self, service: Arc<BudgetService>, repl: Option<Arc<Replicator>>) {
        *self.role.write().expect("role lock poisoned") = Role::Primary { service, repl };
    }

    /// Swaps the role to replica — a deposed primary stepping down.
    pub fn demote(&self, node: Arc<ReplicaNode>) {
        *self.role.write().expect("role lock poisoned") = Role::Replica(node);
    }

    /// The observability context the reactor registers its instruments
    /// on. Pinned at construction: role swaps do not change it.
    pub fn obs(&self) -> &Arc<dpack_obs::Obs> {
        &self.obs
    }

    /// Processes one request payload from a **trusted** caller: the
    /// auth gate is bypassed (in-process transports and the cluster's
    /// own tick path own the process; there is nothing to prove).
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] when the payload does not decode — the
    /// caller should send [`protocol_error_frame`] and drop the
    /// connection, since frame boundaries can no longer be trusted to
    /// carry meaning.
    pub fn handle(&self, payload: &[u8]) -> Result<Step, NetError> {
        let mut authed = true;
        self.handle_with(payload, &mut authed)
    }

    /// Processes one request payload with per-connection handshake
    /// state: on a secured core, everything but a correct `Hello` is
    /// refused [`ErrorCode::Unauthorized`] until `*authed` flips.
    ///
    /// # Errors
    ///
    /// [`NetError::Protocol`] when the payload does not decode (see
    /// [`ServiceCore::handle`]).
    pub fn handle_with(&self, payload: &[u8], authed: &mut bool) -> Result<Step, NetError> {
        let RequestFrame { id, body } = RequestFrame::decode(payload)?;
        if let Some(secret) = &self.secret {
            match &body {
                Request::Hello { token } => {
                    let ok = token
                        .as_deref()
                        .is_some_and(|t| constant_time_eq(t.as_bytes(), secret.as_bytes()));
                    if !ok {
                        self.auth_rejected.inc();
                        *authed = false;
                        return Ok(Step::Reply(clamp_reply(unauthorized_reply(
                            id,
                            "handshake token missing or wrong",
                        ))));
                    }
                    *authed = true;
                }
                _ if !*authed => {
                    self.auth_rejected.inc();
                    return Ok(Step::Reply(clamp_reply(unauthorized_reply(
                        id,
                        "request before a successful handshake on a secured node",
                    ))));
                }
                _ => {}
            }
        }
        let step = match &*self.role.read().expect("role lock poisoned") {
            Role::Primary { service, repl } => {
                Self::handle_primary(service, repl.as_ref(), &self.cluster, id, body)
            }
            Role::Replica(node) => Self::handle_replica(node, &self.cluster, id, body),
        };
        Ok(match step {
            Step::Reply(payload) => Step::Reply(clamp_reply(payload)),
            pending => pending,
        })
    }

    fn handle_primary(
        service: &Arc<BudgetService>,
        repl: Option<&Arc<Replicator>>,
        cluster: &RwLock<Option<WireClusterStatus>>,
        id: u64,
        body: Request,
    ) -> Step {
        match body {
            Request::Hello { .. } => Step::Reply(
                ResponseFrame {
                    id,
                    body: Response::Hello {
                        alphas: service.ledger().grid().orders().to_vec(),
                    },
                }
                .encode(),
            ),
            Request::Submit {
                tenant,
                task,
                trace,
            } => {
                let slot = Self::submit_slot(service, tenant, task, trace);
                Self::submission_step(id, false, vec![slot])
            }
            Request::SubmitBatch {
                tenant,
                tasks,
                traces,
            } => {
                // The decoder guarantees `traces` is empty or pairs
                // with `tasks` in order; pad the empty case out.
                let mut traces: Vec<Option<TraceContext>> = traces.into_iter().map(Some).collect();
                traces.resize(tasks.len(), None);
                let slots = tasks
                    .into_iter()
                    .zip(traces)
                    .map(|(t, ctx)| Self::submit_slot(service, tenant, t, ctx))
                    .collect();
                Self::submission_step(id, true, slots)
            }
            Request::RegisterBlock {
                id: block_id,
                arrival,
                capacity,
            } => {
                let body = Self::register(service, block_id, arrival, capacity);
                Step::Reply(ResponseFrame { id, body }.encode())
            }
            Request::Stats => {
                let summary = service.stats_summary();
                let stats = WireStats {
                    submitted: summary.submitted,
                    admitted: summary.admitted,
                    rejected: summary.rejected,
                    granted: summary.granted,
                    evicted: summary.evicted,
                    cycles: summary.cycles,
                    granted_weight: summary.granted_weight,
                    throughput: summary.throughput,
                    queue_depth: service.queue_depth() as u64,
                    pending: service.pending_count() as u64,
                };
                Step::Reply(
                    ResponseFrame {
                        id,
                        body: Response::Stats(stats),
                    }
                    .encode(),
                )
            }
            Request::Snapshot { now } => {
                // The uncached path on purpose: a tenant polling
                // snapshots at arbitrary `now`s must not evict the
                // per-shard cycle-stable cache the scheduling loop
                // relies on.
                let ledger = service.ledger();
                let blocks = (0..ledger.n_shards())
                    .flat_map(|s| ledger.snapshot_shard_uncached(s, now))
                    .map(|(id, curve)| (id, curve.values().to_vec()))
                    .collect();
                Step::Reply(
                    ResponseFrame {
                        id,
                        body: Response::Snapshot { blocks },
                    }
                    .encode(),
                )
            }
            Request::Metrics => Step::Reply(
                ResponseFrame {
                    id,
                    body: Response::Metrics {
                        samples: service.obs().registry.snapshot().samples,
                    },
                }
                .encode(),
            ),
            Request::Trace { since } => {
                let mut events = service.obs().recorder.dump_since(since);
                events.truncate(MAX_TRACE_EVENTS_PER_REPLY);
                Step::Reply(
                    ResponseFrame {
                        id,
                        body: Response::Trace { events },
                    }
                    .encode(),
                )
            }
            Request::SpanDump { since } => {
                let mut spans = service.obs().spans.dump_since(since);
                spans.truncate(MAX_SPANS_PER_REPLY);
                Step::Reply(
                    ResponseFrame {
                        id,
                        body: Response::SpanDump { spans },
                    }
                    .encode(),
                )
            }
            Request::ClusterStatus => {
                let pushed = cluster.read().expect("cluster view lock poisoned").clone();
                let node_id = pushed
                    .as_ref()
                    .map_or_else(|| service.obs().spans.node(), |v| v.node_id);
                let status = match repl {
                    // A shipping primary's live fields come straight
                    // from the replicator — terms, seq vector, and
                    // per-stream lag are authoritative there, not in
                    // whatever view was pushed last step. The pushed
                    // view contributes what the replicator cannot
                    // know: the peers' deployment ids.
                    Some(r) => {
                        let mut peers = r.peer_status();
                        if let Some(v) = &pushed {
                            for (live, known) in peers.iter_mut().zip(&v.peers) {
                                live.id = known.id;
                            }
                        }
                        WireClusterStatus {
                            node_id,
                            is_primary: true,
                            term: r.term(),
                            leader: node_id,
                            vector: r.vector(),
                            peers,
                        }
                    }
                    None => pushed.unwrap_or(WireClusterStatus {
                        node_id,
                        is_primary: true,
                        term: 0,
                        leader: node_id,
                        vector: Vec::new(),
                        peers: Vec::new(),
                    }),
                };
                Step::Reply(
                    ResponseFrame {
                        id,
                        body: Response::ClusterStatus(status),
                    }
                    .encode(),
                )
            }
            // A deposed primary shipping into the new primary learns
            // its term is over; any other inbound stream is a wiring
            // error — refuse loudly rather than double-apply records
            // that the primary already owns.
            Request::Replicate { term, .. } => {
                let my_term = repl.map_or(0, |r| r.term());
                let body = if term < my_term {
                    Response::Error {
                        code: ErrorCode::StaleTerm,
                        message: format!(
                            "ship from term {term} refused; this primary holds term {my_term}"
                        ),
                    }
                } else {
                    Response::Error {
                        code: ErrorCode::Protocol,
                        message: "replication stream sent to a primary".into(),
                    }
                };
                Step::Reply(ResponseFrame { id, body }.encode())
            }
            // The primary's heartbeat answer carries its term and ship
            // vector, so peers (and the redial fast path) can judge
            // currency without a resync round-trip.
            Request::Ping { .. } => {
                let (term, lineage, vector) = match repl {
                    Some(r) => (r.term(), r.lineage(), r.vector()),
                    None => (0, 0, Vec::new()),
                };
                Step::Reply(
                    ResponseFrame {
                        id,
                        body: Response::Pong {
                            term,
                            is_primary: true,
                            lineage,
                            vector,
                        },
                    }
                    .encode(),
                )
            }
            // A live primary never votes: granting one would risk two
            // leaders in one term. The candidate hears the refusal
            // (with this primary's term) and backs off.
            Request::Vote { .. } => Step::Reply(
                ResponseFrame {
                    id,
                    body: Response::VoteReply {
                        term: repl.map_or(0, |r| r.term()),
                        granted: false,
                    },
                }
                .encode(),
            ),
            Request::ResyncStream { .. } | Request::ResyncCommit { .. } => Step::Reply(
                ResponseFrame {
                    id,
                    body: Response::Error {
                        code: ErrorCode::NotPrimary,
                        message: "resync install sent to a primary".into(),
                    },
                }
                .encode(),
            ),
        }
    }

    fn handle_replica(
        node: &Arc<ReplicaNode>,
        cluster: &RwLock<Option<WireClusterStatus>>,
        id: u64,
        body: Request,
    ) -> Step {
        let body = match body {
            Request::Replicate {
                term,
                shard,
                seq,
                records,
                traces,
            } => {
                // The clock is read only on traced ships: untraced
                // replication stays byte-for-byte on its old path (and
                // deterministic tests see zero extra clock reads).
                let started = (!traces.is_empty()).then(|| node.obs().clock().now_nanos());
                let reply = node.apply(term, shard, seq, &records);
                if let (Some(start), Response::ReplicateAck { .. }) = (started, &reply) {
                    let end = node.obs().clock().now_nanos();
                    let ring = &node.obs().spans;
                    // Salted with this node's id so sibling replicas'
                    // append spans stay distinct when dumps merge; the
                    // parent is the primary's ship span for the same
                    // stream — both sides derive it from the trace id
                    // alone, which is all the frame carried.
                    let salt = u64::from(shard) | node.node_id().wrapping_shl(32);
                    for trace in traces {
                        ring.record(
                            trace,
                            span_id(trace, SpanKind::ReplicaAppend, salt),
                            span_id(trace, SpanKind::ReplShip, u64::from(shard)),
                            SpanKind::ReplicaAppend,
                            start,
                            end,
                            seq,
                        );
                    }
                }
                reply
            }
            Request::Ping { term, .. } => node.pong(term),
            Request::Vote {
                term,
                candidate,
                ballot,
            } => node.vote(term, candidate, &ballot),
            Request::ResyncStream {
                term,
                shard,
                base_seq,
                snapshot,
            } => node.install(term, shard, base_seq, &snapshot),
            Request::ResyncCommit { term, lineage } => node.commit_resync(term, lineage),
            // A replica's own instruments stay scrapeable — that is
            // how an operator watches replication lag from outside.
            Request::Metrics => Response::Metrics {
                samples: node.obs().registry.snapshot().samples,
            },
            Request::Trace { since } => {
                let mut events = node.obs().recorder.dump_since(since);
                events.truncate(MAX_TRACE_EVENTS_PER_REPLY);
                Response::Trace { events }
            }
            Request::SpanDump { since } => {
                let mut spans = node.obs().spans.dump_since(since);
                spans.truncate(MAX_SPANS_PER_REPLY);
                Response::SpanDump { spans }
            }
            Request::ClusterStatus => {
                let pushed = cluster.read().expect("cluster view lock poisoned").clone();
                // A replica owns its term and durable vector; the
                // pushed view supplies what only the cluster driver
                // knows (ids, the believed leader, peer states).
                Response::ClusterStatus(WireClusterStatus {
                    node_id: pushed.as_ref().map_or(node.node_id(), |v| v.node_id),
                    is_primary: false,
                    term: node.current_term(),
                    leader: pushed.as_ref().map_or(0, |v| v.leader),
                    vector: node.wal().vector(),
                    peers: pushed.map_or_else(Vec::new, |v| v.peers),
                })
            }
            _ => Response::Error {
                code: ErrorCode::NotPrimary,
                message: "this node is a replica; submit to the primary".into(),
            },
        };
        Step::Reply(ResponseFrame { id, body }.encode())
    }

    /// Submits one wire task; an admission rejection *is* the final
    /// decision, so it fills the slot immediately.
    fn submit_slot(
        service: &Arc<BudgetService>,
        tenant: u32,
        task: crate::wire::WireTask,
        trace: Option<TraceContext>,
    ) -> Slot {
        let task_id = task.id;
        let result = task
            .into_task(service.ledger().grid())
            .and_then(|t| match trace {
                Some(ctx) => service.submit_async_traced(tenant, t, ctx),
                None => service.submit_async(tenant, t),
            });
        match result {
            Ok(ticket) => Slot::Waiting(ticket),
            Err(e) => Slot::Done(
                task_id,
                Outcome::Rejected {
                    code: admission_code(&e),
                    message: e.to_string(),
                },
            ),
        }
    }

    fn submission_step(id: u64, batch: bool, slots: Vec<Slot>) -> Step {
        let mut pending = PendingReply {
            request_id: id,
            batch,
            slots,
        };
        match pending.try_poll() {
            Some(reply) => Step::Reply(reply),
            None => Step::Pending(pending),
        }
    }

    fn register(
        service: &Arc<BudgetService>,
        block_id: u64,
        arrival: f64,
        capacity: Vec<f64>,
    ) -> Response {
        let grid = service.ledger().grid();
        let capacity = match dp_accounting::RdpCurve::new(grid, capacity) {
            Ok(c) => c,
            Err(e) => {
                return Response::Error {
                    code: ErrorCode::BlockRejected,
                    message: format!("capacity does not fit the grid: {e}"),
                }
            }
        };
        let block = dpack_core::problem::Block::new(block_id, capacity, arrival);
        match service.register_block(block) {
            Ok(()) => Response::BlockRegistered { id: block_id },
            Err(e) => Response::Error {
                code: ErrorCode::BlockRejected,
                message: e.to_string(),
            },
        }
    }
}

/// The unframed `Unauthorized` reply payload for request `id`.
fn unauthorized_reply(id: u64, message: &str) -> Vec<u8> {
    ResponseFrame {
        id,
        body: Response::Error {
            code: ErrorCode::Unauthorized,
            message: message.into(),
        },
    }
    .encode()
}

/// The framed `Error` response a peer gets right before the server
/// drops a connection that violated the protocol.
pub fn protocol_error_frame(err: &NetError) -> Vec<u8> {
    let mut out = Vec::new();
    frame_into(
        &mut out,
        &ResponseFrame {
            id: 0,
            body: Response::Error {
                code: ErrorCode::Protocol,
                message: err.to_string(),
            },
        }
        .encode(),
    );
    out
}

/// The framed parting shot for a connection that blew through the
/// per-connection buffering caps (see [`MAX_CONN_BUFFER`] /
/// [`MAX_CONN_PENDING`]).
fn overload_error_frame(detail: String) -> Vec<u8> {
    let mut out = Vec::new();
    frame_into(
        &mut out,
        &ResponseFrame {
            id: 0,
            body: Response::Error {
                code: ErrorCode::Overloaded,
                message: detail,
            },
        }
        .encode(),
    );
    out
}

/// The reactor's own instruments, registered on the embedded service's
/// observability context — `None` (and cost-free) when that context is
/// fully off.
struct ReactorTelemetry {
    clock: Arc<dyn Clock>,
    recorder: FlightRecorder,
    sweep_nanos: Histogram,
    open_connections: Gauge,
    conn_queue_depth: Gauge,
    violations: Counter,
    overloaded: Counter,
    accept_rejected: Counter,
}

impl ReactorTelemetry {
    fn new(core: &ServiceCore) -> Option<Self> {
        let obs = core.obs();
        if !obs.is_enabled() && obs.recorder.capacity() == 0 {
            return None;
        }
        Some(Self {
            clock: Arc::clone(obs.clock()),
            recorder: obs.recorder.clone(),
            sweep_nanos: obs.registry.histogram("dpack_reactor_sweep_nanos", ""),
            open_connections: obs.registry.gauge("dpack_open_connections", ""),
            conn_queue_depth: obs.registry.gauge("dpack_conn_queue_depth", ""),
            violations: obs.registry.counter("dpack_protocol_violations_total", ""),
            overloaded: obs.registry.counter("dpack_overloaded_conns_total", ""),
            accept_rejected: obs.registry.counter("dpack_accept_rejected_total", ""),
        })
    }

    fn violation(&self, conn_ordinal: u64) {
        self.violations.inc();
        self.recorder
            .record(EventKind::ProtocolViolation, conn_ordinal, 0);
    }

    fn overload(&self) {
        self.overloaded.inc();
    }

    fn accept_reject(&self) {
        self.accept_rejected.inc();
        self.recorder.record(EventKind::AcceptRejected, 0, 0);
    }
}

/// One client connection's reactor state.
struct Conn {
    stream: TcpStream,
    /// Accept-order ordinal, the connection's identity in violation
    /// events (remote addresses don't fit a `u64` payload word).
    ordinal: u64,
    decoder: FrameDecoder,
    /// Encoded-but-unflushed response bytes.
    wbuf: Vec<u8>,
    /// Written prefix of `wbuf`.
    wpos: usize,
    pending: Vec<PendingReply>,
    /// Flush what is buffered, then drop the connection.
    close_after_flush: bool,
    /// The client half-closed; answer what is pending, then finish.
    eof: bool,
    /// The write side was shut down after the final flush of a
    /// `close_after_flush` connection (the lingering-close FIN).
    fin_sent: bool,
    /// Bytes drained and discarded while lingering.
    drained: usize,
    /// Whether a secured core has seen this connection's `Hello`.
    authed: bool,
}

impl Conn {
    fn new(stream: TcpStream, ordinal: u64) -> Self {
        Self {
            stream,
            ordinal,
            decoder: FrameDecoder::new(),
            wbuf: Vec::new(),
            wpos: 0,
            pending: Vec::new(),
            close_after_flush: false,
            eof: false,
            fin_sent: false,
            drained: 0,
            authed: false,
        }
    }

    fn queue(&mut self, payload: &[u8]) {
        frame_into(&mut self.wbuf, payload);
    }

    /// Reads available bytes and processes complete frames. Returns
    /// `false` when the connection is finished (EOF or fatal error),
    /// `true` with `progress` updated otherwise.
    fn pump_read(
        &mut self,
        core: &ServiceCore,
        telemetry: Option<&ReactorTelemetry>,
        progress: &mut bool,
    ) -> bool {
        if self.close_after_flush {
            // Lingering close: keep draining (and discarding) the
            // peer's backlog so the final error frame is deliverable —
            // closing with unread inbound bytes resets the connection
            // and can destroy the parting shot in flight. Bounded, so
            // a peer that never stops sending cannot hold the slot.
            let mut chunk = [0u8; 8192];
            let mut budget = READ_BUDGET;
            loop {
                if budget == 0 || self.eof {
                    return true;
                }
                match self.stream.read(&mut chunk) {
                    // Once the peer is done too, a flushed connection
                    // closes cleanly; an unflushed one finishes after
                    // its last flush (`pump_write` sees the eof).
                    Ok(0) => {
                        self.eof = true;
                        return !self.fin_sent;
                    }
                    Ok(n) => {
                        *progress = true;
                        budget = budget.saturating_sub(n);
                        self.drained += n;
                        if self.drained > MAX_LINGER_DRAIN {
                            return false; // Hostile flood: hard close.
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => return false,
                }
            }
        }
        if self.eof {
            return true; // Half-closed: just answer what is pending.
        }
        let mut chunk = [0u8; 8192];
        // Per-sweep read budget: a tenant streaming pipelined requests
        // faster than they are processed must not monopolize the sweep
        // — other connections' reads, pending decisions, and flushes
        // run between budget slices. Unread bytes stay in the kernel
        // buffer (and eventually push back on the sender).
        let mut budget = READ_BUDGET;
        loop {
            if budget == 0 {
                return true;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // A partial frame at EOF means the peer died
                    // mid-send — a dropped request, not a half-close,
                    // so it must leave a trace.
                    if self.decoder.buffered() > 0 {
                        if let Some(t) = telemetry {
                            t.violation(self.ordinal);
                        }
                    }
                    // Half-close: a pipelining client may shut its
                    // write side down and still await the decisions.
                    self.eof = true;
                    return true;
                }
                Ok(n) => {
                    *progress = true;
                    budget = budget.saturating_sub(n);
                    self.decoder.extend(&chunk[..n]);
                    loop {
                        match self.decoder.next_frame() {
                            Ok(Some(payload)) => match core.handle_with(&payload, &mut self.authed)
                            {
                                Ok(Step::Reply(reply)) => self.queue(&reply),
                                Ok(Step::Pending(p)) => self.pending.push(p),
                                Err(e) => {
                                    if let Some(t) = telemetry {
                                        t.violation(self.ordinal);
                                    }
                                    self.wbuf.extend_from_slice(&protocol_error_frame(&e));
                                    self.close_after_flush = true;
                                    return true;
                                }
                            },
                            Ok(None) => break,
                            Err(e) => {
                                if let Some(t) = telemetry {
                                    t.violation(self.ordinal);
                                }
                                self.wbuf.extend_from_slice(&protocol_error_frame(&e));
                                self.close_after_flush = true;
                                return true;
                            }
                        }
                        // A reader that falls behind its own replies
                        // (or floods submissions awaiting cycles) is
                        // cut off at the caps — otherwise one slow
                        // reader grows server memory without bound.
                        let buffered = self.wbuf.len() - self.wpos;
                        if buffered > MAX_CONN_BUFFER || self.pending.len() > MAX_CONN_PENDING {
                            if let Some(t) = telemetry {
                                t.overload();
                            }
                            self.wbuf.extend_from_slice(&overload_error_frame(format!(
                                "connection exceeded buffering caps \
                                 ({buffered} reply bytes unread, {} decisions pending)",
                                self.pending.len()
                            )));
                            self.close_after_flush = true;
                            return true;
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Polls pending decisions into the write buffer.
    fn pump_pending(&mut self, progress: &mut bool) {
        let mut i = 0;
        while i < self.pending.len() {
            if let Some(reply) = self.pending[i].try_poll() {
                self.queue(&reply);
                self.pending.swap_remove(i);
                *progress = true;
            } else {
                i += 1;
            }
        }
    }

    /// Flushes buffered bytes. Returns `false` when the connection is
    /// finished.
    fn pump_write(&mut self, progress: &mut bool) -> bool {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return false,
                Ok(n) => {
                    self.wpos += n;
                    *progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
            if self.close_after_flush {
                if self.eof {
                    return false; // Both sides done: clean close.
                }
                // Everything (including the parting shot) is in the
                // kernel's hands: half-close and linger until the
                // peer reads it and hangs up.
                if !self.fin_sent {
                    let _ = self.stream.shutdown(std::net::Shutdown::Write);
                    self.fin_sent = true;
                }
            }
        }
        true
    }

    /// Whether the reactor still has work or obligations here.
    fn idle_done(&self) -> bool {
        self.pending.is_empty() && self.wpos >= self.wbuf.len()
    }
}

/// A TCP server exposing a [`BudgetService`] to remote tenants.
///
/// Runs one reactor thread; stop it with [`NetServer::stop`] (also on
/// drop). Pending decisions on live connections are answered as cycles
/// resolve them; at shutdown, unanswered connections are dropped and
/// clients observe [`NetError::Closed`].
pub struct NetServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl NetServer {
    /// Binds and spawns the reactor serving a **primary**. Bind to
    /// port 0 to let the OS pick ([`NetServer::local_addr`] reports
    /// the choice).
    ///
    /// # Errors
    ///
    /// Socket bind/configuration errors.
    pub fn bind(service: Arc<BudgetService>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::bind_core(ServiceCore::new(service), addr)
    }

    /// Binds and spawns the reactor serving a **replica**: the node
    /// accepts the primary's replication stream (and metrics/trace
    /// scrapes) and answers everything else with
    /// [`ErrorCode::NotPrimary`].
    ///
    /// # Errors
    ///
    /// Socket bind/configuration errors.
    pub fn bind_replica(node: Arc<ReplicaNode>, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::bind_core(ServiceCore::replica(node), addr)
    }

    /// Binds and spawns the reactor around an arbitrary core — the
    /// entry point for cluster nodes whose role swaps over the
    /// server's lifetime, and for secured cores
    /// ([`ServiceCore::with_secret`]).
    ///
    /// # Errors
    ///
    /// Socket bind/configuration errors.
    pub fn bind_core(core: ServiceCore, addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let reactor_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("dpack-net-reactor".into())
            .spawn(move || reactor(listener, core, &reactor_stop))
            .expect("spawn reactor thread");
        Ok(Self {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (with the OS-assigned port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals the reactor and joins it. Connections still waiting on
    /// decisions are dropped.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(thread) = self.thread.take() {
            thread.join().expect("reactor thread panicked");
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How long the reactor parks when a sweep made no progress. Pending
/// decisions resolve at scheduling-cycle granularity, so a sub-cycle
/// park costs latency nobody observes.
const IDLE_PARK: Duration = Duration::from_micros(200);

/// Bytes one connection may feed into the processor per sweep — the
/// fairness slice between connections (see [`Conn::pump_read`]).
const READ_BUDGET: usize = 64 * 1024;

/// Unflushed reply bytes one connection may accumulate before the
/// server declares it overloaded: a slow (or stopped) reader pipelining
/// requests grows its own write buffer, and past this cap it gets a
/// final [`ErrorCode::Overloaded`] frame and the connection closes.
const MAX_CONN_BUFFER: usize = 1 << 20;

/// In-flight pending decisions one connection may hold (submissions
/// whose scheduling cycle has not resolved yet) — the ROADMAP's
/// max-in-flight bound, enforced per connection.
const MAX_CONN_PENDING: usize = 4096;

/// Bytes a closing connection will drain and discard while lingering
/// (delivering its final error frame to a peer with a deep pipeline
/// still in flight). Past this, the peer is flooding, not finishing,
/// and the connection hard-closes.
const MAX_LINGER_DRAIN: usize = 64 << 20;

fn reactor(listener: TcpListener, core: ServiceCore, stop: &AtomicBool) {
    let telemetry = ReactorTelemetry::new(&core);
    let mut conns: Vec<Conn> = Vec::new();
    let mut next_ordinal = 0u64;
    while !stop.load(Ordering::Acquire) {
        let sweep_started = telemetry.as_ref().map(|t| t.clock.now_nanos());
        let mut progress = false;

        // Accept whatever is queued.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        // Misconfigured socket: drop it — but leave a
                        // trace, or a flaky network stack looks like
                        // clients that never connected.
                        if let Some(t) = &telemetry {
                            t.accept_reject();
                        }
                        continue;
                    }
                    conns.push(Conn::new(stream, next_ordinal));
                    next_ordinal += 1;
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }

        // Sweep every connection: read → process → poll pending →
        // write; drop the finished ones.
        let mut i = 0;
        while i < conns.len() {
            let conn = &mut conns[i];
            let mut alive = conn.pump_read(&core, telemetry.as_ref(), &mut progress);
            conn.pump_pending(&mut progress);
            alive &= conn.pump_write(&mut progress);
            // A half-closed connection finishes once fully answered.
            alive &= !(conn.eof && conn.idle_done());
            if alive {
                i += 1;
            } else {
                conns.swap_remove(i);
                progress = true;
            }
        }

        if let Some(t) = &telemetry {
            t.open_connections.set_u64(conns.len() as u64);
            t.conn_queue_depth
                .set_u64(conns.iter().map(|c| c.pending.len() as u64).sum());
            if let Some(started) = sweep_started {
                t.sweep_nanos
                    .record(t.clock.now_nanos().saturating_sub(started));
            }
        }

        // No bytes moved and no decision resolved this sweep: park.
        // Connections merely *waiting* on a scheduling cycle must not
        // keep the reactor spinning — their decisions resolve at cycle
        // granularity, far coarser than the park.
        if !progress {
            std::thread::park_timeout(IDLE_PARK);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversized_replies_degrade_to_an_error_frame_not_a_panic() {
        // A synthetic response payload past the frame cap (any tag; the
        // clamp only needs the `tag ‖ request id` prefix).
        let mut huge = vec![0x06u8];
        huge.extend_from_slice(&42u64.to_le_bytes());
        huge.resize(MAX_FRAME as usize + 1, 0);
        let clamped = clamp_reply(huge);
        assert!(clamped.len() <= MAX_FRAME as usize);
        let resp = ResponseFrame::decode(&clamped).expect("valid error frame");
        assert_eq!(resp.id, 42, "the error answers the original request");
        assert!(matches!(
            resp.body,
            Response::Error {
                code: ErrorCode::Protocol,
                ..
            }
        ));
        // In-bounds replies pass through untouched.
        let small = ResponseFrame {
            id: 7,
            body: Response::BlockRegistered { id: 1 },
        }
        .encode();
        assert_eq!(clamp_reply(small.clone()), small);
    }
}
