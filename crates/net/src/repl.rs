//! WAL shipping over the wire: the primary-side [`Replicator`] and the
//! replica-side [`ReplicaNode`].
//!
//! The model (ordering, quorum, promotion-only recovery) is specified
//! in [`dpack_service::replication`]; this module is the transport for
//! it. A [`Replicator`] holds one pipelined [`NetClient`] link per
//! replica and implements [`ReplicationSink`]: each
//! [`ReplicationSink::ship`] call sends the batch to **every live
//! replica first, then collects durability acks** — one round-trip per
//! group-commit flush regardless of the replica count. A replica whose
//! link fails (send error, broken stream, refused batch, bad ack) is
//! **dead**: the sink never retries it, and operators must not promote
//! it. The ship succeeds iff acks reach the configured quorum; with
//! dead replicas excluded, every acknowledged grant is durable on every
//! *live* replica, which is what makes promoting any live replica
//! lossless.
//!
//! A [`ReplicaNode`] is the state behind
//! [`crate::NetServer::bind_replica`]: a
//! [`dpack_service::ReplicaWal`] with the primary's directory layout
//! (so promotion is [`BudgetService::recover`] on its storage) plus its
//! own observability — `dpack_repl_*` metrics and
//! [`EventKind::ReplicaApplied`] flight-recorder events.
//!
//! [`BudgetService::recover`]: dpack_service::BudgetService::recover

use std::fmt;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dpack_obs::{Clock, Counter, EventKind, Gauge, Histogram, Obs};
use dpack_service::wal::{WalError, WalStorage};
use dpack_service::{ReplShipError, ReplStream, ReplicaApplyError, ReplicaWal, ReplicationSink};

use crate::client::NetClient;
use crate::error::{ErrorCode, NetError};
use crate::wire::{Response, REPL_COORD_STREAM};

fn wire_stream(shard: u32) -> ReplStream {
    if shard == REPL_COORD_STREAM {
        ReplStream::Coordinator
    } else {
        ReplStream::Shard(shard)
    }
}

/// Replica-side state: the replica's logs plus its instruments. Serve
/// it with [`crate::NetServer::bind_replica`] (or a loopback core via
/// [`crate::ServiceCore::replica`] in tests).
pub struct ReplicaNode {
    wal: ReplicaWal,
    obs: Arc<Obs>,
    applied_batches: Counter,
    applied_records: Counter,
    duplicate_batches: Counter,
    /// One durable-seq gauge per shard stream, coordinator last.
    durable_gauges: Vec<Gauge>,
}

impl fmt::Debug for ReplicaNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplicaNode")
            .field("shards", &self.wal.n_shards())
            .finish_non_exhaustive()
    }
}

impl ReplicaNode {
    /// Opens (or reopens) replica logs in `storage`, laid out for a
    /// primary with `shards` shards. Reopening resumes each stream's
    /// sequence from the surviving log.
    ///
    /// # Errors
    ///
    /// Storage and log-recovery errors.
    pub fn open(
        storage: &dyn WalStorage,
        shards: usize,
        segment_bytes: u64,
        obs: Arc<Obs>,
    ) -> Result<Self, WalError> {
        let wal = ReplicaWal::open(storage, shards, segment_bytes)?;
        let mut durable_gauges: Vec<Gauge> = (0..shards)
            .map(|s| {
                obs.registry
                    .gauge("dpack_repl_durable_seq", &format!("stream=\"shard-{s}\""))
            })
            .collect();
        durable_gauges.push(
            obs.registry
                .gauge("dpack_repl_durable_seq", "stream=\"coord\""),
        );
        // Reopened logs may already be ahead of zero.
        for (s, gauge) in durable_gauges.iter().take(shards).enumerate() {
            gauge.set_u64(wal.durable_seq(ReplStream::Shard(s as u32)));
        }
        durable_gauges[shards].set_u64(wal.durable_seq(ReplStream::Coordinator));
        Ok(Self {
            applied_batches: obs.registry.counter("dpack_repl_applied_batches_total", ""),
            applied_records: obs.registry.counter("dpack_repl_applied_records_total", ""),
            duplicate_batches: obs
                .registry
                .counter("dpack_repl_duplicate_batches_total", ""),
            durable_gauges,
            wal,
            obs,
        })
    }

    /// The replica's logs (promotion reads the storage they were opened
    /// on; tests read sequences through this).
    pub fn wal(&self) -> &ReplicaWal {
        &self.wal
    }

    /// The replica's observability context — the reactor registers its
    /// instruments here, and remote `Metrics`/`Trace` scrapes read it.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Applies one shipped batch and builds the wire reply: a
    /// [`Response::ReplicateAck`] carrying the stream's durable
    /// sequence, or an `Error` with
    /// [`ErrorCode::ReplicationGap`] / [`ErrorCode::Io`].
    pub(crate) fn apply(&self, shard: u32, seq: u64, records: &[Vec<u8>]) -> Response {
        let stream = wire_stream(shard);
        // Sampled before the apply: afterwards a fresh batch and a
        // redelivery of the newest batch both show `durable == seq`.
        let fresh = seq > self.wal.durable_seq(stream);
        match self.wal.apply(stream, seq, records) {
            Ok(durable) => {
                if fresh {
                    self.applied_batches.inc();
                    self.applied_records.add(records.len() as u64);
                    self.obs
                        .recorder
                        .record(EventKind::ReplicaApplied, u64::from(shard), seq);
                } else {
                    self.duplicate_batches.inc();
                }
                let slot = match stream {
                    ReplStream::Shard(s) => s as usize,
                    ReplStream::Coordinator => self.wal.n_shards(),
                };
                self.durable_gauges[slot].set_u64(durable);
                Response::ReplicateAck {
                    shard,
                    seq,
                    durable,
                }
            }
            Err(e @ ReplicaApplyError::Gap { .. }) => Response::Error {
                code: ErrorCode::ReplicationGap,
                message: e.to_string(),
            },
            Err(e) => Response::Error {
                code: ErrorCode::Io,
                message: e.to_string(),
            },
        }
    }
}

/// One replica link: dead once `client` is `None` (a dead replica is
/// never retried and must not be promoted).
struct Link {
    addr: SocketAddr,
    client: Mutex<Option<NetClient>>,
}

/// The primary's [`ReplicationSink`] over [`NetClient`] links.
///
/// Per-stream sequence numbers are assigned here (the ledger serializes
/// ships per stream, so a fetch-add suffices), which also means a
/// `Replicator` must be attached to a **fresh** ledger — the same
/// constraint [`dpack_service::ShardedLedger::set_replication`]
/// asserts.
pub struct Replicator {
    links: Vec<Link>,
    quorum: usize,
    n_shards: usize,
    /// Next-1 sequence per stream; shard streams first, coordinator
    /// last.
    seqs: Vec<AtomicU64>,
    clock: Arc<dyn Clock>,
    shipped_batches: Counter,
    shipped_records: Counter,
    acked_batches: Counter,
    ship_failures: Counter,
    live_replicas: Gauge,
    quorum_wait_nanos: Histogram,
}

impl fmt::Debug for Replicator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Replicator")
            .field(
                "replicas",
                &self.links.iter().map(|l| l.addr).collect::<Vec<_>>(),
            )
            .field("quorum", &self.quorum)
            .field("live", &self.live())
            .finish_non_exhaustive()
    }
}

impl Replicator {
    /// Connects one link per replica address. `quorum` is how many
    /// durability acks a ship needs to succeed; `n_shards` must match
    /// the ledger this sink will be attached to (and the `shards` the
    /// replicas' logs were opened with).
    ///
    /// # Errors
    ///
    /// The first connection failure — replication starts with every
    /// replica reachable or not at all.
    ///
    /// # Panics
    ///
    /// Panics if `quorum` is 0 or exceeds the replica count, or if
    /// `n_shards` is 0.
    pub fn connect(
        addrs: &[SocketAddr],
        quorum: usize,
        n_shards: usize,
        obs: &Obs,
    ) -> Result<Self, NetError> {
        let links = addrs
            .iter()
            .map(|&addr| {
                Ok(Link {
                    addr,
                    client: Mutex::new(Some(NetClient::connect(addr)?)),
                })
            })
            .collect::<Result<Vec<_>, NetError>>()?;
        Ok(Self::over_links(links, quorum, n_shards, obs))
    }

    /// Builds a replicator over pre-connected clients, one per replica
    /// — the loopback/test path ([`crate::LoopbackTransport::with_core`]
    /// wired to [`crate::ServiceCore::replica`] cores).
    ///
    /// # Panics
    ///
    /// Same contract as [`Replicator::connect`].
    pub fn over_clients(
        clients: Vec<NetClient>,
        quorum: usize,
        n_shards: usize,
        obs: &Obs,
    ) -> Self {
        let unaddressed: SocketAddr = ([0, 0, 0, 0], 0).into();
        let links = clients
            .into_iter()
            .map(|c| Link {
                addr: unaddressed,
                client: Mutex::new(Some(c)),
            })
            .collect();
        Self::over_links(links, quorum, n_shards, obs)
    }

    fn over_links(links: Vec<Link>, quorum: usize, n_shards: usize, obs: &Obs) -> Self {
        assert!(
            quorum >= 1 && quorum <= links.len(),
            "quorum must be within 1..=replica count"
        );
        assert!(n_shards >= 1, "need at least one shard stream");
        let this = Self {
            quorum,
            n_shards,
            seqs: (0..=n_shards).map(|_| AtomicU64::new(0)).collect(),
            clock: Arc::clone(obs.clock()),
            shipped_batches: obs.registry.counter("dpack_repl_shipped_batches_total", ""),
            shipped_records: obs.registry.counter("dpack_repl_shipped_records_total", ""),
            acked_batches: obs.registry.counter("dpack_repl_acked_batches_total", ""),
            ship_failures: obs.registry.counter("dpack_repl_ship_failures_total", ""),
            live_replicas: obs.registry.gauge("dpack_repl_live_replicas", ""),
            quorum_wait_nanos: obs.registry.histogram("dpack_repl_quorum_wait_nanos", ""),
            links,
        };
        this.live_replicas.set_u64(this.live() as u64);
        this
    }

    /// Replicas whose links are still trusted.
    pub fn live(&self) -> usize {
        self.links
            .iter()
            .filter(|l| {
                l.client
                    .lock()
                    .expect("replica link lock poisoned")
                    .is_some()
            })
            .count()
    }

    /// The configured quorum.
    pub fn quorum(&self) -> usize {
        self.quorum
    }
}

impl ReplicationSink for Replicator {
    fn ship(&self, stream: ReplStream, records: &[&[u8]]) -> Result<(), ReplShipError> {
        let (shard_wire, slot) = match stream {
            ReplStream::Shard(s) => (s, s as usize),
            ReplStream::Coordinator => (REPL_COORD_STREAM, self.n_shards),
        };
        debug_assert!(slot < self.seqs.len(), "stream outside the attached ledger");
        let seq = self.seqs[slot].fetch_add(1, Ordering::Relaxed) + 1;
        let started = self.clock.now_nanos();
        self.shipped_batches.inc();
        self.shipped_records.add(records.len() as u64);

        // Phase 1: pipeline the batch to every live replica; a send
        // failure kills the link on the spot.
        let mut handles = Vec::with_capacity(self.links.len());
        for link in &self.links {
            let mut client = link.client.lock().expect("replica link lock poisoned");
            let handle = client.as_mut().and_then(|c| {
                c.replicate_nowait(
                    shard_wire,
                    seq,
                    records.iter().map(|r| r.to_vec()).collect(),
                )
                .ok()
            });
            if handle.is_none() {
                *client = None;
            }
            handles.push(handle);
        }

        // Phase 2: collect durability acks. An errored wait, a
        // mismatched ack, or a `durable` short of `seq` all mean the
        // replica can no longer be trusted to hold the acked prefix.
        let mut acked = 0usize;
        for (link, handle) in self.links.iter().zip(handles) {
            let Some(handle) = handle else { continue };
            let mut client = link.client.lock().expect("replica link lock poisoned");
            let ok = client.as_mut().is_some_and(|c| {
                matches!(
                    c.wait_replicate_ack(handle),
                    Ok((s, q, durable)) if s == shard_wire && q == seq && durable >= seq
                )
            });
            if ok {
                acked += 1;
            } else {
                *client = None;
            }
        }

        self.live_replicas.set_u64(self.live() as u64);
        self.quorum_wait_nanos
            .record(self.clock.now_nanos().saturating_sub(started));
        if acked >= self.quorum {
            self.acked_batches.inc();
            Ok(())
        } else {
            self.ship_failures.inc();
            Err(ReplShipError::QuorumLost {
                acked,
                quorum: self.quorum,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LoopbackTransport;
    use crate::ServiceCore;
    use dpack_service::wal::SimStorage;

    fn loopback_replica(sim: &SimStorage, shards: usize) -> (Arc<ReplicaNode>, NetClient) {
        let obs = Obs::off();
        let node = Arc::new(ReplicaNode::open(sim, shards, 1 << 16, obs).unwrap());
        let client = NetClient::new(Box::new(LoopbackTransport::with_core(
            ServiceCore::replica(Arc::clone(&node)),
        )));
        (node, client)
    }

    #[test]
    fn a_quorum_of_loopback_replicas_acks_a_ship() {
        let sim_a = SimStorage::new();
        let sim_b = SimStorage::new();
        let (node_a, client_a) = loopback_replica(&sim_a, 2);
        let (node_b, client_b) = loopback_replica(&sim_b, 2);
        let obs = Obs::off();
        let repl = Replicator::over_clients(vec![client_a, client_b], 2, 2, &obs);
        assert_eq!(repl.live(), 2);

        let rec: &[&[u8]] = &[b"one", b"two"];
        repl.ship(ReplStream::Shard(1), rec).unwrap();
        repl.ship(ReplStream::Shard(1), &[b"three"]).unwrap();
        repl.ship(ReplStream::Coordinator, &[b"c1"]).unwrap();
        for node in [&node_a, &node_b] {
            assert_eq!(node.wal().durable_seq(ReplStream::Shard(1)), 2);
            assert_eq!(node.wal().durable_seq(ReplStream::Coordinator), 1);
            assert_eq!(node.wal().durable_seq(ReplStream::Shard(0)), 0);
        }
    }

    #[test]
    fn a_dead_replica_fails_quorum_and_stays_dead() {
        let sim_a = SimStorage::new();
        let sim_b = SimStorage::new();
        let (node_a, client_a) = loopback_replica(&sim_a, 1);
        let (_node_b, client_b) = loopback_replica(&sim_b, 1);
        // Break replica B's log so its applies fail.
        sim_b.set_append_errors(true);
        let obs = Obs::off();
        let repl = Replicator::over_clients(vec![client_a, client_b], 2, 1, &obs);

        let err = repl.ship(ReplStream::Shard(0), &[b"r"]).unwrap_err();
        assert_eq!(
            err,
            ReplShipError::QuorumLost {
                acked: 1,
                quorum: 2
            }
        );
        assert_eq!(repl.live(), 1, "the failed replica is dead");
        // B never recovers even if its storage does: quorum 2 of a
        // 1-live fleet keeps failing, and A (live) keeps applying.
        sim_b.set_append_errors(false);
        assert!(repl.ship(ReplStream::Shard(0), &[b"r2"]).is_err());
        assert_eq!(node_a.wal().durable_seq(ReplStream::Shard(0)), 2);
    }

    #[test]
    fn quorum_one_survives_a_single_replica_failure() {
        let sim_a = SimStorage::new();
        let sim_b = SimStorage::new();
        let (node_a, client_a) = loopback_replica(&sim_a, 1);
        let (node_b, client_b) = loopback_replica(&sim_b, 1);
        sim_b.set_append_errors(true);
        let obs = Obs::off();
        let repl = Replicator::over_clients(vec![client_a, client_b], 1, 1, &obs);

        repl.ship(ReplStream::Shard(0), &[b"r"]).unwrap();
        assert_eq!(repl.live(), 1);
        assert_eq!(node_a.wal().durable_seq(ReplStream::Shard(0)), 1);
        assert_eq!(node_b.wal().durable_seq(ReplStream::Shard(0)), 0);
    }

    #[test]
    fn a_primary_refuses_the_replication_stream() {
        use dp_accounting::AlphaGrid;
        use dpack_service::{BudgetService, ServiceConfig};
        let grid = AlphaGrid::new(vec![4.0, 16.0]).unwrap();
        let service = Arc::new(BudgetService::new(grid, ServiceConfig::default()));
        let mut client = NetClient::loopback(service);
        let err = client.replicate(0, 1, vec![b"r".to_vec()]).unwrap_err();
        assert!(
            matches!(
                err,
                NetError::Remote {
                    code: ErrorCode::Protocol,
                    ..
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn a_replica_refuses_tenant_traffic_as_not_primary() {
        let sim = SimStorage::new();
        let (_node, mut client) = loopback_replica(&sim, 1);
        let err = client.grid().unwrap_err();
        assert!(
            matches!(
                err,
                NetError::Remote {
                    code: ErrorCode::NotPrimary,
                    ..
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn duplicate_and_gap_deliveries_answer_idempotently_and_with_gap_errors() {
        let sim = SimStorage::new();
        let (node, mut client) = loopback_replica(&sim, 1);
        assert_eq!(client.replicate(0, 1, vec![b"a".to_vec()]).unwrap(), 1);
        assert_eq!(client.replicate(0, 2, vec![b"b".to_vec()]).unwrap(), 2);
        // Duplicate: acked with the unchanged durable sequence.
        assert_eq!(client.replicate(0, 1, vec![b"a".to_vec()]).unwrap(), 2);
        // Gap: refused with the dedicated code.
        let err = client.replicate(0, 9, vec![b"z".to_vec()]).unwrap_err();
        assert!(
            matches!(
                err,
                NetError::Remote {
                    code: ErrorCode::ReplicationGap,
                    ..
                }
            ),
            "got {err:?}"
        );
        assert_eq!(node.wal().durable_seq(ReplStream::Shard(0)), 2);
    }
}
