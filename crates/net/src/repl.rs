//! WAL shipping over the wire: the primary-side [`Replicator`] and the
//! replica-side [`ReplicaNode`].
//!
//! The model (ordering, quorum, promotion-only recovery) is specified
//! in [`dpack_service::replication`]; this module is the transport for
//! it. A [`Replicator`] holds one pipelined [`NetClient`] link per
//! replica and implements [`ReplicationSink`]: each
//! [`ReplicationSink::ship`] call sends the batch to **every up
//! replica first, then collects durability acks** — one round-trip per
//! group-commit flush regardless of the replica count. The ship
//! succeeds iff acks reach the configured quorum; every acknowledged
//! grant is durable on every replica that acked it.
//!
//! Links are **self-healing**: a replica whose link fails (send error,
//! broken stream, refused batch, bad ack, expired
//! [`Replicator::with_ship_timeout`] deadline) drops to `Suspect` and
//! stops receiving ships, but [`Replicator::tend`] — called
//! periodically by whatever drives the node (a
//! [`crate::ClusterNode`] step, or a test) — redials it with capped
//! exponential backoff. A redialed replica whose durable state still
//! matches the primary's (same lineage, same seq vector) rejoins on
//! the spot; one that lagged or restarted is **resynced**: the primary
//! quiesces shipping, pushes a per-stream snapshot at the current seq
//! vector (the same state+suffix law compaction uses), and commits the
//! round with its lineage, after which ships resume to it as an
//! ordinary suffix. Legacy constructors ([`Replicator::connect`],
//! [`Replicator::over_clients`]) never tend, preserving the original
//! dead-stays-dead semantics.
//!
//! Every [`crate::Request::Replicate`] carries the primary's election
//! **term**. A replica fences ships from terms older than the highest
//! it has seen with [`ErrorCode::StaleTerm`], and a deposed primary
//! that sees that refusal (or a newer term in any reply) marks itself
//! [`Replicator::is_deposed`] and refuses further ships — the wire is
//! how an old leader learns it lost.
//!
//! A [`ReplicaNode`] is the state behind
//! [`crate::NetServer::bind_replica`]: a
//! [`dpack_service::ReplicaWal`] with the primary's directory layout
//! (so promotion is [`BudgetService::recover`] on its storage), an
//! election state (current term, vote bookkeeping), plus its own
//! observability — `dpack_repl_*` metrics and
//! [`EventKind::ReplicaApplied`] flight-recorder events. Terms are
//! in-memory; what protects a restarted node from voting with stale
//! state is the durable `dirty` marker ([`ReplicaWal::open`] wipes a
//! mid-resync node back to unattached) plus the ballot rule below.
//!
//! [`BudgetService::recover`]: dpack_service::BudgetService::recover

use std::fmt;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use dpack_obs::trace::{span_id, with_active_traces, SpanKind, SpanRing};
use dpack_obs::{Clock, Counter, EventKind, FlightRecorder, Gauge, Histogram, Obs};
use dpack_service::wal::{WalError, WalStorage};
use dpack_service::{
    BudgetService, ReplShipError, ReplStream, ReplicaApplyError, ReplicaWal, ReplicationSink,
};

use crate::client::NetClient;
use crate::error::{ErrorCode, NetError};
use crate::wire::{Response, WirePeer, REPL_COORD_STREAM};

fn wire_stream(shard: u32) -> ReplStream {
    if shard == REPL_COORD_STREAM {
        ReplStream::Coordinator
    } else {
        ReplStream::Shard(shard)
    }
}

/// The election-ballot order: a candidate may lead a voter iff its
/// durable seq vector is at least the voter's. Ships are serialized
/// under the primary's cycle lock, so honest vectors are totally
/// ordered by sum; the lexicographic leg breaks byzantine ties and the
/// id leg breaks exact ties (lower id wins, so staggered candidates
/// converge on one winner).
fn ballot_wins(cand_ballot: &[u64], cand_id: u64, own_ballot: &[u64], own_id: u64) -> bool {
    let cand_sum: u64 = cand_ballot.iter().sum();
    let own_sum: u64 = own_ballot.iter().sum();
    if cand_sum != own_sum {
        return cand_sum > own_sum;
    }
    if cand_ballot != own_ballot {
        return cand_ballot > own_ballot;
    }
    cand_id <= own_id
}

/// The replica's view of the election: the highest term it has seen.
/// Adopting a term consumes this node's vote for it — a voter grants
/// only to the **first** candidate that moves it to a new term, which
/// is what makes two leaders in one term impossible.
#[derive(Debug, Default)]
struct ElectionState {
    term: u64,
}

/// Replica-side state: the replica's logs plus its instruments. Serve
/// it with [`crate::NetServer::bind_replica`] (or a loopback core via
/// [`crate::ServiceCore::replica`] in tests).
pub struct ReplicaNode {
    wal: ReplicaWal,
    obs: Arc<Obs>,
    /// This node's id in the deployment — the election tiebreak. Set it
    /// with [`ReplicaNode::with_node_id`]; standalone replicas
    /// (never candidates) can leave the default 0.
    node_id: u64,
    election: Mutex<ElectionState>,
    applied_batches: Counter,
    applied_records: Counter,
    duplicate_batches: Counter,
    /// One durable-seq gauge per shard stream, coordinator last.
    durable_gauges: Vec<Gauge>,
}

impl fmt::Debug for ReplicaNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReplicaNode")
            .field("shards", &self.wal.n_shards())
            .field("node_id", &self.node_id)
            .finish_non_exhaustive()
    }
}

impl ReplicaNode {
    /// Opens (or reopens) replica logs in `storage`, laid out for a
    /// primary with `shards` shards. Reopening resumes each stream's
    /// sequence from the surviving log — unless a `dirty` marker shows
    /// the node died mid-resync, in which case the logs are wiped back
    /// to unattached (they were not a faithful prefix of anything).
    ///
    /// # Errors
    ///
    /// Storage and log-recovery errors.
    pub fn open(
        storage: &dyn WalStorage,
        shards: usize,
        segment_bytes: u64,
        obs: Arc<Obs>,
    ) -> Result<Self, WalError> {
        let wal = ReplicaWal::open(storage, shards, segment_bytes)?;
        let mut durable_gauges: Vec<Gauge> = (0..shards)
            .map(|s| {
                obs.registry
                    .gauge("dpack_repl_durable_seq", &format!("stream=\"shard-{s}\""))
            })
            .collect();
        durable_gauges.push(
            obs.registry
                .gauge("dpack_repl_durable_seq", "stream=\"coord\""),
        );
        // Reopened logs may already be ahead of zero.
        for (s, gauge) in durable_gauges.iter().take(shards).enumerate() {
            gauge.set_u64(wal.durable_seq(ReplStream::Shard(s as u32)));
        }
        durable_gauges[shards].set_u64(wal.durable_seq(ReplStream::Coordinator));
        Ok(Self {
            applied_batches: obs.registry.counter("dpack_repl_applied_batches_total", ""),
            applied_records: obs.registry.counter("dpack_repl_applied_records_total", ""),
            duplicate_batches: obs
                .registry
                .counter("dpack_repl_duplicate_batches_total", ""),
            durable_gauges,
            node_id: 0,
            election: Mutex::new(ElectionState::default()),
            wal,
            obs,
        })
    }

    /// Sets this node's deployment id (the election tiebreak).
    #[must_use]
    pub fn with_node_id(mut self, node_id: u64) -> Self {
        self.node_id = node_id;
        self
    }

    /// This node's deployment id.
    pub fn node_id(&self) -> u64 {
        self.node_id
    }

    /// The replica's logs (promotion reads the storage they were opened
    /// on; tests read sequences through this).
    pub fn wal(&self) -> &ReplicaWal {
        &self.wal
    }

    /// The replica's observability context — the reactor registers its
    /// instruments here, and remote `Metrics`/`Trace` scrapes read it.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// The highest election term this node has seen.
    pub fn current_term(&self) -> u64 {
        self.election.lock().expect("election lock poisoned").term
    }

    /// Adopts `term` if it is newer than anything seen — how a
    /// candidate learns from a refusal carrying a higher term, and how
    /// a follower tracks its leader.
    pub fn observe_term(&self, term: u64) {
        let mut es = self.election.lock().expect("election lock poisoned");
        if term > es.term {
            es.term = term;
        }
    }

    /// Starts a campaign: bumps to a fresh term (consuming this node's
    /// own vote for it — the self-vote) and returns `(term, ballot)`
    /// to send in [`crate::Request::Vote`] to the peers.
    pub fn prepare_campaign(&self) -> (u64, Vec<u64>) {
        let mut es = self.election.lock().expect("election lock poisoned");
        es.term += 1;
        (es.term, self.wal.vector())
    }

    /// Whether a resync round is in flight (dirty marker set); a
    /// mid-resync node holds unusable logs and must not vote.
    pub fn is_resyncing(&self) -> bool {
        self.wal.is_resyncing()
    }

    /// Wipes the node back to unattached in place — the follower-side
    /// response to its primary dying mid-resync.
    ///
    /// # Errors
    ///
    /// Storage errors; retry or reopen.
    pub fn reset_unattached(&self) -> Result<(), WalError> {
        let reset = self.wal.reset_unattached();
        if reset.is_ok() {
            for gauge in &self.durable_gauges {
                gauge.set_u64(0);
            }
        }
        reset
    }

    /// Fences `term` against the highest seen: an older term is
    /// refused (the sender is a deposed primary), a newer one is
    /// adopted. Returns the refusal reply, or `None` to proceed.
    fn fence(&self, term: u64, what: &str) -> Option<Response> {
        let mut es = self.election.lock().expect("election lock poisoned");
        if term < es.term {
            return Some(Response::Error {
                code: ErrorCode::StaleTerm,
                message: format!(
                    "{what} from term {term} refused; this replica follows term {}",
                    es.term
                ),
            });
        }
        if term > es.term {
            es.term = term;
        }
        None
    }

    /// Applies one shipped batch and builds the wire reply: a
    /// [`Response::ReplicateAck`] carrying the stream's durable
    /// sequence, or an `Error` with [`ErrorCode::StaleTerm`] /
    /// [`ErrorCode::ReplicationGap`] / [`ErrorCode::Io`].
    pub(crate) fn apply(&self, term: u64, shard: u32, seq: u64, records: &[Vec<u8>]) -> Response {
        if let Some(refusal) = self.fence(term, "ship") {
            return refusal;
        }
        let stream = wire_stream(shard);
        // Sampled before the apply: afterwards a fresh batch and a
        // redelivery of the newest batch both show `durable == seq`.
        let fresh = seq > self.wal.durable_seq(stream);
        match self.wal.apply(stream, seq, records) {
            Ok(durable) => {
                if fresh {
                    self.applied_batches.inc();
                    self.applied_records.add(records.len() as u64);
                    self.obs
                        .recorder
                        .record(EventKind::ReplicaApplied, u64::from(shard), seq);
                } else {
                    self.duplicate_batches.inc();
                }
                let slot = match stream {
                    ReplStream::Shard(s) => s as usize,
                    ReplStream::Coordinator => self.wal.n_shards(),
                };
                self.durable_gauges[slot].set_u64(durable);
                Response::ReplicateAck {
                    shard,
                    seq,
                    durable,
                }
            }
            Err(e @ ReplicaApplyError::Gap { .. }) => Response::Error {
                code: ErrorCode::ReplicationGap,
                message: e.to_string(),
            },
            Err(e) => Response::Error {
                code: ErrorCode::Io,
                message: e.to_string(),
            },
        }
    }

    /// Answers a heartbeat: adopts a newer sender term and reveals this
    /// node's term, role, lineage, and durable seq vector.
    pub(crate) fn pong(&self, sender_term: u64) -> Response {
        let mut es = self.election.lock().expect("election lock poisoned");
        if sender_term > es.term {
            es.term = sender_term;
        }
        Response::Pong {
            term: es.term,
            is_primary: false,
            lineage: self.wal.lineage(),
            vector: self.wal.vector(),
        }
    }

    /// Answers a vote request. Granted iff `term` is newer than
    /// anything seen (each term holds at most one vote — adopting the
    /// term consumes it), this node is not mid-resync, and the
    /// candidate's ballot is at least this node's own (no voter elects
    /// a leader that would lose its acked grants). The term is adopted
    /// even on a ballot refusal, so a refused candidate retries above
    /// it and the better-placed node campaigns in between.
    pub(crate) fn vote(&self, term: u64, candidate: u64, ballot: &[u64]) -> Response {
        let mut es = self.election.lock().expect("election lock poisoned");
        let granted = term > es.term
            && !self.wal.is_resyncing()
            && ballot_wins(ballot, candidate, &self.wal.vector(), self.node_id);
        if term > es.term {
            es.term = term;
        }
        Response::VoteReply {
            term: es.term,
            granted,
        }
    }

    /// Installs one stream's snapshot (catch-up). The first install of
    /// a round durably marks the node dirty — killed mid-resync it
    /// reopens unattached instead of trusting half-installed logs.
    pub(crate) fn install(
        &self,
        term: u64,
        shard: u32,
        base_seq: u64,
        snapshot: &[u8],
    ) -> Response {
        if let Some(refusal) = self.fence(term, "resync install") {
            return refusal;
        }
        let stream = wire_stream(shard);
        match self.wal.install_stream(stream, base_seq, snapshot) {
            Ok(()) => {
                let slot = match stream {
                    ReplStream::Shard(s) => s as usize,
                    ReplStream::Coordinator => self.wal.n_shards(),
                };
                self.durable_gauges[slot].set_u64(base_seq);
                Response::ResyncAck {
                    stream: shard,
                    durable: base_seq,
                }
            }
            Err(e) => Response::Error {
                code: ErrorCode::Io,
                message: e.to_string(),
            },
        }
    }

    /// Commits a resync round: persists the installing primary's
    /// lineage and clears the dirty marker. The ack echoes the lineage
    /// under the coordinator stream id.
    pub(crate) fn commit_resync(&self, term: u64, lineage: u64) -> Response {
        if let Some(refusal) = self.fence(term, "resync commit") {
            return refusal;
        }
        match self.wal.commit_resync(lineage) {
            Ok(()) => Response::ResyncAck {
                stream: REPL_COORD_STREAM,
                durable: lineage,
            },
            Err(e) => Response::Error {
                code: ErrorCode::Io,
                message: e.to_string(),
            },
        }
    }
}

/// How a [`Replicator`] link (re)opens its connection — the seam that
/// lets tests inject loopback or failing connections.
pub type Connector = Box<dyn Fn() -> Result<NetClient, NetError> + Send + Sync>;

/// Link health. `Up` receives ships; `Suspect` and `Down` are skipped
/// and redialed by [`Replicator::tend`] — `Suspect` is a fresh failure
/// (first redial comes quickly), `Down` is a link that also failed its
/// redials (backoff has grown).
const LINK_UP: u8 = 0;
const LINK_SUSPECT: u8 = 1;
const LINK_DOWN: u8 = 2;

/// First redial delay after a failure; doubles per consecutive
/// failure up to [`REDIAL_CAP_NANOS`].
const REDIAL_BASE_NANOS: u64 = 50_000_000;
/// Redial backoff ceiling (5s).
const REDIAL_CAP_NANOS: u64 = 5_000_000_000;
/// Consecutive redial failures that demote `Suspect` to `Down`.
const SUSPECT_FAILS_TO_DOWN: u32 = 3;

/// One replica link and its failure-detector state.
struct Link {
    addr: SocketAddr,
    connector: Connector,
    client: Mutex<Option<NetClient>>,
    status: AtomicU8,
    /// Consecutive failed redial/probe rounds (backoff exponent).
    fails: AtomicU32,
    /// Clock-nanos before which [`Replicator::tend`] leaves this link
    /// alone.
    next_redial_nanos: AtomicU64,
    /// Highest durable seq this replica has acked, per stream (shard
    /// streams first, coordinator last) — the subtrahend of the
    /// `dpack_repl_lag` gauges and of [`Replicator::peer_status`].
    /// Sized by [`Replicator::over_links`].
    acked: Vec<AtomicU64>,
    /// Snapshot resyncs pushed down this link.
    resyncs: AtomicU64,
}

impl Link {
    fn status(&self) -> u8 {
        self.status.load(Ordering::Acquire)
    }
}

/// What one tend round concluded about a link.
enum Probe {
    /// The link is caught up (fast path or after a resync) — mark Up.
    Caught,
    /// Not reachable / not caught up yet — back off and retry.
    NotYet,
    /// The peer answered from a higher term: this primary is deposed.
    Deposed,
}

/// The primary's [`ReplicationSink`] over [`NetClient`] links.
///
/// Per-stream sequence numbers are assigned here (the ledger serializes
/// ships per stream, so a fetch-add suffices). Attach it to a **fresh**
/// ledger ([`dpack_service::ShardedLedger::set_replication`]) or — for
/// a promoted primary resuming an existing stream — build it with
/// [`Replicator::resume`] and attach with
/// [`dpack_service::ShardedLedger::set_replication_resumed`].
pub struct Replicator {
    links: Vec<Link>,
    quorum: usize,
    n_shards: usize,
    /// Next-1 sequence per stream; shard streams first, coordinator
    /// last.
    seqs: Vec<AtomicU64>,
    /// This primary's election term, carried in every ship.
    term: AtomicU64,
    /// The lineage stamped on resynced replicas (the primary's own
    /// election term; 0 for a legacy/bootstrap deployment).
    lineage: AtomicU64,
    /// Set when the wire proved a newer term exists (a
    /// [`ErrorCode::StaleTerm`] refusal or a higher-term pong): this
    /// node lost the leadership and must stop acking grants.
    deposed: AtomicBool,
    /// Read deadline applied to every link connection; an ack that
    /// takes longer marks the replica `Suspect` instead of wedging the
    /// commit path.
    ship_timeout: Option<Duration>,
    clock: Arc<dyn Clock>,
    recorder: FlightRecorder,
    /// Where traced ships record their `ReplShip`/`QuorumWait` spans.
    spans: SpanRing,
    /// Per-stream replication lag (primary seq − the slowest up
    /// replica's acked seq); shard streams first, coordinator last.
    lag_gauges: Vec<Gauge>,
    shipped_batches: Counter,
    shipped_records: Counter,
    acked_batches: Counter,
    ship_failures: Counter,
    ship_timeout_total: Counter,
    redials_total: Counter,
    resyncs_total: Counter,
    live_replicas: Gauge,
    quorum_wait_nanos: Histogram,
}

impl fmt::Debug for Replicator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Replicator")
            .field(
                "replicas",
                &self.links.iter().map(|l| l.addr).collect::<Vec<_>>(),
            )
            .field("quorum", &self.quorum)
            .field("live", &self.live())
            .field("term", &self.term.load(Ordering::Acquire))
            .finish_non_exhaustive()
    }
}

impl Replicator {
    /// Connects one link per replica address. `quorum` is how many
    /// durability acks a ship needs to succeed; `n_shards` must match
    /// the ledger this sink will be attached to (and the `shards` the
    /// replicas' logs were opened with). Links start `Up`; without a
    /// driver calling [`Replicator::tend`], a failed link stays down
    /// (the original operator-driven deployment model).
    ///
    /// # Errors
    ///
    /// The first connection failure — replication starts with every
    /// replica reachable or not at all.
    ///
    /// # Panics
    ///
    /// Panics if `quorum` is 0 or exceeds the replica count, or if
    /// `n_shards` is 0.
    pub fn connect(
        addrs: &[SocketAddr],
        quorum: usize,
        n_shards: usize,
        obs: &Obs,
    ) -> Result<Self, NetError> {
        let links = addrs
            .iter()
            .map(|&addr| {
                Ok(Link {
                    addr,
                    connector: Box::new(move || NetClient::connect(addr)),
                    client: Mutex::new(Some(NetClient::connect(addr)?)),
                    status: AtomicU8::new(LINK_UP),
                    fails: AtomicU32::new(0),
                    next_redial_nanos: AtomicU64::new(0),
                    acked: Vec::new(),
                    resyncs: AtomicU64::new(0),
                })
            })
            .collect::<Result<Vec<_>, NetError>>()?;
        Ok(Self::over_links(links, quorum, n_shards, 0, &[], obs))
    }

    /// Builds a replicator over pre-connected clients, one per replica
    /// — the loopback/test path ([`crate::LoopbackTransport::with_core`]
    /// wired to [`crate::ServiceCore::replica`] cores). Links start
    /// `Up` and cannot be redialed (the connector always fails), so a
    /// failed link stays down.
    ///
    /// # Panics
    ///
    /// Same contract as [`Replicator::connect`].
    pub fn over_clients(
        clients: Vec<NetClient>,
        quorum: usize,
        n_shards: usize,
        obs: &Obs,
    ) -> Self {
        let unaddressed: SocketAddr = ([0, 0, 0, 0], 0).into();
        let links = clients
            .into_iter()
            .map(|c| Link {
                addr: unaddressed,
                connector: Box::new(|| Err(NetError::Closed)),
                client: Mutex::new(Some(c)),
                status: AtomicU8::new(LINK_UP),
                fails: AtomicU32::new(0),
                next_redial_nanos: AtomicU64::new(0),
                acked: Vec::new(),
                resyncs: AtomicU64::new(0),
            })
            .collect();
        Self::over_links(links, quorum, n_shards, 0, &[], obs)
    }

    /// Builds a self-healing replicator over connectors. Every link
    /// starts `Down` with an immediate redial due — the first
    /// [`Replicator::tend`] dials, probes, and (if needed) resyncs
    /// each replica before it counts toward quorum.
    ///
    /// # Panics
    ///
    /// Same contract as [`Replicator::connect`].
    pub fn with_connectors(
        connectors: Vec<(SocketAddr, Connector)>,
        quorum: usize,
        n_shards: usize,
        obs: &Obs,
    ) -> Self {
        Self::resume(connectors, quorum, n_shards, &[], 0, obs)
    }

    /// [`Replicator::with_connectors`] for a **promoted** primary:
    /// resumes the per-stream sequence counters from `seqs` (the seq
    /// vector the promoting node folded its logs at; shard streams
    /// first, coordinator last — pass `&[]` for a fresh stream) and
    /// stamps `term` as this primary's election term and lineage.
    /// Attach with
    /// [`dpack_service::ShardedLedger::set_replication_resumed`].
    ///
    /// # Panics
    ///
    /// Same contract as [`Replicator::connect`], plus `seqs` (when
    /// non-empty) must hold exactly `n_shards + 1` entries.
    pub fn resume(
        connectors: Vec<(SocketAddr, Connector)>,
        quorum: usize,
        n_shards: usize,
        seqs: &[u64],
        term: u64,
        obs: &Obs,
    ) -> Self {
        let links = connectors
            .into_iter()
            .map(|(addr, connector)| Link {
                addr,
                connector,
                client: Mutex::new(None),
                status: AtomicU8::new(LINK_DOWN),
                fails: AtomicU32::new(0),
                next_redial_nanos: AtomicU64::new(0),
                acked: Vec::new(),
                resyncs: AtomicU64::new(0),
            })
            .collect();
        Self::over_links(links, quorum, n_shards, term, seqs, obs)
    }

    fn over_links(
        mut links: Vec<Link>,
        quorum: usize,
        n_shards: usize,
        term: u64,
        seqs: &[u64],
        obs: &Obs,
    ) -> Self {
        assert!(
            quorum >= 1 && quorum <= links.len(),
            "quorum must be within 1..=replica count"
        );
        assert!(n_shards >= 1, "need at least one shard stream");
        assert!(
            seqs.is_empty() || seqs.len() == n_shards + 1,
            "a resumed seq vector must cover every shard stream plus the coordinator"
        );
        for link in &mut links {
            link.acked = (0..=n_shards).map(|_| AtomicU64::new(0)).collect();
        }
        let lag_gauges = (0..n_shards)
            .map(|s| {
                obs.registry
                    .gauge("dpack_repl_lag", &format!("stream=\"shard-{s}\""))
            })
            .chain(std::iter::once(
                obs.registry.gauge("dpack_repl_lag", "stream=\"coord\""),
            ))
            .collect();
        let this = Self {
            quorum,
            n_shards,
            seqs: (0..=n_shards)
                .map(|s| AtomicU64::new(seqs.get(s).copied().unwrap_or(0)))
                .collect(),
            term: AtomicU64::new(term),
            lineage: AtomicU64::new(term),
            deposed: AtomicBool::new(false),
            ship_timeout: None,
            clock: Arc::clone(obs.clock()),
            recorder: obs.recorder.clone(),
            spans: obs.spans.clone(),
            lag_gauges,
            shipped_batches: obs.registry.counter("dpack_repl_shipped_batches_total", ""),
            shipped_records: obs.registry.counter("dpack_repl_shipped_records_total", ""),
            acked_batches: obs.registry.counter("dpack_repl_acked_batches_total", ""),
            ship_failures: obs.registry.counter("dpack_repl_ship_failures_total", ""),
            ship_timeout_total: obs.registry.counter("dpack_repl_ship_timeout_total", ""),
            redials_total: obs.registry.counter("dpack_repl_redials_total", ""),
            resyncs_total: obs.registry.counter("dpack_repl_resyncs_total", ""),
            live_replicas: obs.registry.gauge("dpack_repl_live_replicas", ""),
            quorum_wait_nanos: obs.registry.histogram("dpack_repl_quorum_wait_nanos", ""),
            links,
        };
        this.live_replicas.set_u64(this.live() as u64);
        this
    }

    /// Bounds how long a ship waits for any single replica's ack; an
    /// expired bound marks that replica `Suspect` (counted in
    /// `dpack_repl_ship_timeout_total`) instead of wedging the commit
    /// path behind a hung peer. Applies to current and future
    /// connections.
    #[must_use]
    pub fn with_ship_timeout(mut self, timeout: Duration) -> Self {
        self.ship_timeout = Some(timeout);
        for link in &self.links {
            let mut client = link.client.lock().expect("replica link lock poisoned");
            if let Some(c) = client.as_mut() {
                if c.set_read_timeout(Some(timeout)).is_err() {
                    *client = None;
                    link.status.store(LINK_SUSPECT, Ordering::Release);
                }
            }
        }
        self
    }

    /// Replicas whose links are up (receiving ships and counted toward
    /// quorum).
    pub fn live(&self) -> usize {
        self.links.iter().filter(|l| l.status() == LINK_UP).count()
    }

    /// The configured quorum.
    pub fn quorum(&self) -> usize {
        self.quorum
    }

    /// This primary's election term (0 for legacy deployments).
    pub fn term(&self) -> u64 {
        self.term.load(Ordering::Acquire)
    }

    /// The lineage stamped on resynced replicas.
    pub fn lineage(&self) -> u64 {
        self.lineage.load(Ordering::Acquire)
    }

    /// Whether the wire proved a newer term exists. A deposed
    /// replicator refuses every further ship; the node driving it must
    /// demote to a replica role.
    pub fn is_deposed(&self) -> bool {
        self.deposed.load(Ordering::Acquire)
    }

    /// The current per-stream sequence vector (shard streams first,
    /// coordinator last) — the primary's ballot.
    pub fn vector(&self) -> Vec<u64> {
        self.seqs
            .iter()
            .map(|s| s.load(Ordering::Acquire))
            .collect()
    }

    /// Refreshes the `dpack_repl_lag` gauges: per stream, the
    /// primary's shipped seq minus the slowest **up** replica's acked
    /// seq. With no up replica everything shipped is unacked, so the
    /// lag is the seq itself.
    fn refresh_lag(&self) {
        for (slot, gauge) in self.lag_gauges.iter().enumerate() {
            let seq = self.seqs[slot].load(Ordering::Acquire);
            let slowest = self
                .links
                .iter()
                .filter(|l| l.status() == LINK_UP)
                .map(|l| l.acked[slot].load(Ordering::Acquire))
                .min()
                .unwrap_or(0);
            gauge.set_u64(seq.saturating_sub(slowest));
        }
    }

    /// A point-in-time view of every replica link for cluster
    /// introspection: address, Up/Suspect/Down state, per-stream lag
    /// against this primary's seq vector, remaining redial backoff,
    /// and resyncs pushed. Peer ids and terms are the cluster
    /// driver's knowledge, not the replicator's — they are left 0 for
    /// the caller to fill.
    pub fn peer_status(&self) -> Vec<WirePeer> {
        let vector = self.vector();
        let now = self.clock.now_nanos();
        self.links
            .iter()
            .map(|link| WirePeer {
                id: 0,
                addr: link.addr.to_string(),
                state: link.status(),
                term: self.term(),
                is_primary: false,
                lag: vector
                    .iter()
                    .zip(&link.acked)
                    .map(|(seq, acked)| seq.saturating_sub(acked.load(Ordering::Acquire)))
                    .collect(),
                backoff_nanos: link
                    .next_redial_nanos
                    .load(Ordering::Acquire)
                    .saturating_sub(now),
                resyncs: link.resyncs.load(Ordering::Acquire),
            })
            .collect()
    }

    /// Marks a link failed right now: out of the ship path, first
    /// redial due after the base backoff.
    fn suspect(&self, link: &Link) {
        link.status.store(LINK_SUSPECT, Ordering::Release);
        link.fails.store(0, Ordering::Release);
        link.next_redial_nanos.store(
            self.clock.now_nanos().saturating_add(REDIAL_BASE_NANOS),
            Ordering::Release,
        );
    }

    /// Records a failed redial/probe round: doubles the backoff and
    /// demotes a repeatedly-failing `Suspect` to `Down`.
    fn backoff(&self, link: &Link, now_nanos: u64) {
        let fails = link.fails.fetch_add(1, Ordering::AcqRel) + 1;
        if fails >= SUSPECT_FAILS_TO_DOWN {
            link.status.store(LINK_DOWN, Ordering::Release);
        }
        let delay = REDIAL_BASE_NANOS
            .checked_shl(fails.min(16).saturating_sub(1))
            .unwrap_or(REDIAL_CAP_NANOS)
            .min(REDIAL_CAP_NANOS);
        link.next_redial_nanos
            .store(now_nanos.saturating_add(delay), Ordering::Release);
    }

    fn mark_up(&self, link: &Link) {
        link.fails.store(0, Ordering::Release);
        link.status.store(LINK_UP, Ordering::Release);
    }

    /// One failure-detector round: redials every non-`Up` link whose
    /// backoff expired, probes it with a heartbeat, and rejoins it —
    /// directly when its durable state still matches (same lineage and
    /// seq vector), via a quiesced snapshot resync otherwise (which
    /// needs `service`; without one, out-of-date replicas stay down).
    /// Call it off the commit path (a cluster step thread, a test)
    /// with the current clock reading.
    ///
    /// Returns `false` once the wire proves this primary deposed —
    /// stop tending and demote.
    pub fn tend(&self, now_nanos: u64, service: Option<&BudgetService>) -> bool {
        if self.is_deposed() {
            return false;
        }
        for (i, link) in self.links.iter().enumerate() {
            if link.status() == LINK_UP {
                continue;
            }
            if now_nanos < link.next_redial_nanos.load(Ordering::Acquire) {
                continue;
            }
            if !self.redial(link) {
                self.backoff(link, now_nanos);
                continue;
            }
            // Probe (and resync) under the cycle lock: with shipping
            // quiesced the seq vector cannot move between the capture
            // and the rejoin, so a rejoined replica has missed nothing.
            let probe = match service {
                Some(svc) => svc.quiesced(|| self.probe_and_sync(i, link, Some(svc))),
                None => self.probe_and_sync(i, link, None),
            };
            match probe {
                Probe::Caught => self.mark_up(link),
                Probe::NotYet => self.backoff(link, now_nanos),
                Probe::Deposed => {
                    self.deposed.store(true, Ordering::Release);
                    self.live_replicas.set_u64(self.live() as u64);
                    return false;
                }
            }
        }
        self.live_replicas.set_u64(self.live() as u64);
        self.refresh_lag();
        true
    }

    /// Ensures the link holds a connection, dialing through its
    /// connector if not.
    fn redial(&self, link: &Link) -> bool {
        let mut client = link.client.lock().expect("replica link lock poisoned");
        if client.is_some() {
            return true;
        }
        match (link.connector)() {
            Ok(mut c) => {
                if c.set_read_timeout(self.ship_timeout).is_err() {
                    return false;
                }
                self.redials_total.inc();
                *client = Some(c);
                true
            }
            Err(_) => false,
        }
    }

    /// Heartbeats a redialed link and, when it lagged, pushes a full
    /// per-stream snapshot resync. Runs under the service's cycle lock
    /// when a service is present.
    fn probe_and_sync(&self, index: usize, link: &Link, service: Option<&BudgetService>) -> Probe {
        let term = self.term();
        let lineage = self.lineage();
        let vector = self.vector();
        let mut guard = link.client.lock().expect("replica link lock poisoned");
        let pong_res = match guard.as_mut() {
            Some(client) => client.ping(term, vector.clone()),
            None => return Probe::NotYet,
        };
        let pong = match pong_res {
            Ok(p) => p,
            Err(NetError::Remote {
                code: ErrorCode::StaleTerm,
                ..
            }) => return Probe::Deposed,
            Err(_) => {
                *guard = None;
                return Probe::NotYet;
            }
        };
        if pong.term > term {
            return Probe::Deposed;
        }
        if pong.lineage == lineage && pong.vector == vector {
            // Fast path: the replica's durable state is exactly ours —
            // a transient disconnect, nothing was missed.
            for (slot, seq) in vector.iter().enumerate() {
                link.acked[slot].store(*seq, Ordering::Release);
            }
            return Probe::Caught;
        }
        let Some(service) = service else {
            return Probe::NotYet;
        };
        // Full resync: per-stream snapshot at the current (quiesced)
        // seq vector — the same state+suffix law compaction relies on.
        let payloads = service.ledger().shard_snapshot_payloads();
        debug_assert_eq!(payloads.len(), self.n_shards);
        let pushed = match guard.as_mut() {
            Some(client) => {
                let mut push = || -> Result<(), NetError> {
                    for (s, payload) in payloads.iter().enumerate() {
                        client.resync_stream(term, s as u32, vector[s], payload.clone())?;
                    }
                    // The shard snapshots carry the whole ledger
                    // state; the coordinator stream restarts empty
                    // (its records only matter for promotion-time
                    // dedup, and the base seq keeps it aligned).
                    client.resync_stream(
                        term,
                        REPL_COORD_STREAM,
                        vector[self.n_shards],
                        Vec::new(),
                    )?;
                    client.resync_commit(term, lineage)
                };
                push()
            }
            None => return Probe::NotYet,
        };
        match pushed {
            Ok(()) => {
                self.resyncs_total.inc();
                link.resyncs.fetch_add(1, Ordering::AcqRel);
                for (slot, seq) in vector.iter().enumerate() {
                    link.acked[slot].store(*seq, Ordering::Release);
                }
                self.recorder
                    .record(EventKind::ReplicaResynced, index as u64, lineage);
                Probe::Caught
            }
            Err(NetError::Remote {
                code: ErrorCode::StaleTerm,
                ..
            }) => Probe::Deposed,
            Err(_) => {
                *guard = None;
                Probe::NotYet
            }
        }
    }
}

impl ReplicationSink for Replicator {
    fn ship(&self, stream: ReplStream, records: &[&[u8]]) -> Result<(), ReplShipError> {
        let (shard_wire, slot) = match stream {
            ReplStream::Shard(s) => (s, s as usize),
            ReplStream::Coordinator => (REPL_COORD_STREAM, self.n_shards),
        };
        debug_assert!(slot < self.seqs.len(), "stream outside the attached ledger");
        if self.is_deposed() {
            self.ship_failures.inc();
            return Err(ReplShipError::QuorumLost {
                acked: 0,
                quorum: self.quorum,
            });
        }
        let term = self.term();
        let seq = self.seqs[slot].fetch_add(1, Ordering::Relaxed) + 1;
        let started = self.clock.now_nanos();
        self.shipped_batches.inc();
        self.shipped_records.add(records.len() as u64);
        // The traces pinned by the committing cycle, if any: their
        // bare ids ride the wire so each replica can derive its
        // append span, and the ship/quorum spans are recorded here.
        let mut traced: Vec<dpack_obs::TraceContext> = Vec::new();
        with_active_traces(|ctxs| traced.extend_from_slice(ctxs));
        let trace_ids: Vec<u64> = traced.iter().map(|c| c.trace).collect();

        // Phase 1: pipeline the batch to every up replica; a send
        // failure marks the link Suspect on the spot.
        let mut handles = Vec::with_capacity(self.links.len());
        for link in &self.links {
            if link.status() != LINK_UP {
                handles.push(None);
                continue;
            }
            let mut client = link.client.lock().expect("replica link lock poisoned");
            let handle = client.as_mut().and_then(|c| {
                c.replicate_nowait(
                    term,
                    shard_wire,
                    seq,
                    records.iter().map(|r| r.to_vec()).collect(),
                    trace_ids.clone(),
                )
                .ok()
            });
            if handle.is_none() {
                *client = None;
                self.suspect(link);
            }
            handles.push(handle);
        }

        // Phase 2: collect durability acks. An errored wait, a
        // mismatched ack, or a `durable` short of `seq` all mean the
        // replica can no longer be trusted to hold the acked prefix —
        // Suspect, pending a redial and (if needed) resync. A
        // stale-term refusal means *we* are the untrustworthy side.
        let mut acked = 0usize;
        // On a traced ship, the ack that completes the quorum is the
        // one the commit was waiting for: (clock reading, link
        // ordinal), attributing the quorum wait to its slowest
        // contributor. Untraced ships never take the extra reads.
        let mut quorum_closed: Option<(u64, usize)> = None;
        for (ordinal, (link, handle)) in self.links.iter().zip(handles).enumerate() {
            let Some(handle) = handle else { continue };
            let mut client = link.client.lock().expect("replica link lock poisoned");
            let outcome = client.as_mut().map(|c| c.wait_replicate_ack(handle));
            match outcome {
                Some(Ok((s, q, durable))) if s == shard_wire && q == seq && durable >= seq => {
                    acked += 1;
                    link.acked[slot].fetch_max(durable, Ordering::AcqRel);
                    if !traced.is_empty() && acked == self.quorum {
                        quorum_closed = Some((self.clock.now_nanos(), ordinal));
                    }
                }
                Some(Err(NetError::Timeout)) => {
                    self.ship_timeout_total.inc();
                    *client = None;
                    self.suspect(link);
                }
                Some(Err(NetError::Remote {
                    code: ErrorCode::StaleTerm,
                    ..
                })) => {
                    self.deposed.store(true, Ordering::Release);
                    *client = None;
                    self.suspect(link);
                }
                _ => {
                    *client = None;
                    self.suspect(link);
                }
            }
        }

        self.live_replicas.set_u64(self.live() as u64);
        let ended = self.clock.now_nanos();
        self.quorum_wait_nanos.record(ended.saturating_sub(started));
        self.refresh_lag();
        let stream_salt = u64::from(shard_wire);
        for ctx in &traced {
            let ship_span = span_id(ctx.trace, SpanKind::ReplShip, stream_salt);
            self.spans.record(
                ctx.trace,
                ship_span,
                span_id(ctx.trace, SpanKind::Cycle, 0),
                SpanKind::ReplShip,
                started,
                ended,
                stream_salt,
            );
            if let Some((closed_at, ordinal)) = quorum_closed {
                self.spans.record(
                    ctx.trace,
                    span_id(ctx.trace, SpanKind::QuorumWait, stream_salt),
                    ship_span,
                    SpanKind::QuorumWait,
                    started,
                    closed_at,
                    ordinal as u64,
                );
            }
        }
        if acked >= self.quorum && !self.is_deposed() {
            self.acked_batches.inc();
            Ok(())
        } else {
            self.ship_failures.inc();
            Err(ReplShipError::QuorumLost {
                acked,
                quorum: self.quorum,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::LoopbackTransport;
    use crate::ServiceCore;
    use dpack_service::wal::SimStorage;

    fn loopback_replica(sim: &SimStorage, shards: usize) -> (Arc<ReplicaNode>, NetClient) {
        let obs = Obs::off();
        let node = Arc::new(ReplicaNode::open(sim, shards, 1 << 16, obs).unwrap());
        let client = NetClient::new(Box::new(LoopbackTransport::with_core(
            ServiceCore::replica(Arc::clone(&node)),
        )));
        (node, client)
    }

    #[test]
    fn a_quorum_of_loopback_replicas_acks_a_ship() {
        let sim_a = SimStorage::new();
        let sim_b = SimStorage::new();
        let (node_a, client_a) = loopback_replica(&sim_a, 2);
        let (node_b, client_b) = loopback_replica(&sim_b, 2);
        let obs = Obs::off();
        let repl = Replicator::over_clients(vec![client_a, client_b], 2, 2, &obs);
        assert_eq!(repl.live(), 2);

        let rec: &[&[u8]] = &[b"one", b"two"];
        repl.ship(ReplStream::Shard(1), rec).unwrap();
        repl.ship(ReplStream::Shard(1), &[b"three"]).unwrap();
        repl.ship(ReplStream::Coordinator, &[b"c1"]).unwrap();
        for node in [&node_a, &node_b] {
            assert_eq!(node.wal().durable_seq(ReplStream::Shard(1)), 2);
            assert_eq!(node.wal().durable_seq(ReplStream::Coordinator), 1);
            assert_eq!(node.wal().durable_seq(ReplStream::Shard(0)), 0);
        }
    }

    #[test]
    fn a_dead_replica_fails_quorum_and_stays_dead_without_tending() {
        let sim_a = SimStorage::new();
        let sim_b = SimStorage::new();
        let (node_a, client_a) = loopback_replica(&sim_a, 1);
        let (_node_b, client_b) = loopback_replica(&sim_b, 1);
        // Break replica B's log so its applies fail.
        sim_b.set_append_errors(true);
        let obs = Obs::off();
        let repl = Replicator::over_clients(vec![client_a, client_b], 2, 1, &obs);

        let err = repl.ship(ReplStream::Shard(0), &[b"r"]).unwrap_err();
        assert_eq!(
            err,
            ReplShipError::QuorumLost {
                acked: 1,
                quorum: 2
            }
        );
        assert_eq!(repl.live(), 1, "the failed replica is out of the fleet");
        // Nothing tends an over_clients replicator, so B never
        // recovers even if its storage does: quorum 2 of a 1-live
        // fleet keeps failing, and A (live) keeps applying.
        sim_b.set_append_errors(false);
        assert!(repl.ship(ReplStream::Shard(0), &[b"r2"]).is_err());
        assert_eq!(node_a.wal().durable_seq(ReplStream::Shard(0)), 2);
    }

    #[test]
    fn quorum_one_survives_a_single_replica_failure() {
        let sim_a = SimStorage::new();
        let sim_b = SimStorage::new();
        let (node_a, client_a) = loopback_replica(&sim_a, 1);
        let (node_b, client_b) = loopback_replica(&sim_b, 1);
        sim_b.set_append_errors(true);
        let obs = Obs::off();
        let repl = Replicator::over_clients(vec![client_a, client_b], 1, 1, &obs);

        repl.ship(ReplStream::Shard(0), &[b"r"]).unwrap();
        assert_eq!(repl.live(), 1);
        assert_eq!(node_a.wal().durable_seq(ReplStream::Shard(0)), 1);
        assert_eq!(node_b.wal().durable_seq(ReplStream::Shard(0)), 0);
    }

    #[test]
    fn a_primary_refuses_the_replication_stream() {
        use dp_accounting::AlphaGrid;
        use dpack_service::{BudgetService, ServiceConfig};
        let grid = AlphaGrid::new(vec![4.0, 16.0]).unwrap();
        let service = Arc::new(BudgetService::new(grid, ServiceConfig::default()));
        let mut client = NetClient::loopback(service);
        let err = client.replicate(0, 0, 1, vec![b"r".to_vec()]).unwrap_err();
        assert!(
            matches!(
                err,
                NetError::Remote {
                    code: ErrorCode::Protocol,
                    ..
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn a_replica_refuses_tenant_traffic_as_not_primary() {
        let sim = SimStorage::new();
        let (_node, mut client) = loopback_replica(&sim, 1);
        let err = client.grid().unwrap_err();
        assert!(
            matches!(
                err,
                NetError::Remote {
                    code: ErrorCode::NotPrimary,
                    ..
                }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn duplicate_and_gap_deliveries_answer_idempotently_and_with_gap_errors() {
        let sim = SimStorage::new();
        let (node, mut client) = loopback_replica(&sim, 1);
        assert_eq!(client.replicate(0, 0, 1, vec![b"a".to_vec()]).unwrap(), 1);
        assert_eq!(client.replicate(0, 0, 2, vec![b"b".to_vec()]).unwrap(), 2);
        // Duplicate: acked with the unchanged durable sequence.
        assert_eq!(client.replicate(0, 0, 1, vec![b"a".to_vec()]).unwrap(), 2);
        // Gap: refused with the dedicated code.
        let err = client.replicate(0, 0, 9, vec![b"z".to_vec()]).unwrap_err();
        assert!(
            matches!(
                err,
                NetError::Remote {
                    code: ErrorCode::ReplicationGap,
                    ..
                }
            ),
            "got {err:?}"
        );
        assert_eq!(node.wal().durable_seq(ReplStream::Shard(0)), 2);
    }

    #[test]
    fn a_stale_term_ship_is_fenced_and_newer_terms_are_adopted() {
        let sim = SimStorage::new();
        let (node, mut client) = loopback_replica(&sim, 1);
        // Term 0 (legacy) ships flow while nothing newer was seen.
        assert_eq!(client.replicate(0, 0, 1, vec![b"a".to_vec()]).unwrap(), 1);
        // A ship from term 3 is adopted...
        assert_eq!(client.replicate(3, 0, 2, vec![b"b".to_vec()]).unwrap(), 2);
        assert_eq!(node.current_term(), 3);
        // ...after which the old term's ships bounce with StaleTerm.
        let err = client.replicate(0, 0, 3, vec![b"c".to_vec()]).unwrap_err();
        assert!(
            matches!(
                err,
                NetError::Remote {
                    code: ErrorCode::StaleTerm,
                    ..
                }
            ),
            "got {err:?}"
        );
        assert_eq!(node.wal().durable_seq(ReplStream::Shard(0)), 2);
    }

    #[test]
    fn votes_grant_once_per_term_and_respect_the_ballot_order() {
        let sim = SimStorage::new();
        let (_node, mut client) = loopback_replica(&sim, 1);
        // An equal ballot (fresh node, all-zero vector) is granted.
        let (term, granted) = client.request_vote(1, 0, vec![0, 0]).unwrap();
        assert_eq!((term, granted), (1, true));
        // The same term cannot be granted twice, even to the same id.
        let (_, again) = client.request_vote(1, 0, vec![0, 0]).unwrap();
        assert!(!again);
        // Ship a record so the voter's own ballot becomes [1, 0].
        client.replicate(2, 0, 1, vec![b"r".to_vec()]).unwrap();
        // A candidate whose ballot would lose acked work is refused —
        // and the term is consumed anyway (the refused candidate must
        // campaign above it, letting the better-placed node go first).
        let (term, granted) = client.request_vote(3, 5, vec![0, 0]).unwrap();
        assert_eq!((term, granted), (3, false));
        // An exact ballot tie goes to the lower node id.
        let (_, granted) = client.request_vote(4, 5, vec![1, 0]).unwrap();
        assert!(!granted, "candidate id 5 loses the tie against voter id 0");
        let (_, granted) = client.request_vote(5, 0, vec![1, 0]).unwrap();
        assert!(granted, "a covering ballot from a low id wins");
    }

    #[test]
    fn resync_installs_a_snapshot_base_and_commits_a_lineage() {
        let sim = SimStorage::new();
        let (node, mut client) = loopback_replica(&sim, 1);
        // Install shard 0 at base 7 and the coordinator at base 3.
        assert_eq!(client.resync_stream(2, 0, 7, Vec::new()).unwrap(), 7);
        assert!(node.is_resyncing(), "mid-round the node is dirty");
        assert_eq!(
            client
                .resync_stream(2, REPL_COORD_STREAM, 3, Vec::new())
                .unwrap(),
            3
        );
        client.resync_commit(2, 2).unwrap();
        assert!(!node.is_resyncing());
        assert_eq!(node.wal().lineage(), 2);
        assert_eq!(node.wal().vector(), vec![7, 3]);
        // Ships resume as a suffix of the installed base.
        assert_eq!(client.replicate(2, 0, 8, vec![b"s".to_vec()]).unwrap(), 8);
        // A mid-resync node refuses to vote even for a covering ballot.
        assert_eq!(client.resync_stream(2, 0, 9, Vec::new()).unwrap(), 9);
        let (_, granted) = client.request_vote(9, 0, vec![99, 99]).unwrap();
        assert!(!granted);
    }

    #[test]
    fn a_deposed_primary_refuses_further_ships() {
        let sim = SimStorage::new();
        let (node, client) = loopback_replica(&sim, 1);
        // The replica has seen term 5 — a newer primary exists.
        node.observe_term(5);
        let obs = Obs::off();
        // A legacy (term-0) replicator shipping into that view is
        // fenced with StaleTerm, learns it is deposed, and fails every
        // later ship without touching the wire.
        let repl = Replicator::over_clients(vec![client], 1, 1, &obs);
        let err = repl.ship(ReplStream::Shard(0), &[b"r"]).unwrap_err();
        assert_eq!(
            err,
            ReplShipError::QuorumLost {
                acked: 0,
                quorum: 1
            }
        );
        assert!(repl.is_deposed());
        assert!(repl.ship(ReplStream::Shard(0), &[b"r2"]).is_err());
        assert_eq!(node.wal().durable_seq(ReplStream::Shard(0)), 0);
    }

    #[test]
    fn tend_redials_and_rejoins_a_matching_replica_on_the_fast_path() {
        let sim = SimStorage::new();
        let node = Arc::new(ReplicaNode::open(&sim, 1, 1 << 16, Obs::off()).unwrap());
        let obs = Obs::off();
        let target = Arc::clone(&node);
        let connector: Connector = Box::new(move || {
            Ok(NetClient::new(Box::new(LoopbackTransport::with_core(
                ServiceCore::replica(Arc::clone(&target)),
            ))))
        });
        let repl =
            Replicator::with_connectors(vec![(([0, 0, 0, 0], 0).into(), connector)], 1, 1, &obs);
        assert_eq!(repl.live(), 0, "connector links start Down");
        assert!(repl.tend(0, None));
        assert_eq!(
            repl.live(),
            1,
            "a fresh replica matches the fresh primary: rejoined without a resync"
        );
        repl.ship(ReplStream::Shard(0), &[b"r"]).unwrap();
        assert_eq!(node.wal().durable_seq(ReplStream::Shard(0)), 1);
    }
}
