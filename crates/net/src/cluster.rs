//! Self-healing cluster membership: failure detection, leader
//! election, and automatic promotion/demotion around the replicated
//! service.
//!
//! A [`ClusterNode`] wraps one deployment member. It owns the member's
//! durable storage, its [`ServiceCore`] (whose role — primary service
//! or replica — swaps in place, visible to every connection), and a
//! failure-detector link to each peer. Everything it does happens
//! inside an explicit [`ClusterNode::step`] call with a caller-supplied
//! clock reading, which is what makes the whole protocol — heartbeats,
//! miss counting, election timeouts, promotion — drivable from a
//! single-threaded chaos test under virtual time. Production wraps the
//! same node in a [`ClusterRunner`] thread that steps it on a
//! wall-clock interval and drives the scheduling cycles whenever the
//! node holds the primary role.
//!
//! The protocol, end to end:
//!
//! * **Failure detection** — every [`ClusterConfig::heartbeat_nanos`] a
//!   follower pings each peer with its term and durable seq vector.
//!   A reply resets the peer to `Up`; a miss increments a counter and
//!   moves the peer `Up → Suspect`, and
//!   [`ClusterConfig::miss_threshold`] misses move it to `Down`
//!   (each transition is a [`EventKind::PeerStateChanged`] event).
//! * **Leader tracking** — pongs carry `is_primary` and the peer's
//!   term; the follower believes the highest-term peer that answers as
//!   primary, and adopts any newer term it sees.
//! * **Election** — with no live leader, a follower arms an election
//!   timeout of `election_base_nanos + node_id × stagger_nanos` (the
//!   stagger makes the best-placed low-id node campaign first). When
//!   it fires, the node campaigns: a fresh term (self-vote included)
//!   and its durable seq vector as the ballot, sent to every peer.
//!   Voters grant at most one vote per term and only to candidates
//!   whose ballot covers their own — the deterministic
//!   highest-durable-wins rule that makes the winner's fold lossless.
//!   A majority promotes; anything less re-arms the timeout.
//! * **Promotion** — the winner durably dirty-marks its logs (a later
//!   reopen must not mistake them for a faithful replica stream),
//!   recovers a [`BudgetService`] from them, and resumes replication
//!   at its folded seq vector under the won term
//!   ([`Replicator::resume`]); the term fences any still-running old
//!   primary out of the stream ([`crate::ErrorCode::StaleTerm`]).
//!   Replicas rejoin through [`Replicator::tend`]'s redial + resync
//!   path before they count toward the write quorum again.
//! * **Demotion** — a primary whose replicator learns of a newer term
//!   wipes its logs back to unattached (its unacked suffix may not
//!   have survived the election) and swaps back to a replica role; the
//!   new primary resyncs it like any rejoining node.

use std::fmt;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dp_accounting::AlphaGrid;
use dpack_obs::{Counter, EventKind, Gauge, Obs};
use dpack_service::wal::{WalError, WalStorage};
use dpack_service::{BudgetService, DurabilityOptions, ReplicationSink, ServiceConfig};

use crate::client::NetClient;
use crate::error::NetError;
use crate::repl::{Connector, ReplicaNode, Replicator};
use crate::server::ServiceCore;
use crate::wire::{WireClusterStatus, WirePeer};

/// A cloneable connection factory to one peer — the cluster mints
/// per-purpose [`Connector`]s (failure detector, replication links)
/// from it.
pub type SharedConnector = Arc<dyn Fn() -> Result<NetClient, NetError> + Send + Sync>;

/// One peer of a [`ClusterNode`]: its deployment id, advertised
/// address, and how to open a connection to it.
#[derive(Clone)]
pub struct ClusterPeer {
    /// The peer's deployment id (its election tiebreak).
    pub id: u64,
    /// The peer's advertised address (informational; dialing goes
    /// through the connector).
    pub addr: SocketAddr,
    /// Connection factory for this peer.
    pub connector: SharedConnector,
}

impl fmt::Debug for ClusterPeer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterPeer")
            .field("id", &self.id)
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

/// Deployment parameters of one [`ClusterNode`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// This node's deployment id — unique, and the election tiebreak
    /// (lower wins exact ballot ties).
    pub node_id: u64,
    /// The service the winner recovers: alpha grid…
    pub grid: AlphaGrid,
    /// …scheduler/ledger parameters (`service.shards` is also the
    /// replica stream layout)…
    pub service: ServiceConfig,
    /// …and WAL durability options.
    pub durability: DurabilityOptions,
    /// Replica durability acks a ship needs. The primary's own append
    /// is implicit, so `1` in a 3-node deployment is a 2-of-3 write
    /// majority.
    pub quorum: usize,
    /// Votes (including the candidate's own) needed to win — a
    /// majority of the full deployment, e.g. `2` for 3 nodes.
    pub majority: usize,
    /// Failure-detector ping interval.
    pub heartbeat_nanos: u64,
    /// Consecutive misses that take a peer `Suspect → Down`.
    pub miss_threshold: u32,
    /// Base election timeout after leader loss.
    pub election_base_nanos: u64,
    /// Per-id election stagger: node `i` waits `base + i × stagger`,
    /// so candidates don't collide and low ids (ballot winners on
    /// ties) go first.
    pub election_stagger_nanos: u64,
    /// Per-replica ship-ack deadline for the promoted replicator
    /// (`None` waits indefinitely on a hung replica).
    pub ship_timeout: Option<Duration>,
}

/// Peer health as tracked by the failure detector; the numeric values
/// are what [`EventKind::PeerStateChanged`] events carry in `b`.
const PEER_UP: u8 = 0;
const PEER_SUSPECT: u8 = 1;
const PEER_DOWN: u8 = 2;

struct PeerLink {
    id: u64,
    addr: SocketAddr,
    connector: SharedConnector,
    client: Option<NetClient>,
    status: u8,
    misses: u32,
    /// The peer's term and role as of its last pong.
    term: u64,
    is_primary: bool,
}

/// One deployment member with a swappable role, stepped explicitly.
/// Bind its [`ClusterNode::core`] to a listener
/// ([`crate::NetServer::bind_core`]) or to loopback transports, then
/// drive [`ClusterNode::step`] — via [`ClusterRunner`] in production,
/// directly under virtual time in tests.
pub struct ClusterNode {
    config: ClusterConfig,
    core: ServiceCore,
    storage: Box<dyn WalStorage>,
    obs: Arc<Obs>,
    peers: Vec<PeerLink>,
    /// The peer id this node currently believes leads (never its own).
    leader: Option<u64>,
    /// When to campaign, armed while no live leader is known.
    election_due: Option<u64>,
    next_heartbeat_nanos: u64,
    /// Highest term seen at the end of the last step — a jump means
    /// someone else is campaigning, so back off our own timeout.
    last_seen_term: u64,
    term_gauge: Gauge,
    is_primary_gauge: Gauge,
    elections_total: Counter,
    elections_won_total: Counter,
    heartbeat_misses_total: Counter,
}

impl fmt::Debug for ClusterNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterNode")
            .field("node_id", &self.config.node_id)
            .field("is_primary", &self.core.is_primary())
            .field("leader", &self.leader)
            .finish_non_exhaustive()
    }
}

impl ClusterNode {
    /// Opens the member over its durable storage, starting as a
    /// replica. If the storage carries a `dirty` marker (the node died
    /// mid-resync, or led and was deposed) the logs are wiped back to
    /// unattached — the node rejoins through resync.
    ///
    /// # Errors
    ///
    /// Storage/log-recovery errors.
    pub fn new(
        config: ClusterConfig,
        peers: Vec<ClusterPeer>,
        storage: Box<dyn WalStorage>,
        obs: Arc<Obs>,
    ) -> Result<Self, WalError> {
        // Spans recorded anywhere on this member carry its id, so
        // multi-node span dumps merge into one causal tree.
        obs.spans.set_node(config.node_id);
        let node = ReplicaNode::open(
            storage.as_ref(),
            config.service.shards,
            config.durability.segment_bytes,
            Arc::clone(&obs),
        )?
        .with_node_id(config.node_id);
        let core = ServiceCore::replica(Arc::new(node));
        let peers = peers
            .into_iter()
            .map(|p| PeerLink {
                id: p.id,
                addr: p.addr,
                connector: p.connector,
                client: None,
                status: PEER_DOWN,
                misses: 0,
                term: 0,
                is_primary: false,
            })
            .collect();
        Ok(Self {
            term_gauge: obs.registry.gauge("dpack_cluster_term", ""),
            is_primary_gauge: obs.registry.gauge("dpack_cluster_is_primary", ""),
            elections_total: obs.registry.counter("dpack_cluster_elections_total", ""),
            elections_won_total: obs
                .registry
                .counter("dpack_cluster_elections_won_total", ""),
            heartbeat_misses_total: obs
                .registry
                .counter("dpack_cluster_heartbeat_misses_total", ""),
            config,
            core,
            storage,
            obs,
            peers,
            leader: None,
            election_due: None,
            next_heartbeat_nanos: 0,
            last_seen_term: 0,
        })
    }

    /// The request processor whose role this node manages. Clone it
    /// into transports/listeners — clones share the role, so a
    /// promotion here is visible to every connection.
    pub fn core(&self) -> &ServiceCore {
        &self.core
    }

    /// This node's observability context.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// This node's deployment id.
    pub fn node_id(&self) -> u64 {
        self.config.node_id
    }

    /// Whether this node currently holds the primary role.
    pub fn is_primary(&self) -> bool {
        self.core.is_primary()
    }

    /// The peer id this node currently believes leads (`None` while
    /// unknown, or while this node leads itself).
    pub fn leader(&self) -> Option<u64> {
        self.leader
    }

    /// The highest election term this node has seen (its own term
    /// while primary).
    pub fn current_term(&self) -> u64 {
        if let Some(repl) = self.core.replicator() {
            return repl.term();
        }
        self.core
            .replica_node()
            .map_or(0, |node| node.current_term())
    }

    /// One protocol step at clock reading `now_nanos`: heartbeats,
    /// miss counting, election timeouts, campaign/promote as a
    /// follower; replica tending and deposition checks as a primary.
    pub fn step(&mut self, now_nanos: u64) {
        if self.core.is_primary() {
            self.step_primary(now_nanos);
        } else {
            self.step_replica(now_nanos);
        }
        self.term_gauge.set_u64(self.current_term());
        self.is_primary_gauge
            .set_u64(u64::from(self.core.is_primary()));
        self.publish_view();
    }

    /// Pushes what only the cluster driver knows — node ids, peer
    /// addresses and failure-detector states, the believed leader —
    /// into the core, where [`crate::Request::ClusterStatus`] overlays
    /// the live role-owned fields (term, seq vector, per-stream lag)
    /// at answer time.
    fn publish_view(&self) {
        let is_primary = self.core.is_primary();
        let peers = self
            .peers
            .iter()
            .map(|p| WirePeer {
                id: p.id,
                addr: p.addr.to_string(),
                state: p.status,
                term: p.term,
                is_primary: p.is_primary,
                lag: Vec::new(),
                backoff_nanos: 0,
                resyncs: 0,
            })
            .collect();
        self.core.set_cluster_view(WireClusterStatus {
            node_id: self.config.node_id,
            is_primary,
            term: self.current_term(),
            leader: if is_primary {
                self.config.node_id
            } else {
                self.leader.unwrap_or(0)
            },
            vector: Vec::new(),
            peers,
        });
    }

    fn step_primary(&mut self, now_nanos: u64) {
        let Some(repl) = self.core.replicator() else {
            return;
        };
        let service = self
            .core
            .service()
            .expect("a primary role always holds a service");
        if !repl.tend(now_nanos, Some(service.as_ref())) {
            // The wire proved a newer term: step down.
            self.demote(repl.term());
        }
    }

    /// Swaps back to a replica role after deposition. The old logs may
    /// hold an unacked suffix the new primary never saw, so they are
    /// wiped to unattached; the new primary resyncs this node like any
    /// rejoiner.
    fn demote(&mut self, deposed_term: u64) {
        let node = match ReplicaNode::open(
            self.storage.as_ref(),
            self.config.service.shards,
            self.config.durability.segment_bytes,
            Arc::clone(&self.obs),
        ) {
            Ok(n) => n.with_node_id(self.config.node_id),
            // Leave the deposed primary in place: it refuses all work
            // (deposed replicator, stale term) and the next step
            // retries the demotion.
            Err(_) => return,
        };
        if node.reset_unattached().is_err() {
            return;
        }
        node.observe_term(deposed_term);
        self.core.demote(Arc::new(node));
        self.leader = None;
        self.election_due = None;
        self.last_seen_term = deposed_term;
    }

    fn step_replica(&mut self, now_nanos: u64) {
        let Some(node) = self.core.replica_node() else {
            return;
        };
        if now_nanos >= self.next_heartbeat_nanos {
            self.next_heartbeat_nanos = now_nanos.saturating_add(self.config.heartbeat_nanos);
            self.heartbeat_round(&node);
        }
        // Believe the highest-term peer that answers as primary.
        self.leader = self
            .peers
            .iter()
            .filter(|p| p.status == PEER_UP && p.is_primary)
            .max_by_key(|p| p.term)
            .map(|p| p.id);
        if self.leader.is_some() {
            self.election_due = None;
            return;
        }
        // A term jump without a leader means another candidate is
        // already campaigning — give it a full timeout before we do.
        let term = node.current_term();
        if term > self.last_seen_term {
            self.last_seen_term = term;
            if self.election_due.is_some() {
                self.election_due = Some(now_nanos.saturating_add(self.election_delay()));
            }
        }
        match self.election_due {
            None => {
                self.election_due = Some(now_nanos.saturating_add(self.election_delay()));
            }
            Some(due) if now_nanos >= due => self.campaign(&node, now_nanos),
            Some(_) => {}
        }
    }

    fn election_delay(&self) -> u64 {
        self.config
            .election_base_nanos
            .saturating_add(self.config.node_id * self.config.election_stagger_nanos)
    }

    /// One failure-detector round: ping every peer with this node's
    /// term and durable vector, tracking replies and misses.
    fn heartbeat_round(&mut self, node: &Arc<ReplicaNode>) {
        let term = node.current_term();
        let vector = node.wal().vector();
        for peer in &mut self.peers {
            if peer.client.is_none() {
                peer.client = (peer.connector)().ok();
            }
            let reply = peer.client.as_mut().map(|c| c.ping(term, vector.clone()));
            match reply {
                Some(Ok(pong)) => {
                    if peer.status != PEER_UP {
                        self.obs.recorder.record(
                            EventKind::PeerStateChanged,
                            peer.id,
                            u64::from(PEER_UP),
                        );
                    }
                    peer.status = PEER_UP;
                    peer.misses = 0;
                    peer.term = pong.term;
                    peer.is_primary = pong.is_primary;
                    node.observe_term(pong.term);
                }
                _ => {
                    peer.client = None;
                    peer.misses = peer.misses.saturating_add(1);
                    peer.is_primary = false;
                    self.heartbeat_misses_total.inc();
                    let next = if peer.misses >= self.config.miss_threshold {
                        PEER_DOWN
                    } else {
                        PEER_SUSPECT
                    };
                    if next != peer.status {
                        self.obs.recorder.record(
                            EventKind::PeerStateChanged,
                            peer.id,
                            u64::from(next),
                        );
                        peer.status = next;
                    }
                }
            }
        }
    }

    /// Campaigns for the leadership: fresh term, own durable vector as
    /// the ballot, one vote request per peer. A majority (self-vote
    /// included) promotes this node; anything less re-arms the
    /// election timeout.
    fn campaign(&mut self, node: &Arc<ReplicaNode>, now_nanos: u64) {
        self.election_due = Some(now_nanos.saturating_add(self.election_delay()));
        if node.is_resyncing() {
            // The primary died mid-resync: these logs are not a
            // faithful prefix of anything. Wipe to unattached (zero
            // ballot) rather than stand for election on them.
            if node.reset_unattached().is_err() {
                return;
            }
        }
        let (term, ballot) = node.prepare_campaign();
        self.last_seen_term = term;
        self.elections_total.inc();
        let mut votes = 1usize; // the self-vote consumed by prepare_campaign
        for peer in &mut self.peers {
            if peer.client.is_none() {
                peer.client = (peer.connector)().ok();
            }
            let Some(client) = peer.client.as_mut() else {
                continue;
            };
            match client.request_vote(term, self.config.node_id, ballot.clone()) {
                Ok((voter_term, granted)) => {
                    if granted {
                        votes += 1;
                    } else {
                        node.observe_term(voter_term);
                    }
                }
                Err(_) => peer.client = None,
            }
        }
        if votes >= self.config.majority {
            self.promote(term, node);
        }
    }

    /// Promotes this node: dirty-mark the logs, recover the service
    /// from them, and resume replication at the folded seq vector
    /// under the won term. Replicas (all `Down` at first) rejoin
    /// through [`Replicator::tend`] before counting toward quorum — a
    /// freshly promoted primary therefore cannot ack a grant until at
    /// least one replica has resynced, which is exactly the write
    /// majority the acked-durability invariant needs.
    fn promote(&mut self, term: u64, node: &Arc<ReplicaNode>) {
        // The marker makes a later reopen of this storage wipe to
        // unattached: once we append as a primary, these logs stop
        // being a faithful replica stream.
        if node.wal().mark_dirty().is_err() {
            return;
        }
        let seqs = node.wal().vector();
        let mut service = match BudgetService::recover_with_obs(
            self.config.grid.clone(),
            self.config.service,
            self.storage.as_ref(),
            self.config.durability,
            Arc::clone(&self.obs),
        ) {
            Ok(s) => s,
            Err(_) => return, // retry at the re-armed election timeout
        };
        let connectors: Vec<(SocketAddr, Connector)> = self
            .peers
            .iter()
            .map(|p| {
                let dial = Arc::clone(&p.connector);
                (p.addr, Box::new(move || dial()) as Connector)
            })
            .collect();
        let mut repl = Replicator::resume(
            connectors,
            self.config.quorum,
            self.config.service.shards,
            &seqs,
            term,
            &self.obs,
        );
        if let Some(timeout) = self.config.ship_timeout {
            repl = repl.with_ship_timeout(timeout);
        }
        let repl = Arc::new(repl);
        service.replicate_to_resumed(Arc::clone(&repl) as Arc<dyn ReplicationSink>);
        self.core.promote(Arc::new(service), Some(repl));
        self.elections_won_total.inc();
        self.obs
            .recorder
            .record(EventKind::LeaderElected, term, self.config.node_id);
        self.leader = None;
        self.election_due = None;
    }
}

/// Production driver: a thread stepping a [`ClusterNode`] on a
/// wall-clock interval and running scheduling cycles (with advancing
/// virtual time, one period per cycle) whenever the node holds the
/// primary role.
pub struct ClusterRunner {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<ClusterNode>>,
}

impl ClusterRunner {
    /// Spawns the driver thread.
    pub fn spawn(mut node: ClusterNode, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let period = node.config.service.scheduling_period;
        let thread = std::thread::spawn(move || {
            let mut vstep = 1u64;
            while !flag.load(Ordering::Relaxed) {
                let now = node.obs.now_nanos();
                node.step(now);
                if let Some(service) = node.core.service() {
                    #[allow(clippy::cast_precision_loss)]
                    service.run_cycle(vstep as f64 * period);
                    vstep += 1;
                }
                std::thread::sleep(interval);
            }
            node
        });
        Self {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the driver and returns the node.
    ///
    /// # Panics
    ///
    /// Panics if the driver thread panicked.
    pub fn stop(mut self) -> ClusterNode {
        self.stop.store(true, Ordering::Relaxed);
        self.thread
            .take()
            .expect("driver runs until stop")
            .join()
            .expect("cluster driver thread panicked")
    }
}

impl Drop for ClusterRunner {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}
