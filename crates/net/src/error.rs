//! Errors and stable wire error codes.
//!
//! Every failure a remote tenant can observe is identified by an
//! [`ErrorCode`] — a small, **stable** `u16` that both codec
//! directions share: the server encodes the code when it rejects or
//! errors, the client decodes the same number back into the same
//! variant, and the numbers never change meaning across protocol
//! revisions (new codes may be added; existing ones are frozen).
//! Codes 1–19 mirror the service's [`AdmissionError`] variants
//! one-to-one, so a remote rejection carries exactly the information
//! an in-process caller would get.
//!
//! [`NetError`] is the one error type the crate's fallible operations
//! return, folding together transport I/O, protocol violations,
//! admission rejections, and server-reported failures.

use std::fmt;
use std::io;

use dpack_service::AdmissionError;

/// A stable, wire-encoded failure identifier. The discriminants are
/// the protocol: they are written as `u16` on the wire and must never
/// be renumbered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u16)]
pub enum ErrorCode {
    /// [`AdmissionError::QueueFull`] — backpressure; retry later.
    QueueFull = 1,
    /// [`AdmissionError::QuotaExceeded`].
    QuotaExceeded = 2,
    /// [`AdmissionError::UnknownBlock`].
    UnknownBlock = 3,
    /// [`AdmissionError::GridMismatch`] (also: a wire demand curve
    /// whose length does not fit the service's alpha grid).
    GridMismatch = 4,
    /// [`AdmissionError::InvalidTask`].
    InvalidTask = 5,
    /// [`AdmissionError::DuplicateTask`].
    DuplicateTask = 6,
    /// Block registration refused (duplicate id, malformed capacity).
    BlockRejected = 20,
    /// The peer violated the wire protocol (bad frame, bad message).
    Protocol = 30,
    /// Transport I/O failed.
    Io = 31,
    /// The connection or server was shut down before the reply.
    Closed = 32,
    /// The connection exceeded its per-connection buffer or in-flight
    /// bound; the server flushes this and closes. Reconnect (less
    /// aggressively) rather than retrying on the same connection.
    Overloaded = 33,
    /// A client-side deadline expired (a bounded failover dial, a
    /// ship-ack wait) before the operation completed.
    Timeout = 34,
    /// The node is a replica: it accepts only `Replicate` traffic.
    /// Failover clients treat this as "probe the next candidate".
    NotPrimary = 40,
    /// A `Replicate` batch left a sequence gap on its stream; the
    /// replica refused it (applying out of order would diverge from
    /// the primary's append order).
    ReplicationGap = 41,
    /// The sender's term is older than the receiver's: a deposed
    /// primary (or a stale resync) tried to write. The sender must
    /// stop acknowledging and rejoin as a replica.
    StaleTerm = 42,
    /// The handshake's shared-secret token was missing or wrong, or a
    /// request arrived before a successful handshake on a secured
    /// node.
    Unauthorized = 43,
}

impl ErrorCode {
    /// The wire representation.
    pub fn as_u16(self) -> u16 {
        self as u16
    }

    /// Decodes a wire code; unknown numbers (from a newer peer) map to
    /// `None` and should be surfaced as a protocol-level failure.
    pub fn from_u16(code: u16) -> Option<Self> {
        Some(match code {
            1 => Self::QueueFull,
            2 => Self::QuotaExceeded,
            3 => Self::UnknownBlock,
            4 => Self::GridMismatch,
            5 => Self::InvalidTask,
            6 => Self::DuplicateTask,
            20 => Self::BlockRejected,
            30 => Self::Protocol,
            31 => Self::Io,
            32 => Self::Closed,
            33 => Self::Overloaded,
            34 => Self::Timeout,
            40 => Self::NotPrimary,
            41 => Self::ReplicationGap,
            42 => Self::StaleTerm,
            43 => Self::Unauthorized,
            _ => return None,
        })
    }

    /// A short stable name (for logs and the README table).
    pub fn name(self) -> &'static str {
        match self {
            Self::QueueFull => "queue-full",
            Self::QuotaExceeded => "quota-exceeded",
            Self::UnknownBlock => "unknown-block",
            Self::GridMismatch => "grid-mismatch",
            Self::InvalidTask => "invalid-task",
            Self::DuplicateTask => "duplicate-task",
            Self::BlockRejected => "block-rejected",
            Self::Protocol => "protocol",
            Self::Io => "io",
            Self::Closed => "closed",
            Self::Overloaded => "overloaded",
            Self::Timeout => "timeout",
            Self::NotPrimary => "not-primary",
            Self::ReplicationGap => "replication-gap",
            Self::StaleTerm => "stale-term",
            Self::Unauthorized => "unauthorized",
        }
    }

    /// Whether the failure is worth retrying unchanged (backpressure),
    /// as opposed to a request the service will keep refusing.
    pub fn is_retryable(self) -> bool {
        matches!(self, Self::QueueFull)
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name(), self.as_u16())
    }
}

/// The stable code for an admission rejection — the mapping both codec
/// directions share.
pub fn admission_code(error: &AdmissionError) -> ErrorCode {
    match error {
        AdmissionError::QueueFull { .. } => ErrorCode::QueueFull,
        AdmissionError::QuotaExceeded { .. } => ErrorCode::QuotaExceeded,
        AdmissionError::UnknownBlock { .. } => ErrorCode::UnknownBlock,
        AdmissionError::GridMismatch { .. } => ErrorCode::GridMismatch,
        AdmissionError::InvalidTask { .. } => ErrorCode::InvalidTask,
        AdmissionError::DuplicateTask { .. } => ErrorCode::DuplicateTask,
    }
}

/// Any failure of a `dpack-net` operation.
#[derive(Debug)]
pub enum NetError {
    /// The transport failed (socket error, unexpected EOF mid-frame).
    Io(io::Error),
    /// The peer sent bytes that violate the wire protocol; the
    /// connection is no longer trustworthy and should be closed.
    Protocol(String),
    /// A local admission rejection (loopback transports surface the
    /// service's error directly).
    Admission(AdmissionError),
    /// The server reported a failure with a stable code.
    Remote {
        /// The stable failure code.
        code: ErrorCode,
        /// Human-readable detail (never required for dispatch).
        message: String,
    },
    /// The connection or server shut down before the reply arrived.
    Closed,
    /// A client-side deadline expired before the operation completed
    /// (bounded failover dials, read-timeout ship waits).
    Timeout,
}

impl NetError {
    /// The stable code describing this error — the same number the
    /// wire would carry for it, so client- and server-side reporting
    /// agree.
    pub fn code(&self) -> ErrorCode {
        match self {
            Self::Io(_) => ErrorCode::Io,
            Self::Protocol(_) => ErrorCode::Protocol,
            Self::Admission(e) => admission_code(e),
            Self::Remote { code, .. } => *code,
            Self::Closed => ErrorCode::Closed,
            Self::Timeout => ErrorCode::Timeout,
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport i/o error: {e}"),
            Self::Protocol(what) => write!(f, "wire protocol violation: {what}"),
            Self::Admission(e) => write!(f, "admission rejected: {e}"),
            Self::Remote { code, message } => {
                write!(f, "server error [{code}]: {message}")
            }
            Self::Closed => write!(f, "connection closed before the reply"),
            Self::Timeout => write!(f, "deadline expired before the operation completed"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Admission(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<AdmissionError> for NetError {
    fn from(e: AdmissionError) -> Self {
        Self::Admission(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_stay_stable() {
        let all = [
            (ErrorCode::QueueFull, 1),
            (ErrorCode::QuotaExceeded, 2),
            (ErrorCode::UnknownBlock, 3),
            (ErrorCode::GridMismatch, 4),
            (ErrorCode::InvalidTask, 5),
            (ErrorCode::DuplicateTask, 6),
            (ErrorCode::BlockRejected, 20),
            (ErrorCode::Protocol, 30),
            (ErrorCode::Io, 31),
            (ErrorCode::Closed, 32),
            (ErrorCode::Overloaded, 33),
            (ErrorCode::Timeout, 34),
            (ErrorCode::NotPrimary, 40),
            (ErrorCode::ReplicationGap, 41),
            (ErrorCode::StaleTerm, 42),
            (ErrorCode::Unauthorized, 43),
        ];
        for (code, number) in all {
            assert_eq!(code.as_u16(), number, "{code:?} renumbered");
            assert_eq!(ErrorCode::from_u16(number), Some(code));
        }
        assert_eq!(ErrorCode::from_u16(9999), None);
        assert!(ErrorCode::QueueFull.is_retryable());
        assert!(!ErrorCode::DuplicateTask.is_retryable());
    }

    #[test]
    fn every_admission_variant_has_a_distinct_code() {
        let variants = [
            AdmissionError::QueueFull { capacity: 1 },
            AdmissionError::QuotaExceeded {
                tenant: 0,
                quota: 1,
            },
            AdmissionError::UnknownBlock { task: 0, block: 0 },
            AdmissionError::GridMismatch { task: 0 },
            AdmissionError::InvalidTask {
                task: 0,
                reason: "x",
            },
            AdmissionError::DuplicateTask { task: 0 },
        ];
        let codes: std::collections::BTreeSet<u16> = variants
            .iter()
            .map(|e| admission_code(e).as_u16())
            .collect();
        assert_eq!(codes.len(), variants.len());
    }

    #[test]
    fn errors_render_and_chain() {
        use std::error::Error as _;
        let e = NetError::from(io::Error::new(io::ErrorKind::BrokenPipe, "pipe"));
        assert_eq!(e.code(), ErrorCode::Io);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("pipe"));
        let e = NetError::from(AdmissionError::DuplicateTask { task: 4 });
        assert_eq!(e.code(), ErrorCode::DuplicateTask);
        assert!(e.source().is_some());
        let e = NetError::Remote {
            code: ErrorCode::BlockRejected,
            message: "duplicate block id 3".into(),
        };
        assert!(e.to_string().contains("block-rejected (20)"));
        assert!(NetError::Closed.to_string().contains("closed"));
        assert_eq!(NetError::Protocol("x".into()).code(), ErrorCode::Protocol);
        assert_eq!(NetError::Timeout.code(), ErrorCode::Timeout);
        assert!(NetError::Timeout.to_string().contains("deadline"));
    }
}
