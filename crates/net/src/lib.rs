//! `dpack-net`: the wire protocol and remote tenant frontend.
//!
//! DPack is meant to run as a *shared service*: the paper's §6.4
//! deployment puts the scheduler behind a cluster API that many
//! tenants hit over the network (as PrivateKube does for budget
//! admission). This crate is that layer for the in-process
//! [`dpack_service::BudgetService`], in the house style — std-only,
//! vendored, deterministic, testable without sockets:
//!
//! * [`wire`] — a length-prefixed, checksummed binary protocol (the
//!   WAL's magic+len+fnv1a framing discipline, on a socket) with
//!   request/response codecs for submit, batch submit, block
//!   registration, stats, budget snapshots, metrics scrapes, and
//!   flight-recorder dumps. Request ids make pipelining and
//!   out-of-order completion first-class.
//! * [`error`] — one [`NetError`] for io/protocol/admission/remote
//!   failures, carrying **stable** [`ErrorCode`]s shared by both codec
//!   directions; every [`dpack_service::AdmissionError`] variant has
//!   its own frozen code.
//! * [`server`] — [`NetServer`], a poll-based reactor over nonblocking
//!   `std::net` sockets (connection sweep, per-connection buffers,
//!   pipelined requests, graceful shutdown), answering submissions
//!   with **final decisions** via the service's async submission
//!   surface ([`dpack_service::BudgetService::submit_async`]); and
//!   [`ServiceCore`], the transport-independent request processor.
//! * [`transport`] / [`client`] — the [`Transport`] seam with a real
//!   [`TcpTransport`] and an in-memory [`LoopbackTransport`], under a
//!   pipelining [`NetClient`] and a panic-safe [`ClientPool`] (with a
//!   primary-probing failover mode for replicated deployments).
//! * [`repl`] / [`cluster`] — quorum WAL shipping ([`Replicator`] on
//!   the primary, [`ReplicaNode`] on the receivers) and the
//!   self-healing deployment member ([`ClusterNode`]): heartbeat
//!   failure detection, durable-seq-vector leader election with
//!   stale-term fencing, automatic promotion, and snapshot+suffix
//!   replica catch-up with backoff redials.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use dp_accounting::{AlphaGrid, RdpCurve};
//! use dpack_core::problem::{Block, Task};
//! use dpack_service::{BudgetService, ServiceConfig, ServiceHandle};
//! use dpack_net::{NetClient, NetServer, Outcome};
//!
//! let grid = AlphaGrid::new(vec![4.0, 16.0]).unwrap();
//! let service = Arc::new(BudgetService::new(grid, ServiceConfig {
//!     unlock_steps: 1,
//!     ..ServiceConfig::default()
//! }));
//! let server = NetServer::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
//! let cycles = ServiceHandle::spawn(Arc::clone(&service), Duration::from_millis(1));
//!
//! let mut client = NetClient::connect(server.local_addr()).unwrap();
//! let grid = client.grid().unwrap();
//! client.register_block(&Block::new(0, RdpCurve::constant(&grid, 1.0), 0.0)).unwrap();
//! let task = Task::new(1, 1.0, vec![0], RdpCurve::constant(&grid, 0.4), 0.0);
//! // The reply is the *final decision*, not an enqueue ack.
//! assert!(matches!(client.submit(7, &task).unwrap(), Outcome::Granted { .. }));
//!
//! cycles.stop();
//! server.stop();
//! ```

pub mod client;
pub mod cluster;
pub mod error;
pub mod repl;
pub mod server;
pub mod transport;
pub mod wire;

pub use client::{ClientPool, NetClient, PongInfo, PooledClient, ReplyHandle};
pub use cluster::{ClusterConfig, ClusterNode, ClusterPeer, ClusterRunner, SharedConnector};
pub use error::{admission_code, ErrorCode, NetError};
pub use repl::{Connector, ReplicaNode, Replicator};
pub use server::{NetServer, PendingReply, ServiceCore, Step};
pub use transport::{LoopbackTransport, TcpTransport, Transport};
pub use wire::{
    Outcome, Request, RequestFrame, Response, ResponseFrame, WireClusterStatus, WirePeer,
    WireStats, WireTask, REPL_COORD_STREAM,
};

/// The observability crate whose snapshots and events travel on the
/// wire, re-exported so remote scrapers can consume
/// [`obs::MetricsSnapshot`] and [`obs::Event`] without a separate
/// dependency.
pub use dpack_obs as obs;
