//! The remote tenant's client library.
//!
//! [`NetClient`] is a synchronous client with **pipelining**: the
//! `*_nowait` methods send a request and return a [`ReplyHandle`]
//! immediately, so a tenant can keep any number of submissions in
//! flight and collect decisions later. Responses arrive in whatever
//! order the server resolves them (a stats reply overtakes a
//! submission that is still waiting on its scheduling cycle); the
//! client matches them to handles by request id and stashes
//! out-of-order arrivals.
//!
//! [`ClientPool`] shares a fixed set of connections across threads:
//! [`ClientPool::get`] checks a connection out (blocking while all are
//! busy) and the guard returns it on drop, panic-safe. A connection
//! that surfaced a transport or protocol error is **broken** — its
//! pipelining stream can no longer be trusted to stay in sync — so the
//! pool discards it on return and dials a replacement on the next
//! checkout. [`ClientPool::connect_failover`] makes that redial a
//! primary probe across candidate addresses, which is the client half
//! of replicated-service failover.

use std::collections::BTreeMap;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use dp_accounting::AlphaGrid;
use dpack_core::problem::{Block, Task, TaskId};
use dpack_service::BudgetService;

use crate::error::NetError;
use crate::transport::{LoopbackTransport, TcpTransport, Transport};
use crate::wire::{
    Outcome, Request, RequestFrame, Response, ResponseFrame, WireClusterStatus, WireStats,
    WireTask, MAX_FRAME,
};
use dpack_obs::{Span, TraceContext};

/// A claim on one in-flight request's response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "an unredeemed handle leaves its response in the stash forever"]
pub struct ReplyHandle(u64);

/// A synchronous, pipelining protocol client over any [`Transport`].
pub struct NetClient {
    transport: Box<dyn Transport>,
    next_id: u64,
    /// Responses that arrived while waiting for a different id.
    stash: BTreeMap<u64, Response>,
    /// The stream desynced (transport failure, undecodable frame, or a
    /// server parting shot): request/response matching is no longer
    /// trustworthy, so the connection must be discarded, not reused.
    broken: bool,
}

impl NetClient {
    /// Wraps an arbitrary transport.
    pub fn new(transport: Box<dyn Transport>) -> Self {
        Self {
            transport,
            next_id: 1,
            stash: BTreeMap::new(),
            broken: false,
        }
    }

    /// Connects over TCP to a [`crate::NetServer`].
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        Ok(Self::new(Box::new(TcpTransport::connect(addr)?)))
    }

    /// A client wired straight to an in-process service (no sockets);
    /// see [`LoopbackTransport`] for the receive semantics.
    pub fn loopback(service: Arc<BudgetService>) -> Self {
        Self::new(Box::new(LoopbackTransport::new(service)))
    }

    /// Whether this connection's stream desynced; a broken client must
    /// be discarded ([`ClientPool::get`] dials replacements).
    pub fn is_broken(&self) -> bool {
        self.broken
    }

    /// Marks the stream broken and passes the error through — the
    /// bookkeeping for any failure after which the request/response
    /// pipeline can no longer be trusted.
    fn fatal(&mut self, e: NetError) -> NetError {
        self.broken = true;
        e
    }

    fn send(&mut self, body: Request) -> Result<ReplyHandle, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let payload = RequestFrame { id, body }.encode();
        // Refuse rather than let the frame encoder's size assertion
        // fire: a single request this large (a giant batch) is a
        // caller error the protocol cannot carry. Nothing touched the
        // wire, so the stream stays healthy.
        if payload.len() > MAX_FRAME as usize {
            return Err(NetError::Protocol(format!(
                "request of {} bytes exceeds the {MAX_FRAME}-byte frame cap",
                payload.len()
            )));
        }
        self.transport
            .send_frame(&payload)
            .map_err(|e| self.fatal(e))?;
        Ok(ReplyHandle(id))
    }

    /// Receives until the response for `handle` arrives, stashing
    /// others.
    fn recv_for(&mut self, handle: ReplyHandle) -> Result<Response, NetError> {
        if let Some(resp) = self.stash.remove(&handle.0) {
            return Ok(resp);
        }
        loop {
            let payload = match self.transport.recv_frame() {
                Ok(p) => p,
                Err(e) => return Err(self.fatal(e)),
            };
            let ResponseFrame { id, body } = match ResponseFrame::decode(&payload) {
                Ok(f) => f,
                Err(e) => return Err(self.fatal(e)),
            };
            // A request-id-0 error is the server's parting shot before
            // it drops a connection it no longer trusts.
            if id == 0 {
                self.broken = true;
                if let Response::Error { code, message } = body {
                    return Err(NetError::Remote { code, message });
                }
                return Err(NetError::Protocol("response with request id 0".into()));
            }
            if id == handle.0 {
                return Ok(body);
            }
            // A second response for a stashed id means the server (or
            // something in between) desynced — silently overwriting
            // would hand a later caller the wrong decision.
            if self.stash.insert(id, body).is_some() {
                return Err(self.fatal(NetError::Protocol(format!(
                    "duplicate response for request id {id}"
                ))));
            }
        }
    }

    fn unexpected(body: &Response) -> NetError {
        match body {
            Response::Error { code, message } => NetError::Remote {
                code: *code,
                message: message.clone(),
            },
            other => NetError::Protocol(format!("response type mismatch: {other:?}")),
        }
    }

    /// The server's alpha grid — remote tenants build their demand and
    /// capacity curves on it.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or a grid the accounting layer
    /// rejects.
    pub fn grid(&mut self) -> Result<AlphaGrid, NetError> {
        self.handshake(None)
    }

    /// The handshake with an optional shared-secret token. On a secured
    /// node this must run (and succeed) before any other request on the
    /// connection; a wrong or missing token answers
    /// [`crate::ErrorCode::Unauthorized`].
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, an `Unauthorized` refusal, or a
    /// grid the accounting layer rejects.
    pub fn handshake(&mut self, token: Option<&str>) -> Result<AlphaGrid, NetError> {
        let handle = self.send(Request::Hello {
            token: token.map(str::to_owned),
        })?;
        match self.recv_for(handle)? {
            Response::Hello { alphas } => AlphaGrid::new(alphas)
                .map_err(|e| NetError::Protocol(format!("server sent an invalid grid: {e}"))),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Bounds how long any receive on this connection blocks; an
    /// expired bound surfaces as [`NetError::Timeout`] **and marks the
    /// connection broken** (a reply that arrives after its caller gave
    /// up would desync the pipeline).
    ///
    /// # Errors
    ///
    /// Socket configuration failures.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), NetError> {
        self.transport.set_read_timeout(timeout)
    }

    /// Pipelines one submission; redeem the handle with
    /// [`NetClient::wait_decision`].
    ///
    /// # Errors
    ///
    /// Transport failures (the submission may or may not have reached
    /// the server).
    pub fn submit_nowait(&mut self, tenant: u32, task: &Task) -> Result<ReplyHandle, NetError> {
        self.send(Request::Submit {
            tenant,
            task: WireTask::from_task(task),
            trace: None,
        })
    }

    /// [`NetClient::submit_nowait`] under a distributed-trace context:
    /// the server opens the grant's root span at admission and every
    /// node it touches records children under the same trace id.
    ///
    /// # Errors
    ///
    /// Transport failures (the submission may or may not have reached
    /// the server).
    pub fn submit_traced_nowait(
        &mut self,
        tenant: u32,
        task: &Task,
        trace: TraceContext,
    ) -> Result<ReplyHandle, NetError> {
        self.send(Request::Submit {
            tenant,
            task: WireTask::from_task(task),
            trace: Some(trace),
        })
    }

    /// Redeems a [`NetClient::submit_nowait`] handle: blocks until the
    /// service's **final decision** for that task arrives.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures. A rejection is *not* an error —
    /// it is an [`Outcome::Rejected`] decision.
    pub fn wait_decision(&mut self, handle: ReplyHandle) -> Result<Outcome, NetError> {
        match self.recv_for(handle)? {
            Response::Decision { outcome, .. } => Ok(outcome),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Submits one task and blocks for its final decision.
    ///
    /// # Errors
    ///
    /// See [`NetClient::wait_decision`].
    pub fn submit(&mut self, tenant: u32, task: &Task) -> Result<Outcome, NetError> {
        let handle = self.submit_nowait(tenant, task)?;
        self.wait_decision(handle)
    }

    /// Submits a batch in one frame and blocks until every decision is
    /// made; decisions come back in submission order.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures (individual rejections are
    /// decisions, not errors).
    pub fn submit_batch(
        &mut self,
        tenant: u32,
        tasks: &[Task],
    ) -> Result<Vec<(TaskId, Outcome)>, NetError> {
        let handle = self.send(Request::SubmitBatch {
            tenant,
            tasks: tasks.iter().map(WireTask::from_task).collect(),
            traces: Vec::new(),
        })?;
        match self.recv_for(handle)? {
            Response::BatchDecision { decisions } => Ok(decisions),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Registers a data block.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] with [`crate::ErrorCode::BlockRejected`]
    /// when the service refuses it; transport failures otherwise.
    pub fn register_block(&mut self, block: &Block) -> Result<(), NetError> {
        let handle = self.send(Request::RegisterBlock {
            id: block.id,
            arrival: block.arrival,
            capacity: block.capacity.values().to_vec(),
        })?;
        match self.recv_for(handle)? {
            Response::BlockRegistered { .. } => Ok(()),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Reads the service counters.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn stats(&mut self) -> Result<WireStats, NetError> {
        let handle = self.send(Request::Stats)?;
        match self.recv_for(handle)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Reads every block's available budget at virtual time `now`.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn snapshot(&mut self, now: f64) -> Result<BTreeMap<u64, Vec<f64>>, NetError> {
        let handle = self.send(Request::Snapshot { now })?;
        match self.recv_for(handle)? {
            Response::Snapshot { blocks } => Ok(blocks.into_iter().collect()),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Scrapes the service's metrics registry: every counter, gauge,
    /// and histogram as one point-in-time snapshot. Render it with
    /// [`dpack_obs::MetricsSnapshot::render`] for the Prometheus-style
    /// text exposition.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn metrics(&mut self) -> Result<dpack_obs::MetricsSnapshot, NetError> {
        let handle = self.send(Request::Metrics)?;
        match self.recv_for(handle)? {
            Response::Metrics { samples } => Ok(dpack_obs::MetricsSnapshot { samples }),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Dumps the service's flight recorder from sequence number
    /// `since` (0 for everything retained). A post-mortem scraper
    /// remembers the last seq it saw and passes `last + 1`.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn trace(&mut self, since: u64) -> Result<Vec<dpack_obs::Event>, NetError> {
        let handle = self.send(Request::Trace { since })?;
        match self.recv_for(handle)? {
            Response::Trace { events } => Ok(events),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Pipelines one replication batch (`seq` on stream `shard`) to a
    /// replica; redeem the handle with
    /// [`NetClient::wait_replicate_ack`]. The primary's
    /// [`crate::Replicator`] sends to every replica first and collects
    /// acks second, so one quorum round costs one RTT, not one per
    /// replica.
    ///
    /// # Errors
    ///
    /// Transport failures (the batch may or may not have reached the
    /// replica).
    pub fn replicate_nowait(
        &mut self,
        term: u64,
        shard: u32,
        seq: u64,
        records: Vec<Vec<u8>>,
        traces: Vec<u64>,
    ) -> Result<ReplyHandle, NetError> {
        self.send(Request::Replicate {
            term,
            shard,
            seq,
            records,
            traces,
        })
    }

    /// Redeems a [`NetClient::replicate_nowait`] handle: blocks until
    /// the replica's durability ack arrives. Returns `(stream, seq,
    /// durable)` where `durable` is the replica's highest contiguously
    /// applied sequence on that stream (≥ `seq` means the shipped batch
    /// is on its disk).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or a remote
    /// [`crate::ErrorCode::ReplicationGap`] /
    /// [`crate::ErrorCode::NotPrimary`] refusal.
    pub fn wait_replicate_ack(&mut self, handle: ReplyHandle) -> Result<(u32, u64, u64), NetError> {
        match self.recv_for(handle)? {
            Response::ReplicateAck {
                shard,
                seq,
                durable,
            } => Ok((shard, seq, durable)),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Ships one replication batch and blocks for the durability ack;
    /// returns the replica's durable sequence for the stream.
    ///
    /// # Errors
    ///
    /// See [`NetClient::wait_replicate_ack`].
    pub fn replicate(
        &mut self,
        term: u64,
        shard: u32,
        seq: u64,
        records: Vec<Vec<u8>>,
    ) -> Result<u64, NetError> {
        let handle = self.replicate_nowait(term, shard, seq, records, Vec::new())?;
        let (_, _, durable) = self.wait_replicate_ack(handle)?;
        Ok(durable)
    }

    /// Reads the node's introspection answer: its role, term, durable
    /// seq vector, and its live view of every peer (state, per-stream
    /// replication lag when it is the primary, resync/backoff state).
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn cluster_status(&mut self) -> Result<WireClusterStatus, NetError> {
        let handle = self.send(Request::ClusterStatus)?;
        match self.recv_for(handle)? {
            Response::ClusterStatus(status) => Ok(status),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Dumps the node's span ring from sequence number `since` (0 for
    /// everything retained). One call returns at most a reply-budget
    /// page; see [`NetClient::span_dump_all`] for the paginating form.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn span_dump(&mut self, since: u64) -> Result<Vec<Span>, NetError> {
        let handle = self.send(Request::SpanDump { since })?;
        match self.recv_for(handle)? {
            Response::SpanDump { spans } => Ok(spans),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Drains the node's entire retained span ring, following the
    /// server's reply-budget pagination (each page's last seq + 1
    /// seeds the next request) until a page comes back empty.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn span_dump_all(&mut self) -> Result<Vec<Span>, NetError> {
        let mut all = Vec::new();
        let mut since = 0u64;
        loop {
            let page = self.span_dump(since)?;
            let Some(last) = page.last() else {
                return Ok(all);
            };
            since = last.seq + 1;
            all.extend(page);
        }
    }

    /// One failure-detector heartbeat: sends this node's term and
    /// durable seq vector, blocks for the peer's [`PongInfo`].
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn ping(&mut self, term: u64, vector: Vec<u64>) -> Result<PongInfo, NetError> {
        let handle = self.send(Request::Ping { term, vector })?;
        match self.recv_for(handle)? {
            Response::Pong {
                term,
                is_primary,
                lineage,
                vector,
            } => Ok(PongInfo {
                term,
                is_primary,
                lineage,
                vector,
            }),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Asks the peer for its vote in `term`; returns `(voter_term,
    /// granted)` — a refusal carries the voter's (possibly newer) term
    /// so the candidate can campaign above it next time.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn request_vote(
        &mut self,
        term: u64,
        candidate: u64,
        ballot: Vec<u64>,
    ) -> Result<(u64, bool), NetError> {
        let handle = self.send(Request::Vote {
            term,
            candidate,
            ballot,
        })?;
        match self.recv_for(handle)? {
            Response::VoteReply { term, granted } => Ok((term, granted)),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Installs one stream's snapshot on a lagging replica (catch-up);
    /// returns the stream's new durable base.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or a remote refusal
    /// ([`crate::ErrorCode::StaleTerm`], [`crate::ErrorCode::Io`]).
    pub fn resync_stream(
        &mut self,
        term: u64,
        shard: u32,
        base_seq: u64,
        snapshot: Vec<u8>,
    ) -> Result<u64, NetError> {
        let handle = self.send(Request::ResyncStream {
            term,
            shard,
            base_seq,
            snapshot,
        })?;
        match self.recv_for(handle)? {
            Response::ResyncAck { durable, .. } => Ok(durable),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Commits a resync round: the replica persists `lineage`, clears
    /// its dirty mark, and resumes counting toward the quorum.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or a remote refusal.
    pub fn resync_commit(&mut self, term: u64, lineage: u64) -> Result<(), NetError> {
        let handle = self.send(Request::ResyncCommit { term, lineage })?;
        match self.recv_for(handle)? {
            Response::ResyncAck { .. } => Ok(()),
            other => Err(Self::unexpected(&other)),
        }
    }
}

/// What a peer's heartbeat answer reveals: its term, role, lineage, and
/// durable per-stream seq vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PongInfo {
    /// The peer's current election term.
    pub term: u64,
    /// Whether the peer believes it is the primary.
    pub is_primary: bool,
    /// The peer's persisted lineage (0 = unattached).
    pub lineage: u64,
    /// The peer's durable per-stream seq vector (shards, then coord).
    pub vector: Vec<u64>,
}

/// How long [`ClientPool::get`] parks after a failed redial before
/// probing again — long enough not to hammer a server (or failover
/// candidate) that is still coming up, short enough that a promotion
/// window adds little client-visible latency.
const REDIAL_BACKOFF: Duration = Duration::from_millis(20);

/// What the pool knows while holding its lock.
struct PoolState {
    idle: Vec<NetClient>,
    /// Live connections: idle plus checked out. Discarding a broken
    /// connection decrements this below the pool size, which is the
    /// signal for a later [`ClientPool::get`] to dial a replacement.
    total: usize,
}

/// A fixed-size pool of protocol clients shared across threads.
///
/// The pool self-heals: a connection returned in a
/// [`NetClient::is_broken`] state is dropped instead of re-idled, and
/// the next checkout that finds the pool under size redials through
/// the pool's connector. With [`ClientPool::connect_failover`] the
/// connector probes candidate addresses for the current primary, so a
/// borrower that lost its connection to a dead primary transparently
/// comes back holding a connection to the promoted replica.
pub struct ClientPool {
    state: Mutex<PoolState>,
    available: Condvar,
    size: usize,
    connector: Box<dyn Fn() -> Result<NetClient, NetError> + Send + Sync>,
    /// Overall bound on [`ClientPool::try_get`]'s wait-or-redial loop;
    /// `None` waits forever (the [`ClientPool::get`] behavior).
    deadline: Option<Duration>,
}

impl ClientPool {
    /// Opens `size` TCP connections to one server.
    ///
    /// # Errors
    ///
    /// The first connection failure (already-opened connections drop).
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn connect(
        addr: impl ToSocketAddrs + Copy + Send + Sync + 'static,
        size: usize,
    ) -> Result<Self, NetError> {
        Self::with_connector(move || NetClient::connect(addr), size)
    }

    /// Opens `size` connections to the current **primary** among
    /// `addrs`, probing candidates in order; later redials (after a
    /// broken connection is discarded) re-probe, which is how the pool
    /// follows a failover to a promoted replica.
    ///
    /// A candidate is skipped when the TCP connect fails *or* when it
    /// answers the handshake with
    /// [`crate::ErrorCode::NotPrimary`] — a replica that is alive but
    /// not promoted.
    ///
    /// # Errors
    ///
    /// The last candidate's error when no candidate is currently
    /// primary.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` or `addrs` is empty.
    pub fn connect_failover(addrs: Vec<SocketAddr>, size: usize) -> Result<Self, NetError> {
        assert!(!addrs.is_empty(), "failover needs at least one candidate");
        Self::with_connector(move || Self::probe(&addrs), size)
    }

    /// [`ClientPool::connect_failover`] with a bounded patience:
    /// the initial probe retries (no candidate may be primary yet —
    /// e.g. an election in flight) until `deadline`, and every later
    /// [`ClientPool::try_get`] gives up with [`NetError::Timeout`]
    /// after the same bound instead of redialing forever. A cluster
    /// that never elects a primary becomes a typed error, not a hang.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] when the deadline expires before any
    /// candidate answers as primary.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0` or `addrs` is empty.
    pub fn connect_failover_deadline(
        addrs: Vec<SocketAddr>,
        size: usize,
        deadline: Duration,
    ) -> Result<Self, NetError> {
        assert!(!addrs.is_empty(), "failover needs at least one candidate");
        let started = std::time::Instant::now();
        loop {
            let candidates = addrs.clone();
            match Self::with_connector(move || Self::probe(&candidates), size) {
                Ok(mut pool) => {
                    pool.deadline = Some(deadline);
                    return Ok(pool);
                }
                Err(_) if started.elapsed() < deadline => {
                    std::thread::sleep(REDIAL_BACKOFF);
                }
                Err(_) => return Err(NetError::Timeout),
            }
        }
    }

    /// Builds a pool over an arbitrary connector (the seam the tests
    /// use to inject loopback or hostile connections).
    ///
    /// # Errors
    ///
    /// The first connector failure while opening the initial `size`
    /// connections.
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn with_connector(
        connector: impl Fn() -> Result<NetClient, NetError> + Send + Sync + 'static,
        size: usize,
    ) -> Result<Self, NetError> {
        assert!(size >= 1, "a pool needs at least one connection");
        let idle = (0..size)
            .map(|_| connector())
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            state: Mutex::new(PoolState { idle, total: size }),
            available: Condvar::new(),
            size,
            connector: Box::new(connector),
            deadline: None,
        })
    }

    /// One failover probe: the first candidate that accepts the
    /// connection *and* answers the handshake as a primary wins.
    fn probe(addrs: &[SocketAddr]) -> Result<NetClient, NetError> {
        let mut last = NetError::Closed;
        for &addr in addrs {
            match NetClient::connect(addr).and_then(|mut c| c.grid().map(|_| c)) {
                Ok(client) => return Ok(client),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// The pool's connection count.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Connections currently alive (idle plus checked out). Less than
    /// [`ClientPool::size`] exactly while discarded broken connections
    /// await their replacement redial.
    pub fn live(&self) -> usize {
        self.state.lock().expect("pool lock poisoned").total
    }

    /// Checks a connection out, blocking while all are in use. The
    /// guard derefs to [`NetClient`] and returns the connection on
    /// drop — including on panic, so a poisoned caller cannot leak
    /// pool capacity. When the pool is under size (broken connections
    /// were discarded), this dials a replacement instead of waiting —
    /// retrying with backoff until the connector succeeds, which during
    /// failover means until a candidate is promoted.
    pub fn get(&self) -> PooledClient<'_> {
        let mut state = self.state.lock().expect("pool lock poisoned");
        loop {
            if let Some(client) = state.idle.pop() {
                return PooledClient {
                    pool: self,
                    client: Some(client),
                };
            }
            if state.total < self.size {
                // Reserve the slot, then dial outside the lock so
                // other borrowers keep flowing while we connect.
                state.total += 1;
                drop(state);
                match (self.connector)() {
                    Ok(client) => {
                        return PooledClient {
                            pool: self,
                            client: Some(client),
                        }
                    }
                    Err(_) => {
                        let mut relocked = self.state.lock().expect("pool lock poisoned");
                        relocked.total -= 1;
                        let (s, _) = self
                            .available
                            .wait_timeout(relocked, REDIAL_BACKOFF)
                            .expect("pool lock poisoned");
                        state = s;
                        continue;
                    }
                }
            }
            state = self.available.wait(state).expect("pool lock poisoned");
        }
    }

    /// [`ClientPool::get`] with the pool's deadline applied (set by
    /// [`ClientPool::connect_failover_deadline`]): waiting for an idle
    /// connection and redialing after discards both give up with
    /// [`NetError::Timeout`] once the bound expires. A pool built
    /// without a deadline never times out here.
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] when the deadline expires before a
    /// connection could be checked out or redialed.
    pub fn try_get(&self) -> Result<PooledClient<'_>, NetError> {
        let Some(deadline) = self.deadline else {
            return Ok(self.get());
        };
        let started = std::time::Instant::now();
        let mut state = self.state.lock().expect("pool lock poisoned");
        loop {
            if let Some(client) = state.idle.pop() {
                return Ok(PooledClient {
                    pool: self,
                    client: Some(client),
                });
            }
            if started.elapsed() >= deadline {
                return Err(NetError::Timeout);
            }
            if state.total < self.size {
                state.total += 1;
                drop(state);
                match (self.connector)() {
                    Ok(client) => {
                        return Ok(PooledClient {
                            pool: self,
                            client: Some(client),
                        })
                    }
                    Err(_) => {
                        let mut relocked = self.state.lock().expect("pool lock poisoned");
                        relocked.total -= 1;
                        let (s, _) = self
                            .available
                            .wait_timeout(relocked, REDIAL_BACKOFF)
                            .expect("pool lock poisoned");
                        state = s;
                        continue;
                    }
                }
            }
            let remaining = deadline
                .saturating_sub(started.elapsed())
                .min(REDIAL_BACKOFF);
            let (s, _) = self
                .available
                .wait_timeout(state, remaining.max(Duration::from_millis(1)))
                .expect("pool lock poisoned");
            state = s;
        }
    }

    fn put_back(&self, client: NetClient) {
        {
            let mut state = self.state.lock().expect("pool lock poisoned");
            if client.is_broken() {
                // Discard: the freed slot lets the next `get` redial.
                state.total -= 1;
            } else {
                state.idle.push(client);
            }
        }
        // Wake a waiter either way — it either takes the idled
        // connection or sees the freed slot and redials.
        self.available.notify_one();
    }
}

/// A checked-out pool connection; returns itself on drop.
pub struct PooledClient<'a> {
    pool: &'a ClientPool,
    client: Option<NetClient>,
}

impl std::ops::Deref for PooledClient<'_> {
    type Target = NetClient;

    fn deref(&self) -> &NetClient {
        self.client.as_ref().expect("present until drop")
    }
}

impl std::ops::DerefMut for PooledClient<'_> {
    fn deref_mut(&mut self) -> &mut NetClient {
        self.client.as_mut().expect("present until drop")
    }
}

impl Drop for PooledClient<'_> {
    fn drop(&mut self) {
        if let Some(client) = self.client.take() {
            self.pool.put_back(client);
        }
    }
}
