//! The remote tenant's client library.
//!
//! [`NetClient`] is a synchronous client with **pipelining**: the
//! `*_nowait` methods send a request and return a [`ReplyHandle`]
//! immediately, so a tenant can keep any number of submissions in
//! flight and collect decisions later. Responses arrive in whatever
//! order the server resolves them (a stats reply overtakes a
//! submission that is still waiting on its scheduling cycle); the
//! client matches them to handles by request id and stashes
//! out-of-order arrivals.
//!
//! [`ClientPool`] shares a fixed set of connections across threads:
//! [`ClientPool::get`] checks a connection out (blocking while all are
//! busy) and the guard returns it on drop, panic-safe.

use std::collections::BTreeMap;
use std::net::ToSocketAddrs;
use std::sync::{Arc, Condvar, Mutex};

use dp_accounting::AlphaGrid;
use dpack_core::problem::{Block, Task, TaskId};
use dpack_service::BudgetService;

use crate::error::NetError;
use crate::transport::{LoopbackTransport, TcpTransport, Transport};
use crate::wire::{
    Outcome, Request, RequestFrame, Response, ResponseFrame, WireStats, WireTask, MAX_FRAME,
};

/// A claim on one in-flight request's response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "an unredeemed handle leaves its response in the stash forever"]
pub struct ReplyHandle(u64);

/// A synchronous, pipelining protocol client over any [`Transport`].
pub struct NetClient {
    transport: Box<dyn Transport>,
    next_id: u64,
    /// Responses that arrived while waiting for a different id.
    stash: BTreeMap<u64, Response>,
}

impl NetClient {
    /// Wraps an arbitrary transport.
    pub fn new(transport: Box<dyn Transport>) -> Self {
        Self {
            transport,
            next_id: 1,
            stash: BTreeMap::new(),
        }
    }

    /// Connects over TCP to a [`crate::NetServer`].
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, NetError> {
        Ok(Self::new(Box::new(TcpTransport::connect(addr)?)))
    }

    /// A client wired straight to an in-process service (no sockets);
    /// see [`LoopbackTransport`] for the receive semantics.
    pub fn loopback(service: Arc<BudgetService>) -> Self {
        Self::new(Box::new(LoopbackTransport::new(service)))
    }

    fn send(&mut self, body: Request) -> Result<ReplyHandle, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let payload = RequestFrame { id, body }.encode();
        // Refuse rather than let the frame encoder's size assertion
        // fire: a single request this large (a giant batch) is a
        // caller error the protocol cannot carry.
        if payload.len() > MAX_FRAME as usize {
            return Err(NetError::Protocol(format!(
                "request of {} bytes exceeds the {MAX_FRAME}-byte frame cap",
                payload.len()
            )));
        }
        self.transport.send_frame(&payload)?;
        Ok(ReplyHandle(id))
    }

    /// Receives until the response for `handle` arrives, stashing
    /// others.
    fn recv_for(&mut self, handle: ReplyHandle) -> Result<Response, NetError> {
        if let Some(resp) = self.stash.remove(&handle.0) {
            return Ok(resp);
        }
        loop {
            let payload = self.transport.recv_frame()?;
            let ResponseFrame { id, body } = ResponseFrame::decode(&payload)?;
            // A request-id-0 error is the server's parting shot before
            // it drops a connection it no longer trusts.
            if id == 0 {
                if let Response::Error { code, message } = body {
                    return Err(NetError::Remote { code, message });
                }
                return Err(NetError::Protocol("response with request id 0".into()));
            }
            if id == handle.0 {
                return Ok(body);
            }
            self.stash.insert(id, body);
        }
    }

    fn unexpected(body: &Response) -> NetError {
        match body {
            Response::Error { code, message } => NetError::Remote {
                code: *code,
                message: message.clone(),
            },
            other => NetError::Protocol(format!("response type mismatch: {other:?}")),
        }
    }

    /// The server's alpha grid — remote tenants build their demand and
    /// capacity curves on it.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures, or a grid the accounting layer
    /// rejects.
    pub fn grid(&mut self) -> Result<AlphaGrid, NetError> {
        let handle = self.send(Request::Hello)?;
        match self.recv_for(handle)? {
            Response::Hello { alphas } => AlphaGrid::new(alphas)
                .map_err(|e| NetError::Protocol(format!("server sent an invalid grid: {e}"))),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Pipelines one submission; redeem the handle with
    /// [`NetClient::wait_decision`].
    ///
    /// # Errors
    ///
    /// Transport failures (the submission may or may not have reached
    /// the server).
    pub fn submit_nowait(&mut self, tenant: u32, task: &Task) -> Result<ReplyHandle, NetError> {
        self.send(Request::Submit {
            tenant,
            task: WireTask::from_task(task),
        })
    }

    /// Redeems a [`NetClient::submit_nowait`] handle: blocks until the
    /// service's **final decision** for that task arrives.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures. A rejection is *not* an error —
    /// it is an [`Outcome::Rejected`] decision.
    pub fn wait_decision(&mut self, handle: ReplyHandle) -> Result<Outcome, NetError> {
        match self.recv_for(handle)? {
            Response::Decision { outcome, .. } => Ok(outcome),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Submits one task and blocks for its final decision.
    ///
    /// # Errors
    ///
    /// See [`NetClient::wait_decision`].
    pub fn submit(&mut self, tenant: u32, task: &Task) -> Result<Outcome, NetError> {
        let handle = self.submit_nowait(tenant, task)?;
        self.wait_decision(handle)
    }

    /// Submits a batch in one frame and blocks until every decision is
    /// made; decisions come back in submission order.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures (individual rejections are
    /// decisions, not errors).
    pub fn submit_batch(
        &mut self,
        tenant: u32,
        tasks: &[Task],
    ) -> Result<Vec<(TaskId, Outcome)>, NetError> {
        let handle = self.send(Request::SubmitBatch {
            tenant,
            tasks: tasks.iter().map(WireTask::from_task).collect(),
        })?;
        match self.recv_for(handle)? {
            Response::BatchDecision { decisions } => Ok(decisions),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Registers a data block.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] with [`crate::ErrorCode::BlockRejected`]
    /// when the service refuses it; transport failures otherwise.
    pub fn register_block(&mut self, block: &Block) -> Result<(), NetError> {
        let handle = self.send(Request::RegisterBlock {
            id: block.id,
            arrival: block.arrival,
            capacity: block.capacity.values().to_vec(),
        })?;
        match self.recv_for(handle)? {
            Response::BlockRegistered { .. } => Ok(()),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Reads the service counters.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn stats(&mut self) -> Result<WireStats, NetError> {
        let handle = self.send(Request::Stats)?;
        match self.recv_for(handle)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Reads every block's available budget at virtual time `now`.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn snapshot(&mut self, now: f64) -> Result<BTreeMap<u64, Vec<f64>>, NetError> {
        let handle = self.send(Request::Snapshot { now })?;
        match self.recv_for(handle)? {
            Response::Snapshot { blocks } => Ok(blocks.into_iter().collect()),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Scrapes the service's metrics registry: every counter, gauge,
    /// and histogram as one point-in-time snapshot. Render it with
    /// [`dpack_obs::MetricsSnapshot::render`] for the Prometheus-style
    /// text exposition.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn metrics(&mut self) -> Result<dpack_obs::MetricsSnapshot, NetError> {
        let handle = self.send(Request::Metrics)?;
        match self.recv_for(handle)? {
            Response::Metrics { samples } => Ok(dpack_obs::MetricsSnapshot { samples }),
            other => Err(Self::unexpected(&other)),
        }
    }

    /// Dumps the service's flight recorder from sequence number
    /// `since` (0 for everything retained). A post-mortem scraper
    /// remembers the last seq it saw and passes `last + 1`.
    ///
    /// # Errors
    ///
    /// Transport/protocol failures.
    pub fn trace(&mut self, since: u64) -> Result<Vec<dpack_obs::Event>, NetError> {
        let handle = self.send(Request::Trace { since })?;
        match self.recv_for(handle)? {
            Response::Trace { events } => Ok(events),
            other => Err(Self::unexpected(&other)),
        }
    }
}

/// A fixed-size pool of protocol clients shared across threads.
pub struct ClientPool {
    idle: Mutex<Vec<NetClient>>,
    available: Condvar,
    size: usize,
}

impl ClientPool {
    /// Opens `size` TCP connections to one server.
    ///
    /// # Errors
    ///
    /// The first connection failure (already-opened connections drop).
    ///
    /// # Panics
    ///
    /// Panics if `size == 0`.
    pub fn connect(addr: impl ToSocketAddrs + Copy, size: usize) -> Result<Self, NetError> {
        assert!(size >= 1, "a pool needs at least one connection");
        let clients = (0..size)
            .map(|_| NetClient::connect(addr))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            idle: Mutex::new(clients),
            available: Condvar::new(),
            size,
        })
    }

    /// The pool's connection count.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Checks a connection out, blocking while all are in use. The
    /// guard derefs to [`NetClient`] and returns the connection on
    /// drop — including on panic, so a poisoned caller cannot leak
    /// pool capacity.
    pub fn get(&self) -> PooledClient<'_> {
        let mut idle = self.idle.lock().expect("pool lock poisoned");
        loop {
            if let Some(client) = idle.pop() {
                return PooledClient {
                    pool: self,
                    client: Some(client),
                };
            }
            idle = self.available.wait(idle).expect("pool lock poisoned");
        }
    }

    fn put_back(&self, client: NetClient) {
        self.idle.lock().expect("pool lock poisoned").push(client);
        self.available.notify_one();
    }
}

/// A checked-out pool connection; returns itself on drop.
pub struct PooledClient<'a> {
    pool: &'a ClientPool,
    client: Option<NetClient>,
}

impl std::ops::Deref for PooledClient<'_> {
    type Target = NetClient;

    fn deref(&self) -> &NetClient {
        self.client.as_ref().expect("present until drop")
    }
}

impl std::ops::DerefMut for PooledClient<'_> {
    fn deref_mut(&mut self) -> &mut NetClient {
        self.client.as_mut().expect("present until drop")
    }
}

impl Drop for PooledClient<'_> {
    fn drop(&mut self) {
        if let Some(client) = self.client.take() {
            self.pool.put_back(client);
        }
    }
}
