//! Chaos suite for the self-healing cluster: a three-node deployment
//! under a single-threaded virtual clock, with a drawn kill/rejoin
//! schedule, asserting the failover invariants end to end —
//!
//! * **at most one leader per term** — across every node's flight
//!   recorder (including nodes that later died), no term carries two
//!   [`EventKind::LeaderElected`] events;
//! * **acked grants survive any single-node loss** — after the
//!   first failover the promoted leader refuses every resubmitted
//!   acked task as a duplicate (its fold carries the full record
//!   history), and every later fold still charges each grant exactly
//!   once;
//! * **rejoined replicas converge bit-identically** — at the end,
//!   folding each replica's logs with [`BudgetService::recover`]
//!   reproduces the live leader ledger bit for bit, through kills,
//!   wipes, and snapshot resyncs;
//! * **grant-count conservation across election storms** — the number
//!   of unique `Granted` decisions tenants ever received equals the
//!   granted total in the final fold, with power-of-two demands so
//!   budget sums are exact in `f64`.
//!
//! Promotion is fully automatic: the harness only steps nodes and
//! kills/revives them — every election, promotion, demotion, and
//! resync below is the cluster protocol's own doing. Runs on
//! dpack-check, so `DPACK_CHECK_SEED=<seed>` replays one schedule
//! deterministically (the CI determinism guard double-runs it).

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dp_accounting::{AlphaGrid, RdpCurve};
use dpack_check::{check_cases, ints, prop_assert, prop_assert_eq, vecs, Failed, Strategy};
use dpack_core::problem::{Block, Task};
use dpack_net::obs::{EventKind, ManualClock, Obs};
use dpack_net::{
    ClusterConfig, ClusterNode, ClusterPeer, ErrorCode, LoopbackTransport, NetClient, NetError,
    Outcome, ServiceCore, Transport,
};
use dpack_service::wal::{SimStorage, WalStorage};
use dpack_service::{BudgetService, DurabilityOptions, ServiceConfig, StatsRetention};

const N: usize = 3;
const SHARDS: usize = 2;
const BLOCKS: u64 = 8;
/// Virtual time advances in 5ms steps; heartbeats every 10ms, a peer
/// is down after 3 misses, elections fire 30ms + 10ms×id after that.
const TICK: u64 = 5_000_000;
const CASES: u32 = 4;

fn grid() -> AlphaGrid {
    AlphaGrid::new(vec![4.0, 16.0]).expect("valid grid")
}

fn service_config() -> ServiceConfig {
    ServiceConfig {
        shards: SHARDS,
        workers: 1,
        unlock_steps: 1,
        retention: StatsRetention::Unbounded,
        ..ServiceConfig::default()
    }
}

/// Power-of-two demands: any sum of them is exact in `f64`, so the
/// conservation assertions compare bit patterns, not approximations.
const DEMANDS: [f64; 3] = [0.125, 0.25, 0.5];

fn task(id: u64, demand_pick: u8) -> Task {
    let eps = DEMANDS[demand_pick as usize % DEMANDS.len()];
    Task::new(
        id,
        1.0,
        vec![id % BLOCKS],
        RdpCurve::constant(&grid(), eps),
        0.0,
    )
}

// ---- the simulated network -------------------------------------------

/// The switchboard: who is reachable, at which incarnation, behind
/// which request core. Killing a node refuses new dials *and* breaks
/// every connection already established to it (epoch mismatch), the
/// way a real crash resets TCP streams.
struct ChaosNet {
    cores: Mutex<Vec<Option<ServiceCore>>>,
    alive: Vec<AtomicBool>,
    epochs: Vec<AtomicU64>,
}

impl ChaosNet {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            cores: Mutex::new((0..N).map(|_| None).collect()),
            alive: (0..N).map(|_| AtomicBool::new(false)).collect(),
            epochs: (0..N).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    fn check(&self, target: usize, epoch: u64) -> Result<(), NetError> {
        if !self.alive[target].load(Ordering::Acquire)
            || self.epochs[target].load(Ordering::Acquire) != epoch
        {
            return Err(NetError::Closed);
        }
        Ok(())
    }

    fn dial(&self, target: usize) -> Result<(ServiceCore, u64), NetError> {
        if !self.alive[target].load(Ordering::Acquire) {
            return Err(NetError::Closed);
        }
        let core = self.cores.lock().expect("switchboard lock poisoned")[target]
            .clone()
            .ok_or(NetError::Closed)?;
        Ok((core, self.epochs[target].load(Ordering::Acquire)))
    }
}

/// A loopback connection pinned to one incarnation of its target: any
/// frame after the target dies or restarts fails with `Closed`.
struct ChaosTransport {
    inner: LoopbackTransport,
    net: Arc<ChaosNet>,
    target: usize,
    epoch: u64,
}

impl Transport for ChaosTransport {
    fn send_frame(&mut self, payload: &[u8]) -> Result<(), NetError> {
        self.net.check(self.target, self.epoch)?;
        self.inner.send_frame(payload)
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, NetError> {
        self.net.check(self.target, self.epoch)?;
        self.inner.recv_frame()
    }
}

fn dial(net: &Arc<ChaosNet>, target: usize) -> Result<NetClient, NetError> {
    let (core, epoch) = net.dial(target)?;
    Ok(NetClient::new(Box::new(ChaosTransport {
        inner: LoopbackTransport::with_core(core),
        net: Arc::clone(net),
        target,
        epoch,
    })))
}

// ---- the harness ------------------------------------------------------

struct Cluster {
    net: Arc<ChaosNet>,
    storages: Vec<SimStorage>,
    nodes: Vec<Option<ClusterNode>>,
    clocks: Vec<Option<Arc<ManualClock>>>,
    /// Every observability context ever created, dead nodes included —
    /// the leader-per-term audit reads all of their flight recorders.
    all_obs: Vec<Arc<Obs>>,
    vsteps: Vec<u64>,
    now: u64,
}

impl Cluster {
    fn new() -> Self {
        let mut cluster = Self {
            net: ChaosNet::new(),
            storages: (0..N).map(|_| SimStorage::new()).collect(),
            nodes: (0..N).map(|_| None).collect(),
            clocks: (0..N).map(|_| None).collect(),
            all_obs: Vec::new(),
            vsteps: vec![0; N],
            now: 0,
        };
        for i in 0..N {
            cluster.boot(i);
        }
        cluster
    }

    /// Opens (or reopens) node `i` over its surviving storage and
    /// plugs it into the switchboard under a fresh incarnation.
    fn boot(&mut self, i: usize) {
        let (obs, clock) = Obs::manual(0);
        clock.set(self.now);
        let peers = (0..N)
            .filter(|j| *j != i)
            .map(|j| {
                let net = Arc::clone(&self.net);
                ClusterPeer {
                    id: j as u64,
                    addr: ([127, 0, 0, 1], 7000 + j as u16).into(),
                    connector: Arc::new(move || dial(&net, j)),
                }
            })
            .collect();
        let config = ClusterConfig {
            node_id: i as u64,
            grid: grid(),
            service: service_config(),
            durability: DurabilityOptions::default(),
            quorum: 1,
            majority: 2,
            heartbeat_nanos: 2 * TICK,
            miss_threshold: 3,
            election_base_nanos: 6 * TICK,
            election_stagger_nanos: 2 * TICK,
            ship_timeout: None,
        };
        let node = ClusterNode::new(
            config,
            peers,
            self.storages[i].clone_handle(),
            Arc::clone(&obs),
        )
        .expect("node opens on surviving storage");
        self.net.epochs[i].fetch_add(1, Ordering::AcqRel);
        self.net.cores.lock().expect("switchboard lock poisoned")[i] = Some(node.core().clone());
        self.net.alive[i].store(true, Ordering::Release);
        self.all_obs.push(obs);
        self.clocks[i] = Some(clock);
        self.nodes[i] = Some(node);
        self.vsteps[i] = 0;
    }

    /// Crashes node `i`: its process state is gone, its storage
    /// survives, and every connection to it is broken.
    fn kill(&mut self, i: usize) {
        self.net.alive[i].store(false, Ordering::Release);
        self.net.cores.lock().expect("switchboard lock poisoned")[i] = None;
        self.nodes[i] = None;
        self.clocks[i] = None;
    }

    /// One virtual 5ms step: every live node's clock advances, its
    /// protocol steps, and — if it holds the primary role — it runs
    /// one scheduling cycle, exactly like [`dpack_net::ClusterRunner`]
    /// does on a wall-clock thread.
    fn tick(&mut self) {
        self.now += TICK;
        for i in 0..N {
            let Some(node) = self.nodes[i].as_mut() else {
                continue;
            };
            self.clocks[i]
                .as_ref()
                .expect("live nodes keep their clock")
                .set(self.now);
            node.step(self.now);
            if let Some(service) = node.core().service() {
                self.vsteps[i] += 1;
                #[allow(clippy::cast_precision_loss)]
                service.run_cycle(self.vsteps[i] as f64);
            }
        }
    }

    fn primaries(&self) -> Vec<usize> {
        (0..N)
            .filter(|&i| self.nodes[i].as_ref().is_some_and(ClusterNode::is_primary))
            .collect()
    }

    /// Ticks until exactly one node leads **and** its replicator has
    /// at least `live` rejoined replicas (so ships can reach quorum).
    fn await_leader(&mut self, live: usize) -> Result<usize, Failed> {
        for _ in 0..400 {
            self.tick();
            let primaries = self.primaries();
            if primaries.len() > 1 {
                return Err(Failed::new(format!("two live primaries: {primaries:?}")));
            }
            if let [leader] = primaries[..] {
                let ready = self.nodes[leader]
                    .as_ref()
                    .and_then(|n| n.core().replicator())
                    .is_some_and(|r| r.live() >= live);
                if ready {
                    return Ok(leader);
                }
            }
        }
        Err(Failed::new(format!(
            "no leader with {live} live replicas within 400 ticks"
        )))
    }

    /// Submits each task to the leader, drives cycles, and returns the
    /// final decisions in task order.
    fn submit(&mut self, leader: usize, tasks: &[Task]) -> Result<Vec<Outcome>, Failed> {
        let mut client =
            dial(&self.net, leader).map_err(|e| Failed::new(format!("dial leader: {e}")))?;
        let mut handles = Vec::with_capacity(tasks.len());
        for t in tasks {
            handles.push(
                client
                    .submit_nowait(7, t)
                    .map_err(|e| Failed::new(format!("submit {}: {e}", t.id)))?,
            );
        }
        // Two cycles: one to ingest + decide, one of margin.
        self.tick();
        self.tick();
        let mut outcomes = Vec::with_capacity(handles.len());
        for (t, h) in tasks.iter().zip(handles) {
            outcomes.push(
                client
                    .wait_decision(h)
                    .map_err(|e| Failed::new(format!("decision {}: {e}", t.id)))?,
            );
        }
        Ok(outcomes)
    }
}

fn ledger_bits(service: &BudgetService) -> Vec<(u64, u64, Vec<u64>, Vec<u64>)> {
    service
        .ledger()
        .block_states()
        .into_iter()
        .map(|(id, b)| {
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            (id, b.granted, bits(&b.total), bits(&b.consumed))
        })
        .collect()
}

// ---- the property -----------------------------------------------------

/// One chaos schedule: per-task demand picks, which replica to crash
/// mid-run, and how many idle ticks to pad between phases.
type Schedule = (Vec<u8>, u8, u8);

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    (vecs(ints(0u8..3), 40..41), ints(0u8..2), ints(0u8..4))
}

#[test]
fn chaos_schedule_elects_once_per_term_and_conserves_every_acked_grant() {
    check_cases(
        "cluster_chaos::schedule",
        CASES,
        schedule_strategy(),
        |(demands, replica_pick, pad)| {
            let mut cluster = Cluster::new();
            let mut granted_ids: BTreeSet<u64> = BTreeSet::new();
            let demand_of = |id: u64| demands[id as usize % demands.len()];
            let pad_ticks = *pad as usize;

            // Phase A: cold bootstrap. Nothing leads; the protocol
            // must elect on its own (node 0's shorter stagger and the
            // all-equal ballots make it the term-1 winner, but the
            // assertion is only "exactly one").
            let leader_a = cluster.await_leader(2)?;
            let mut client = dial(&cluster.net, leader_a)
                .map_err(|e| Failed::new(format!("dial bootstrap leader: {e}")))?;
            for b in 0..BLOCKS {
                client
                    .register_block(&Block::new(b, RdpCurve::constant(&grid(), 4.0), 0.0))
                    .map_err(|e| Failed::new(format!("register block {b}: {e}")))?;
            }
            drop(client);
            let batch: Vec<Task> = (0..12).map(|id| task(id, demand_of(id))).collect();
            for (t, o) in batch.iter().zip(cluster.submit(leader_a, &batch)?) {
                prop_assert!(o.is_granted(), "bootstrap task {} refused: {o}", t.id);
                granted_ids.insert(t.id);
            }

            // Phase B: the leader crashes. A survivor must campaign,
            // win the next term, promote from its shipped stream, and
            // resync the other survivor — automatically.
            cluster.kill(leader_a);
            let leader_b = cluster.await_leader(1)?;
            prop_assert!(leader_b != leader_a, "the dead node cannot lead");
            // Resubmitting every acked task is refused as a duplicate:
            // the promoted fold carries the full record history, so no
            // acked grant was lost and none is double-charged.
            let resubmit: Vec<Task> = (0..12).map(|id| task(id, demand_of(id))).collect();
            for (t, o) in resubmit.iter().zip(cluster.submit(leader_b, &resubmit)?) {
                prop_assert!(
                    matches!(
                        o,
                        Outcome::Rejected {
                            code: ErrorCode::DuplicateTask,
                            ..
                        }
                    ),
                    "acked task {} must be refused as a duplicate, got {o}",
                    t.id
                );
            }
            let batch: Vec<Task> = (12..24).map(|id| task(id, demand_of(id))).collect();
            for (t, o) in batch.iter().zip(cluster.submit(leader_b, &batch)?) {
                prop_assert!(o.is_granted(), "post-failover task {} refused: {o}", t.id);
                granted_ids.insert(t.id);
            }

            // The crashed ex-leader rejoins: its storage carries the
            // promotion dirty-marker, so it reopens unattached and the
            // new leader resyncs it from a quiesced snapshot.
            cluster.boot(leader_a);
            cluster.await_leader(2)?;
            for _ in 0..pad_ticks {
                cluster.tick();
            }

            // Phase C: a (drawn) replica crashes. Quorum 1 keeps the
            // deployment writable through the other replica.
            let replicas: Vec<usize> = (0..N).filter(|&i| i != leader_b).collect();
            let victim = replicas[*replica_pick as usize % replicas.len()];
            cluster.kill(victim);
            cluster.await_leader(1)?;
            let batch: Vec<Task> = (24..32).map(|id| task(id, demand_of(id))).collect();
            for (t, o) in batch.iter().zip(cluster.submit(leader_b, &batch)?) {
                prop_assert!(o.is_granted(), "degraded task {} refused: {o}", t.id);
                granted_ids.insert(t.id);
            }
            cluster.boot(victim);
            cluster.await_leader(2)?;

            // Phase D: election storm — the second leader dies too.
            // The survivors (one of them the twice-rejoined node A)
            // elect a third leader; its fold is snapshot + suffix, and
            // fresh grants keep landing exactly once.
            cluster.kill(leader_b);
            let leader_d = cluster.await_leader(1)?;
            prop_assert!(leader_d != leader_b, "the dead node cannot lead");
            let batch: Vec<Task> = (32..40).map(|id| task(id, demand_of(id))).collect();
            for (t, o) in batch.iter().zip(cluster.submit(leader_d, &batch)?) {
                prop_assert!(o.is_granted(), "storm task {} refused: {o}", t.id);
                granted_ids.insert(t.id);
            }
            cluster.boot(leader_b);
            cluster.await_leader(2)?;
            for _ in 0..pad_ticks {
                cluster.tick();
            }

            // Invariant: at most one LeaderElected event per term,
            // across every incarnation's flight recorder.
            let mut winners: BTreeMap<u64, BTreeSet<u64>> = BTreeMap::new();
            for obs in &cluster.all_obs {
                for event in obs.recorder.dump() {
                    if event.kind == EventKind::LeaderElected {
                        winners.entry(event.a).or_default().insert(event.b);
                    }
                }
            }
            prop_assert!(!winners.is_empty(), "no election was recorded");
            for (term, nodes) in &winners {
                prop_assert!(
                    nodes.len() == 1,
                    "term {term} elected {} leaders: {nodes:?}",
                    nodes.len()
                );
            }

            // Invariant: conservation. Every unique Granted decision
            // is charged exactly once in the live leader ledger.
            prop_assert_eq!(granted_ids.len(), 40, "all 40 unique tasks were acked");
            let service = cluster.nodes[leader_d]
                .as_ref()
                .and_then(|n| n.core().service())
                .ok_or_else(|| Failed::new("final leader lost its service".to_string()))?;
            let live_bits = ledger_bits(&service);
            let live_granted: u64 = live_bits.iter().map(|(_, g, _, _)| g).sum();
            prop_assert_eq!(
                live_granted,
                granted_ids.len() as u64,
                "the live ledger charges each acked grant exactly once"
            );
            prop_assert!(
                service.ledger().unsound_blocks().is_empty(),
                "no block over budget"
            );
            drop(service);

            // Invariant: convergence. Folding each replica's surviving
            // logs reproduces the live leader ledger bit for bit —
            // through two promotions, three crashes, a dirty-marker
            // wipe, and snapshot resyncs.
            for i in 0..N {
                cluster.kill(i);
            }
            for i in (0..N).filter(|&i| i != leader_d) {
                let fold = BudgetService::recover(
                    grid(),
                    service_config(),
                    &cluster.storages[i],
                    DurabilityOptions::default(),
                )
                .map_err(|e| Failed::new(format!("fold replica {i}: {e}")))?;
                prop_assert_eq!(
                    &live_bits,
                    &ledger_bits(&fold),
                    "replica {} diverged from the leader",
                    i
                );
            }
            Ok(())
        },
    );
}
