//! dpack-check property suite for the wire protocol.
//!
//! Three layers:
//!
//! 1. **Codec roundtrip** — every message type, with arbitrary
//!    contents, decodes back to exactly what was encoded (floats by
//!    bit pattern: `PartialEq` on the message types compares the
//!    decoded values, and the curve fields are written as raw bits).
//! 2. **Adversarial frames** — truncating, bit-flipping, or
//!    length-inflating a valid frame stream never panics and never
//!    yields a frame whose payload differs from the original at that
//!    position; arbitrary junk through the message decoders never
//!    panics.
//! 3. **Loopback equivalence** — an arbitrary submission workload
//!    driven through the full protocol stack over the in-memory
//!    [`LoopbackTransport`] produces, task for task, the same final
//!    outcomes as the same workload submitted in-process to a twin
//!    service — and leaves the two ledgers in bit-identical states.

use std::sync::Arc;

use dp_accounting::{AlphaGrid, RdpCurve};
use dpack_check::{check_cases, floats, ints, prop_assert, prop_assert_eq, vecs, Strategy};
use dpack_core::problem::{Block, Task};
use dpack_net::obs::{Event, EventKind, Histogram, Sample, Span, SpanKind, TraceContext, Value};
use dpack_net::wire::{frame, FrameDecoder, HEADER};
use dpack_net::{
    admission_code, ErrorCode, NetClient, Outcome, Request, RequestFrame, Response, ResponseFrame,
    WireClusterStatus, WirePeer, WireStats, WireTask,
};
use dpack_service::{BudgetService, ServiceConfig};

const CASES: u32 = 48;

// ---- generators -------------------------------------------------------

fn wire_task_strategy() -> impl Strategy<Value = WireTask> {
    (
        ints(0u64..1_000),
        floats(0.0..4.0),
        (ints(0u8..2), floats(0.0..8.0)),
        vecs(floats(0.0..2.0), 0..5),
        vecs(ints(0u64..64), 0..5),
    )
        .prop_map(|(id, weight, (tpick, tval), demand, blocks)| WireTask {
            id,
            weight,
            arrival: (id % 7) as f64 * 0.5,
            timeout: (tpick == 1).then_some(tval),
            demand,
            blocks,
        })
}

/// A scenario drawing one request of every shape (`pick` selects).
type RequestSeed = (u8, u64, u32, Vec<WireTask>, f64);

/// One metrics sample derived from a drawn task — the task fields
/// choose the value kind, so all three codec legs (counter, gauge,
/// sparse histogram) are exercised across a run.
fn sample_of(i: usize, t: &WireTask, now: f64) -> Sample {
    let value = match t.id % 3 {
        0 => Value::Counter(t.id.wrapping_mul(7)),
        1 => Value::Gauge(now + i as f64),
        _ => {
            let h = Histogram::new();
            for (k, d) in t.demand.iter().enumerate() {
                h.record(t.id.wrapping_add(k as u64) << (k % 20));
                h.record_f64(d * 1e9);
            }
            Value::Histogram(Box::new(h.snapshot()))
        }
    };
    Sample {
        name: format!("dpack_prop_{i}"),
        labels: if i.is_multiple_of(2) {
            String::new()
        } else {
            format!("shard=\"{i}\"")
        },
        value,
    }
}

fn event_of(i: usize, t: &WireTask) -> Event {
    Event {
        seq: i as u64 + 1,
        kind: EventKind::from_u8(1 + (t.id % 10) as u8).expect("dense kinds"),
        a: t.id,
        b: t.blocks.first().copied().unwrap_or(0),
    }
}

fn span_of(i: usize, t: &WireTask) -> Span {
    Span {
        seq: i as u64 + 1,
        trace: t.id | 1,
        span: t.id.wrapping_mul(3) | 1,
        parent: t.id / 2,
        kind: SpanKind::from_u8(1 + (t.id % 11) as u8).expect("dense span kinds"),
        node: t.id % 5,
        start_nanos: t.id.wrapping_mul(7),
        end_nanos: t.id.wrapping_mul(9),
        a: t.blocks.first().copied().unwrap_or(0),
    }
}

fn request_from_seed((pick, id, tenant, mut tasks, now): RequestSeed) -> RequestFrame {
    let body = match pick % 14 {
        0 => Request::Hello {
            token: if id % 2 == 0 {
                None
            } else {
                Some(format!("tok-{tenant}"))
            },
        },
        1 => Request::Submit {
            tenant,
            task: tasks.pop().unwrap_or(WireTask {
                id: 1,
                weight: 1.0,
                arrival: 0.0,
                timeout: None,
                demand: vec![0.1],
                blocks: vec![0],
            }),
            trace: (id % 2 == 1).then_some(TraceContext {
                trace: id | 1,
                span: id.wrapping_mul(3) | 1,
            }),
        },
        2 => {
            // Trace lists are empty or pair 1:1 with the tasks.
            let traces = if id % 2 == 1 {
                tasks
                    .iter()
                    .map(|t| TraceContext {
                        trace: t.id | 1,
                        span: t.id.wrapping_mul(5) | 1,
                    })
                    .collect()
            } else {
                Vec::new()
            };
            Request::SubmitBatch {
                tenant,
                tasks,
                traces,
            }
        }
        3 => Request::RegisterBlock {
            id: id.wrapping_mul(3),
            arrival: now,
            capacity: tasks.first().map(|t| t.demand.clone()).unwrap_or_default(),
        },
        4 => Request::Stats,
        5 => Request::Snapshot { now },
        6 => Request::Metrics,
        7 => Request::Trace {
            since: id.wrapping_mul(11),
        },
        8 => Request::Replicate {
            term: id % 7,
            shard: tenant,
            seq: id.wrapping_mul(5),
            records: tasks.iter().map(|t| t.id.to_le_bytes().to_vec()).collect(),
            traces: tasks.iter().map(|t| t.id | 1).collect(),
        },
        9 => Request::Ping {
            term: id % 9,
            vector: tasks.iter().map(|t| t.id).collect(),
        },
        10 => Request::Vote {
            term: id % 9,
            candidate: u64::from(tenant),
            ballot: tasks.iter().map(|t| t.id).collect(),
        },
        11 => {
            if id % 2 == 0 {
                Request::ResyncStream {
                    term: id % 9,
                    shard: tenant,
                    base_seq: id.wrapping_mul(3),
                    snapshot: tasks.iter().flat_map(|t| t.id.to_le_bytes()).collect(),
                }
            } else {
                Request::ResyncCommit {
                    term: id % 9,
                    lineage: id % 9,
                }
            }
        }
        12 => Request::ClusterStatus,
        _ => Request::SpanDump {
            since: id.wrapping_mul(13),
        },
    };
    RequestFrame { id, body }
}

type ResponseSeed = (u8, u64, Vec<WireTask>, u16, f64);

fn response_from_seed((pick, id, tasks, raw_code, now): ResponseSeed) -> ResponseFrame {
    let code = ErrorCode::from_u16(1 + raw_code % 6).expect("admission codes are dense 1..=6");
    let outcome_of = |t: &WireTask| match t.id % 3 {
        0 => Outcome::Granted { allocated_at: now },
        1 => Outcome::Rejected {
            code,
            message: format!("task {} refused", t.id),
        },
        _ => Outcome::Evicted,
    };
    let body = match pick % 14 {
        0 => Response::Hello {
            alphas: tasks.first().map(|t| t.demand.clone()).unwrap_or_default(),
        },
        1 => Response::Decision {
            task: id,
            outcome: tasks.first().map(&outcome_of).unwrap_or(Outcome::Evicted),
        },
        2 => Response::BatchDecision {
            decisions: tasks.iter().map(|t| (t.id, outcome_of(t))).collect(),
        },
        3 => Response::BlockRegistered { id },
        4 => Response::Stats(WireStats {
            submitted: id,
            admitted: id / 2,
            rejected: id / 3,
            granted: id / 4,
            evicted: id / 5,
            cycles: id / 6,
            granted_weight: now,
            throughput: now * 2.0,
            queue_depth: id % 7,
            pending: id % 11,
        }),
        5 => Response::Snapshot {
            blocks: tasks
                .iter()
                .enumerate()
                .map(|(i, t)| (i as u64, t.demand.clone()))
                .collect(),
        },
        6 => Response::Error {
            code,
            message: "detail".into(),
        },
        7 => Response::Metrics {
            samples: tasks
                .iter()
                .enumerate()
                .map(|(i, t)| sample_of(i, t, now))
                .collect(),
        },
        8 => Response::Trace {
            events: tasks
                .iter()
                .enumerate()
                .map(|(i, t)| event_of(i, t))
                .collect(),
        },
        9 => Response::Pong {
            term: id % 9,
            is_primary: id % 2 == 0,
            lineage: id % 5,
            vector: tasks.iter().map(|t| t.id).collect(),
        },
        10 => Response::VoteReply {
            term: id % 9,
            granted: id % 2 == 1,
        },
        11 => Response::ResyncAck {
            stream: id as u32 % 5,
            durable: id.wrapping_mul(7),
        },
        12 => Response::ClusterStatus(WireClusterStatus {
            node_id: id % 7,
            is_primary: id % 2 == 0,
            term: id % 9,
            leader: id % 7,
            vector: tasks.iter().map(|t| t.id).collect(),
            peers: tasks
                .iter()
                .enumerate()
                .map(|(i, t)| WirePeer {
                    id: i as u64,
                    addr: format!("10.0.0.{i}:70{i}"),
                    state: (t.id % 3) as u8,
                    term: id % 9,
                    is_primary: false,
                    lag: t.blocks.clone(),
                    backoff_nanos: t.id.wrapping_mul(11),
                    resyncs: t.id % 4,
                })
                .collect(),
        }),
        _ => Response::SpanDump {
            spans: tasks
                .iter()
                .enumerate()
                .map(|(i, t)| span_of(i, t))
                .collect(),
        },
    };
    ResponseFrame { id, body }
}

// ---- 1: roundtrips ----------------------------------------------------

#[test]
fn prop_every_request_shape_round_trips() {
    check_cases(
        "every_request_shape_round_trips",
        CASES,
        (
            ints(0u8..14),
            ints(0u64..u64::MAX),
            ints(0u32..16),
            vecs(wire_task_strategy(), 0..4),
            floats(0.0..100.0),
        ),
        |seed| {
            let req = request_from_seed(seed.clone());
            let back = RequestFrame::decode(&req.encode())
                .map_err(|e| dpack_check::Failed::new(format!("decode failed: {e}")))?;
            prop_assert_eq!(back, req);
            Ok(())
        },
    );
}

#[test]
fn prop_every_response_shape_round_trips() {
    check_cases(
        "every_response_shape_round_trips",
        CASES,
        (
            ints(0u8..14),
            ints(1u64..u64::MAX),
            vecs(wire_task_strategy(), 0..4),
            ints(0u16..100),
            floats(0.0..100.0),
        ),
        |seed| {
            let resp = response_from_seed(seed.clone());
            let back = ResponseFrame::decode(&resp.encode())
                .map_err(|e| dpack_check::Failed::new(format!("decode failed: {e}")))?;
            prop_assert_eq!(back, resp);
            Ok(())
        },
    );
}

// ---- 2: adversarial frames -------------------------------------------

/// (two payloads, mutation pick, byte index seed, bit seed).
type MutationSeed = (Vec<u8>, Vec<u8>, u8, u64, u8);

#[test]
fn prop_mutated_frames_never_panic_and_never_misdecode() {
    check_cases(
        "mutated_frames_never_panic_and_never_misdecode",
        CASES,
        (
            vecs(ints(0u64..256).prop_map(|v| v as u8), 0..40),
            vecs(ints(0u64..256).prop_map(|v| v as u8), 0..40),
            ints(0u8..4),
            ints(0u64..1_000),
            ints(0u8..8),
        ),
        |(first, second, pick, index, bit): &MutationSeed| {
            let originals = [first.clone(), second.clone()];
            let mut stream = Vec::new();
            for p in &originals {
                stream.extend_from_slice(&frame(p));
            }
            match pick % 4 {
                0 => {
                    // Truncate anywhere.
                    stream.truncate(*index as usize % (stream.len() + 1));
                }
                1 => {
                    // Flip one bit anywhere.
                    let at = *index as usize % stream.len();
                    stream[at] ^= 1 << bit;
                }
                2 => {
                    // Inflate the first length field (claims more
                    // payload than exists).
                    let len = u32::from_le_bytes(stream[1..5].try_into().expect("sized")) as usize;
                    let bigger = (len + 1 + *index as usize % 512) as u32;
                    stream[1..5].copy_from_slice(&bigger.to_le_bytes());
                }
                _ => {
                    // Append garbage after valid frames.
                    stream.extend(std::iter::repeat_n(*bit, 1 + *index as usize % 32));
                }
            }
            let mut dec = FrameDecoder::new();
            dec.extend(&stream);
            let mut decoded = Vec::new();
            // An Ok(None) or Err end are both acceptable outcomes.
            while let Ok(Some(p)) = dec.next_frame() {
                decoded.push(p);
            }
            prop_assert!(
                decoded.len() <= originals.len(),
                "decoded {} frames from a 2-frame stream",
                decoded.len()
            );
            for (i, p) in decoded.iter().enumerate() {
                // A frame that decodes must be one of the originals at
                // its position — never a different "valid" message.
                prop_assert_eq!(p.clone(), originals[i].clone());
            }
            Ok(())
        },
    );
}

#[test]
fn prop_message_decoders_never_panic_on_junk() {
    check_cases(
        "message_decoders_never_panic_on_junk",
        CASES,
        vecs(ints(0u64..256).prop_map(|v| v as u8), 0..64),
        |junk| {
            // Either result is fine; what is being tested is that no
            // input can panic or over-allocate.
            let _ = RequestFrame::decode(junk);
            let _ = ResponseFrame::decode(junk);
            let mut dec = FrameDecoder::new();
            dec.extend(junk);
            let _ = dec.next_frame();
            Ok(())
        },
    );
}

#[test]
fn oversized_frame_headers_are_rejected_not_buffered() {
    // A peer claiming a 16 MiB+1 frame is cut off immediately — the
    // decoder must not wait for (or allocate) the claimed bytes.
    let mut huge = vec![dpack_net::wire::MAGIC];
    huge.extend_from_slice(&(dpack_net::wire::MAX_FRAME + 1).to_le_bytes());
    huge.extend_from_slice(&[0u8; 8]);
    let mut dec = FrameDecoder::new();
    dec.extend(&huge);
    assert!(dec.next_frame().is_err());
    assert!(dec.buffered() <= HEADER);
}

// ---- 3: loopback equivalence -----------------------------------------

/// One drawn submission: (block picks, eps, weight pick, reuse-id).
type SubSeed = (Vec<u64>, f64, u8, bool);

fn service(grid: &AlphaGrid) -> BudgetService {
    BudgetService::new(
        grid.clone(),
        ServiceConfig {
            shards: 2,
            workers: 1,
            unlock_steps: 1,
            default_timeout: Some(2.0),
            ..ServiceConfig::default()
        },
    )
}

#[test]
fn prop_loopback_protocol_is_equivalent_to_in_process_submission() {
    let grid = AlphaGrid::new(vec![2.0, 8.0]).expect("valid grid");
    check_cases(
        "loopback_protocol_is_equivalent_to_in_process_submission",
        24,
        vecs(
            (
                vecs(ints(0u64..8), 0..3), // Blocks 6..8 are unknown.
                floats(0.0..1.5),
                ints(0u8..14),
                dpack_check::bools(),
            ),
            1..20,
        ),
        |subs: &Vec<SubSeed>| {
            let remote_service = Arc::new(service(&grid));
            let twin = service(&grid);
            let mut client = NetClient::loopback(Arc::clone(&remote_service));
            prop_assert_eq!(client.grid().expect("hello"), grid.clone());
            for j in 0..6u64 {
                let block = Block::new(j, RdpCurve::constant(&grid, 1.0), 0.0);
                client.register_block(&block).expect("register");
                twin.register_block(block).expect("register");
            }

            // Same submission order through both surfaces. Ids repeat
            // on purpose (`reuse` draws a duplicate) — both sides must
            // reject the duplicate identically.
            let mut handles = Vec::new();
            let mut twin_rejects: Vec<Option<ErrorCode>> = Vec::new();
            for (i, (blocks, eps, wpick, reuse)) in subs.iter().enumerate() {
                let id = if *reuse && i > 0 {
                    (i - 1) as u64
                } else {
                    i as u64
                };
                let weight = if *wpick == 0 { 0.0 } else { f64::from(*wpick) };
                let mut task = Task::new(
                    id,
                    weight,
                    blocks.clone(),
                    RdpCurve::constant(&grid, *eps),
                    0.0,
                );
                task.blocks = blocks.clone(); // Undo normalization: raw lists travel as-is.
                let tenant = (i % 3) as u32;
                handles.push(client.submit_nowait(tenant, &task).expect("send"));
                twin_rejects.push(twin.submit(tenant, task).err().map(|e| admission_code(&e)));
            }

            // Drive both services through the same cycles — past the
            // 2.0 timeout horizon, so every pending task resolves.
            for step in 1..=4u64 {
                let now = step as f64;
                remote_service.run_cycle(now);
                twin.run_cycle(now);
            }

            // Task-for-task outcome equivalence.
            let twin_stats = twin.stats();
            for (i, handle) in handles.into_iter().enumerate() {
                let outcome = client.wait_decision(handle).expect("decision");
                match (&outcome, &twin_rejects[i]) {
                    (Outcome::Rejected { code, .. }, Some(twin_code)) => {
                        prop_assert_eq!(*code, *twin_code)
                    }
                    (Outcome::Granted { .. } | Outcome::Evicted, None) => {}
                    other => {
                        return Err(dpack_check::Failed::new(format!(
                            "submission {i}: remote {:?} vs twin rejection {:?}",
                            other.0, other.1
                        )))
                    }
                }
            }
            let granted_remote = remote_service.stats_summary().granted;
            prop_assert_eq!(granted_remote, twin_stats.granted.len() as u64);

            // And the ledgers are bit-identical.
            let (a, b) = (
                remote_service.ledger().block_states(),
                twin.ledger().block_states(),
            );
            prop_assert_eq!(a.len(), b.len());
            for (id, x) in &a {
                let y = &b[id];
                prop_assert_eq!(x.granted, y.granted);
                let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
                prop_assert_eq!(bits(&x.consumed), bits(&y.consumed));
                prop_assert_eq!(bits(&x.total), bits(&y.total));
            }
            Ok(())
        },
    );
}
