//! The distributed-tracing acceptance suite: a three-node cluster
//! under manual clocks and loopback transports submits traced tasks,
//! merges every node's span dump, and pins the resulting trees
//! **exactly** — every granted task leaves one complete cross-node
//! tree (admission → cycle → WAL flush → replication ship → replica
//! append → ack on both replicas) whose span ids, parent links, and
//! recording nodes all match the derived-id contract. The same run
//! then checks the introspection plane: `ClusterStatus` answers from
//! the primary and a replica agree with the live role state, and the
//! per-peer replication lag matches the ledgers bit for bit — both
//! settled (all zeros) and after one replica is cut off mid-run.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use dp_accounting::{AlphaGrid, RdpCurve};
use dpack_core::problem::{Block, Task};
use dpack_net::obs::trace::{assemble_trees, span_id, SlowTraceSampler};
use dpack_net::obs::{ManualClock, Obs, Span, SpanKind, TraceContext, Tracer, Value};
use dpack_net::{
    ClusterConfig, ClusterNode, ClusterPeer, LoopbackTransport, NetClient, NetError, ReplyHandle,
    ServiceCore, Transport,
};
use dpack_service::wal::SimStorage;
use dpack_service::{DurabilityOptions, ServiceConfig, StatsRetention};

const N: usize = 3;
const BLOCKS: u64 = 4;
/// Virtual time advances in 5ms steps, exactly like the chaos suite.
const TICK: u64 = 5_000_000;

fn grid() -> AlphaGrid {
    AlphaGrid::new(vec![4.0, 16.0]).expect("valid grid")
}

/// One shard keeps the expected tree single-stream: one WAL flush and
/// one ship per grant, which is what the exact span-set assertion
/// below pins.
fn service_config() -> ServiceConfig {
    ServiceConfig {
        shards: 1,
        workers: 1,
        unlock_steps: 1,
        retention: StatsRetention::Unbounded,
        ..ServiceConfig::default()
    }
}

fn task(id: u64) -> Task {
    Task::new(
        id,
        1.0,
        vec![id % BLOCKS],
        RdpCurve::constant(&grid(), 0.25),
        0.0,
    )
}

// ---- the simulated network -------------------------------------------

/// The switchboard: which nodes answer, behind which request core.
/// Cutting a node refuses new dials and breaks every established
/// connection to it.
struct Net {
    cores: Mutex<Vec<Option<ServiceCore>>>,
    alive: Vec<AtomicBool>,
}

impl Net {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            cores: Mutex::new((0..N).map(|_| None).collect()),
            alive: (0..N).map(|_| AtomicBool::new(true)).collect(),
        })
    }

    fn check(&self, target: usize) -> Result<(), NetError> {
        if !self.alive[target].load(Ordering::Acquire) {
            return Err(NetError::Closed);
        }
        Ok(())
    }
}

struct CutTransport {
    inner: LoopbackTransport,
    net: Arc<Net>,
    target: usize,
}

impl Transport for CutTransport {
    fn send_frame(&mut self, payload: &[u8]) -> Result<(), NetError> {
        self.net.check(self.target)?;
        self.inner.send_frame(payload)
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, NetError> {
        self.net.check(self.target)?;
        self.inner.recv_frame()
    }
}

fn dial(net: &Arc<Net>, target: usize) -> Result<NetClient, NetError> {
    net.check(target)?;
    let core = net.cores.lock().expect("switchboard lock poisoned")[target]
        .clone()
        .ok_or(NetError::Closed)?;
    Ok(NetClient::new(Box::new(CutTransport {
        inner: LoopbackTransport::with_core(core),
        net: Arc::clone(net),
        target,
    })))
}

// ---- the harness ------------------------------------------------------

struct Cluster {
    net: Arc<Net>,
    nodes: Vec<ClusterNode>,
    clocks: Vec<Arc<ManualClock>>,
    obs: Vec<Arc<Obs>>,
    stepping: Vec<bool>,
    vsteps: Vec<u64>,
    now: u64,
}

impl Cluster {
    fn new() -> Self {
        let net = Net::new();
        let mut nodes = Vec::with_capacity(N);
        let mut clocks = Vec::with_capacity(N);
        let mut all_obs = Vec::with_capacity(N);
        for i in 0..N {
            let (obs, clock) = Obs::manual(0);
            let peers = (0..N)
                .filter(|j| *j != i)
                .map(|j| {
                    let net = Arc::clone(&net);
                    ClusterPeer {
                        id: j as u64,
                        addr: ([127, 0, 0, 1], 7000 + j as u16).into(),
                        connector: Arc::new(move || dial(&net, j)),
                    }
                })
                .collect();
            let config = ClusterConfig {
                node_id: i as u64,
                grid: grid(),
                service: service_config(),
                durability: DurabilityOptions::default(),
                quorum: 1,
                majority: 2,
                heartbeat_nanos: 2 * TICK,
                miss_threshold: 3,
                election_base_nanos: 6 * TICK,
                election_stagger_nanos: 2 * TICK,
                ship_timeout: None,
            };
            let node =
                ClusterNode::new(config, peers, Box::new(SimStorage::new()), Arc::clone(&obs))
                    .expect("node opens");
            net.cores.lock().expect("switchboard lock poisoned")[i] = Some(node.core().clone());
            nodes.push(node);
            clocks.push(clock);
            all_obs.push(obs);
        }
        Self {
            net,
            nodes,
            clocks,
            obs: all_obs,
            stepping: vec![true; N],
            vsteps: vec![0; N],
            now: 0,
        }
    }

    fn tick(&mut self) {
        self.now += TICK;
        for i in 0..N {
            if !self.stepping[i] {
                continue;
            }
            self.clocks[i].set(self.now);
            self.nodes[i].step(self.now);
            if let Some(service) = self.nodes[i].core().service() {
                self.vsteps[i] += 1;
                #[allow(clippy::cast_precision_loss)]
                service.run_cycle(self.vsteps[i] as f64);
            }
        }
    }

    fn await_leader(&mut self, live: usize) -> usize {
        for _ in 0..400 {
            self.tick();
            let primaries: Vec<usize> = (0..N)
                .filter(|&i| self.stepping[i] && self.nodes[i].is_primary())
                .collect();
            assert!(primaries.len() <= 1, "two live primaries: {primaries:?}");
            if let [leader] = primaries[..] {
                let ready = self.nodes[leader]
                    .core()
                    .replicator()
                    .is_some_and(|r| r.live() >= live);
                if ready {
                    return leader;
                }
            }
        }
        panic!("no leader with {live} live replicas within 400 ticks");
    }

    /// Cuts node `i` off the network — dials and established frames
    /// both fail — and stops stepping it, freezing its ledger where
    /// the last shipped batch left it.
    fn cut(&mut self, i: usize) {
        self.net.alive[i].store(false, Ordering::Release);
        self.stepping[i] = false;
    }

    /// Drives two cycles and asserts every handle resolved to a grant.
    fn settle_granted(&mut self, client: &mut NetClient, handles: Vec<(u64, ReplyHandle)>) {
        self.tick();
        self.tick();
        for (id, h) in handles {
            let outcome = client.wait_decision(h).expect("decision");
            assert!(outcome.is_granted(), "task {id} refused: {outcome}");
        }
    }
}

// ---- the acceptance property ------------------------------------------

#[test]
#[allow(clippy::too_many_lines)]
fn traced_grants_assemble_into_exact_cross_node_trees_and_status_lag_matches_the_ledgers() {
    let mut cluster = Cluster::new();
    let leader = cluster.await_leader(2);
    let leader_id = leader as u64;
    let replicas: Vec<u64> = (0..N as u64).filter(|&i| i != leader_id).collect();

    let mut client = dial(&cluster.net, leader).expect("dial leader");
    for b in 0..BLOCKS {
        client
            .register_block(&Block::new(b, RdpCurve::constant(&grid(), 8.0), 0.0))
            .expect("register block");
    }

    // Six traced submissions interleaved with four untraced ones: the
    // trace set must cover exactly the traced six, and untraced tasks
    // must stay span-free (the zero-overhead contract).
    let tracer = Tracer::seeded(0x7ACE);
    let traced: Vec<(Task, TraceContext)> = (0..6).map(|id| (task(id), tracer.start())).collect();
    let mut handles = Vec::new();
    for (t, ctx) in &traced {
        handles.push((
            t.id,
            client
                .submit_traced_nowait(7, t, *ctx)
                .expect("submit traced"),
        ));
    }
    for id in 6..10 {
        let t = task(id);
        handles.push((id, client.submit_nowait(7, &t).expect("submit untraced")));
    }
    cluster.settle_granted(&mut client, handles);

    // Merge every node's span dump (the paginated wire path) into
    // causal trees.
    let dumps: Vec<Vec<Span>> = (0..N)
        .map(|i| {
            dial(&cluster.net, i)
                .expect("dial node")
                .span_dump_all()
                .expect("span dump")
        })
        .collect();
    let trees = assemble_trees(dumps);
    let want_traces: BTreeSet<u64> = traced.iter().map(|(_, c)| c.trace).collect();
    let got_traces: BTreeSet<u64> = trees.iter().map(|t| t.trace).collect();
    assert_eq!(
        got_traces, want_traces,
        "exactly the traced submissions leave span trees"
    );

    // Exact structure, per trace: every span id, parent link, and
    // recording node is derived from the trace id alone, so the whole
    // tree is predictable — and any propagation bug breaks it.
    let phases = [
        SpanKind::PhaseIngest,
        SpanKind::PhaseLocal,
        SpanKind::PhaseCross,
        SpanKind::PhaseFinalize,
    ];
    for (t, ctx) in &traced {
        let tree = trees
            .iter()
            .find(|tr| tr.trace == ctx.trace)
            .expect("one tree per traced task");
        assert!(
            tree.is_complete(2),
            "task {} tree incomplete: {tree:?}",
            t.id
        );
        let cycle = span_id(ctx.trace, SpanKind::Cycle, 0);
        let ship = span_id(ctx.trace, SpanKind::ReplShip, 0);
        let mut expected: Vec<(SpanKind, u64, u64, u64)> = vec![
            (SpanKind::Grant, ctx.span, 0, leader_id),
            (
                SpanKind::QueueWait,
                span_id(ctx.trace, SpanKind::QueueWait, 0),
                ctx.span,
                leader_id,
            ),
            (SpanKind::Cycle, cycle, ctx.span, leader_id),
            (
                SpanKind::WalFlush,
                span_id(ctx.trace, SpanKind::WalFlush, 0),
                cycle,
                leader_id,
            ),
            (SpanKind::ReplShip, ship, cycle, leader_id),
            (
                SpanKind::QuorumWait,
                span_id(ctx.trace, SpanKind::QuorumWait, 0),
                ship,
                leader_id,
            ),
        ];
        for kind in phases {
            expected.push((kind, span_id(ctx.trace, kind, 0), cycle, leader_id));
        }
        for &r in &replicas {
            expected.push((
                SpanKind::ReplicaAppend,
                span_id(ctx.trace, SpanKind::ReplicaAppend, r.wrapping_shl(32)),
                ship,
                r,
            ));
        }
        expected.sort_unstable();
        let mut got: Vec<(SpanKind, u64, u64, u64)> = tree
            .spans
            .iter()
            .map(|s| (s.kind, s.span, s.parent, s.node))
            .collect();
        got.sort_unstable();
        assert_eq!(got, expected, "task {} span tree", t.id);

        // Payload words: stream/shard addresses, the quorum-closing
        // link ordinal (quorum 1 → the first link acks it closed),
        // and the shipped batch seq both replicas agree on.
        let flush = tree.of_kind(SpanKind::WalFlush);
        assert!(flush.iter().all(|s| s.a == 0), "shard-0 flush address");
        assert!(tree.of_kind(SpanKind::ReplShip)[0].a == 0, "shard-0 stream");
        assert_eq!(tree.of_kind(SpanKind::QuorumWait)[0].a, 0, "closing link");
        let appends = tree.of_kind(SpanKind::ReplicaAppend);
        assert_eq!(
            appends[0].a, appends[1].a,
            "both replicas applied the same batch"
        );
        assert!(appends[0].a >= 1, "batch seqs start at 1");

        // Causal timing, within the leader's clock domain: the root
        // covers the queue wait and the deciding cycle.
        let root = tree.root().expect("root span");
        let cycle_span = tree.of_kind(SpanKind::Cycle)[0];
        assert!(root.start_nanos <= cycle_span.start_nanos);
        assert!(cycle_span.end_nanos <= root.end_nanos);
    }

    // The slow-trace sampler keeps the slowest complete trees and the
    // chrome://tracing export names every kept trace.
    let mut sampler = SlowTraceSampler::new(3, 2);
    for tree in &trees {
        sampler.offer(tree.clone());
    }
    assert_eq!(sampler.trees().len(), 3, "three slowest of six kept");
    let json = sampler.export_chrome();
    assert!(json.starts_with("{\"traceEvents\":[") && json.ends_with("]}"));
    for tree in sampler.trees() {
        assert!(json.contains(&format!("{:016x}", tree.trace)));
    }

    // ---- the introspection plane: settled cluster ---------------------

    let status = client.cluster_status().expect("leader status");
    assert!(status.is_primary);
    assert_eq!(status.node_id, leader_id);
    assert_eq!(status.leader, leader_id);
    assert_eq!(status.term, cluster.nodes[leader].current_term());
    let repl = cluster.nodes[leader]
        .core()
        .replicator()
        .expect("leader replicator");
    assert_eq!(status.vector, repl.vector(), "shipped seq vector");
    assert_eq!(status.peers.len(), N - 1);
    for peer in &status.peers {
        let replica_vector = cluster.nodes[peer.id as usize]
            .core()
            .replica_node()
            .expect("replica role")
            .wal()
            .vector();
        assert_eq!(
            status.vector, replica_vector,
            "settled replicas hold the full stream"
        );
        assert_eq!(
            peer.lag,
            vec![0; status.vector.len()],
            "no lag when settled"
        );
        assert_eq!(peer.state, 0, "peer {} is Up", peer.id);
    }
    // And the primary's lag gauges agree: nothing shipped is unacked.
    let snapshot = cluster.obs[leader].registry.snapshot();
    for labels in ["stream=\"shard-0\"", "stream=\"coord\""] {
        match snapshot.get("dpack_repl_lag", labels) {
            Some(Value::Gauge(v)) => assert_eq!(*v, 0.0, "{labels} lag gauge"),
            other => panic!("missing dpack_repl_lag {labels}: {other:?}"),
        }
    }

    // A replica answers for itself: its own vector, the leader it
    // follows, and the topology view pushed by the failure detector.
    let follower = replicas[0] as usize;
    let mut follower_client = dial(&cluster.net, follower).expect("dial follower");
    let follower_status = follower_client.cluster_status().expect("follower status");
    assert!(!follower_status.is_primary);
    assert_eq!(follower_status.node_id, replicas[0]);
    assert_eq!(follower_status.leader, leader_id);
    assert_eq!(
        follower_status.vector,
        cluster.nodes[follower]
            .core()
            .replica_node()
            .expect("replica role")
            .wal()
            .vector()
    );
    assert_eq!(follower_status.peers.len(), N - 1);

    // ---- the introspection plane: one replica cut off ------------------

    // Quorum 1 keeps the deployment writable; the cut replica's ledger
    // freezes, and the leader's per-peer lag must equal its own
    // shipped vector minus that frozen ledger — bit for bit.
    let victim = replicas[1] as usize;
    cluster.cut(victim);
    let mut handles = Vec::new();
    for id in 10..16 {
        let t = task(id);
        handles.push((id, client.submit_nowait(7, &t).expect("submit degraded")));
    }
    cluster.settle_granted(&mut client, handles);
    for _ in 0..20 {
        cluster.tick(); // Let the failure detector and redials settle.
    }

    let status = client.cluster_status().expect("degraded status");
    assert_eq!(status.vector, repl.vector());
    for peer in &status.peers {
        let replica_vector = cluster.nodes[peer.id as usize]
            .core()
            .replica_node()
            .expect("replica role")
            .wal()
            .vector();
        let want_lag: Vec<u64> = status
            .vector
            .iter()
            .zip(&replica_vector)
            .map(|(shipped, acked)| shipped.saturating_sub(*acked))
            .collect();
        assert_eq!(
            peer.lag, want_lag,
            "peer {} lag matches its ledger bit for bit",
            peer.id
        );
    }
    let dead = status
        .peers
        .iter()
        .find(|p| p.id == victim as u64)
        .expect("cut peer listed");
    assert!(
        dead.lag.iter().any(|&l| l > 0),
        "the cut replica fell behind: {:?}",
        dead.lag
    );
    assert_ne!(dead.state, 0, "the cut replica is no longer Up");
    let live = status
        .peers
        .iter()
        .find(|p| p.id == replicas[0])
        .expect("live peer listed");
    assert_eq!(live.state, 0, "the surviving replica stays Up");
    assert_eq!(live.lag, vec![0; status.vector.len()]);
}
