//! Remote-frontend hardening: broken connections leave the pool,
//! hostile servers cannot corrupt the pipeline, slow readers are cut
//! off at the buffering caps, and dying clients leave a trace.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dp_accounting::{AlphaGrid, RdpCurve};
use dpack_core::problem::{Block, Task};
use dpack_net::wire::{frame_into, FrameDecoder};
use dpack_net::{
    ClientPool, ErrorCode, NetClient, NetError, NetServer, Request, RequestFrame, Response,
    ResponseFrame, ServiceCore, Transport,
};
use dpack_service::{BudgetService, ServiceConfig, ServiceHandle, StatsRetention};

fn grid() -> AlphaGrid {
    AlphaGrid::new(vec![2.0, 4.0, 16.0]).expect("valid grid")
}

fn service(shards: usize, workers: usize) -> Arc<BudgetService> {
    Arc::new(BudgetService::new(
        grid(),
        ServiceConfig {
            shards,
            workers,
            unlock_steps: 1,
            retention: StatsRetention::Unbounded,
            ..ServiceConfig::default()
        },
    ))
}

fn task(id: u64, blocks: Vec<u64>, eps: f64) -> Task {
    Task::new(id, 1.0, blocks, RdpCurve::constant(&grid(), eps), 0.0)
}

/// A connection that dies mid-use is marked broken, discarded on drop,
/// and the pool replenishes by redialing — landing on whichever
/// candidate is alive.
#[test]
fn a_broken_connection_is_discarded_and_the_pool_redials() {
    let svc_a = service(1, 1);
    let svc_b = service(1, 1);
    let server_a = NetServer::bind(Arc::clone(&svc_a), "127.0.0.1:0").expect("bind a");
    let server_b = NetServer::bind(Arc::clone(&svc_b), "127.0.0.1:0").expect("bind b");
    let (addr_a, addr_b) = (server_a.local_addr(), server_b.local_addr());
    let dials = Arc::new(AtomicUsize::new(0));
    let dial_count = Arc::clone(&dials);
    let pool = ClientPool::with_connector(
        move || {
            dial_count.fetch_add(1, Ordering::SeqCst);
            NetClient::connect(addr_a).or_else(|_| NetClient::connect(addr_b))
        },
        1,
    )
    .expect("pool");
    assert_eq!(pool.live(), 1);

    // A healthy round trip through server A.
    assert_eq!(pool.get().grid().expect("hello"), grid());
    assert_eq!(pool.live(), 1);

    // Kill server A while the connection is checked out: the next
    // round trip on it fails mid-pipeline.
    {
        let mut client = pool.get();
        server_a.stop();
        let err = client.grid().expect_err("server died");
        assert!(matches!(err, NetError::Closed | NetError::Io(_)), "{err:?}");
        assert!(client.is_broken(), "a dead transport poisons the client");
    } // Drop returns it; the pool must discard, not re-idle.
    assert_eq!(pool.live(), 0, "the broken connection left the pool");

    // The next checkout redials and lands on B; the pool is whole again.
    let before = dials.load(Ordering::SeqCst);
    assert_eq!(pool.get().grid().expect("hello via b"), grid());
    assert!(dials.load(Ordering::SeqCst) > before, "must have redialed");
    assert_eq!(pool.live(), 1);
    server_b.stop();
}

/// A hostile transport that ignores requests and plays back scripted
/// response payloads.
struct ScriptedTransport {
    replies: std::collections::VecDeque<Vec<u8>>,
}

impl Transport for ScriptedTransport {
    fn send_frame(&mut self, _payload: &[u8]) -> Result<(), NetError> {
        Ok(())
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, NetError> {
        self.replies.pop_front().ok_or(NetError::Closed)
    }
}

/// A server repeating a response id must surface as a protocol error,
/// not silently replace the stashed response (which would hand a later
/// waiter the wrong decision).
#[test]
fn duplicate_response_ids_surface_as_protocol_errors() {
    let decision = |id: u64| {
        ResponseFrame {
            id,
            body: Response::Decision {
                task: 9,
                outcome: dpack_net::Outcome::Evicted,
            },
        }
        .encode()
    };
    // The hostile server answers request 2 twice while the client
    // waits on request 1.
    let mut client = NetClient::new(Box::new(ScriptedTransport {
        replies: [decision(2), decision(2), decision(1)].into(),
    }));
    let h1 = client
        .submit_nowait(0, &task(1, vec![0], 0.1))
        .expect("send");
    let _h2 = client
        .submit_nowait(0, &task(2, vec![0], 0.1))
        .expect("send");
    let err = client.wait_decision(h1).expect_err("duplicate id");
    match &err {
        NetError::Protocol(msg) => assert!(
            msg.contains("duplicate response"),
            "wrong protocol error: {msg}"
        ),
        other => panic!("expected a protocol error, got {other:?}"),
    }
    assert!(client.is_broken(), "a desynced stream poisons the client");
}

/// Reads framed responses off a raw socket until EOF; returns the
/// decoded frames.
fn read_all_frames(stream: &mut TcpStream) -> Vec<ResponseFrame> {
    use std::io::Read;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut bytes = Vec::new();
    // A reset is how a cutoff ends when the peer closed with unread
    // request bytes still inbound — everything sent before it is
    // already buffered and decodes below.
    match stream.read_to_end(&mut bytes) {
        Ok(_) => {}
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {}
        Err(e) => panic!("read until close: {e}"),
    }
    let mut dec = FrameDecoder::new();
    dec.extend(&bytes);
    let mut frames = Vec::new();
    while let Some(payload) = dec.next_frame().expect("valid frames") {
        frames.push(ResponseFrame::decode(&payload).expect("decodes"));
    }
    frames
}

/// A client that pipelines requests without reading replies grows the
/// server's write buffer; past the cap it gets one final `Overloaded`
/// error frame and the connection closes.
#[test]
fn a_slow_reader_is_cut_off_at_the_buffer_cap() {
    let service = service(1, 1);
    let server = NetServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    raw.set_nodelay(true).expect("nodelay");
    // 1M pipelined Hellos (tens of MB of replies) with nothing read:
    // far past the 1 MiB write-buffer cap even after the kernel's
    // autotuned loopback socket buffers absorb their share.
    const FLOOD: u64 = 1_000_000;
    let mut out = Vec::new();
    for id in 1..=FLOOD {
        let payload = RequestFrame {
            id,
            body: Request::Hello { token: None },
        }
        .encode();
        frame_into(&mut out, &payload);
    }
    // Once the cap trips the server stops reading, so the tail of the
    // flood may never drain from the kernel buffers — a short write (or
    // a reset) here is part of the scenario, not a failure.
    raw.set_write_timeout(Some(Duration::from_millis(500)))
        .expect("timeout");
    let _ = raw.write_all(&out);

    let frames = read_all_frames(&mut raw);
    let last = frames.last().expect("at least the parting shot");
    assert_eq!(last.id, 0, "the cutoff is a parting shot");
    assert!(
        matches!(
            last.body,
            Response::Error {
                code: ErrorCode::Overloaded,
                ..
            }
        ),
        "expected Overloaded, got {:?}",
        last.body
    );
    assert!(
        (frames.len() as u64) < FLOOD,
        "the connection must close before answering the whole flood"
    );
    // The cutoff is visible to the operator.
    let mut probe = NetClient::connect(server.local_addr()).expect("connect");
    let metrics = probe.metrics().expect("scrape");
    assert_eq!(metrics.counter_total("dpack_overloaded_conns_total"), 1);
    server.stop();
}

/// Undecided submissions hold server memory (a `PendingReply` each), so
/// they are capped per connection too — a tenant flooding submissions
/// while no cycle runs is cut off, and the cutoff does not disturb a
/// well-behaved connection.
#[test]
fn pending_decisions_are_capped_per_connection() {
    let service = service(1, 1);
    service
        .register_block(Block::new(0, RdpCurve::constant(&grid(), 1e9), 0.0))
        .expect("block");
    let server = NetServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    // No cycles run, so every submission parks a pending decision; one
    // past the cap trips the cutoff.
    let mut handles = Vec::new();
    for id in 0..4097u64 {
        handles.push(
            client
                .submit_nowait(0, &task(id, vec![0], 1e-9))
                .expect("send"),
        );
    }
    let err = client
        .wait_decision(handles.remove(0))
        .expect_err("the flood must be cut off before any decision");
    assert!(
        matches!(
            err,
            NetError::Remote {
                code: ErrorCode::Overloaded,
                ..
            }
        ),
        "expected Overloaded, got {err:?}"
    );
    assert!(client.is_broken());

    // A fresh, modest connection is unaffected.
    let mut probe = NetClient::connect(server.local_addr()).expect("connect");
    assert_eq!(probe.grid().expect("hello"), grid());
    server.stop();
}

/// A peer dying mid-frame (EOF with a partial frame buffered) used to
/// vanish without a trace; now it lands in the violation counter and
/// the flight recorder.
#[test]
fn a_client_dying_mid_frame_leaves_a_trace() {
    let service = service(1, 1);
    let server = NetServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    {
        let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
        let payload = RequestFrame {
            id: 1,
            body: Request::Hello { token: None },
        }
        .encode();
        let mut framed = Vec::new();
        frame_into(&mut framed, &payload);
        // A valid frame prefix that promises more bytes than ever come.
        raw.write_all(&framed[..framed.len() - 3]).expect("partial");
    } // Drop: EOF with a partial frame buffered in the server's decoder.

    let mut probe = NetClient::connect(server.local_addr()).expect("connect");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let metrics = probe.metrics().expect("scrape");
        if metrics.counter_total("dpack_protocol_violations_total") == 1 {
            let events = probe.trace(0).expect("trace");
            assert!(events
                .iter()
                .any(|e| e.kind == dpack_net::obs::EventKind::ProtocolViolation));
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "mid-frame EOF never surfaced in the metrics"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    server.stop();
}

/// Pool contention with a panicking borrower: all connections checked
/// out, one borrower panics mid-request — nothing deadlocks and the
/// pool keeps its capacity.
#[test]
fn a_panicking_borrower_neither_deadlocks_nor_shrinks_the_pool() {
    let service = service(4, 2);
    for j in 0..8u64 {
        service
            .register_block(Block::new(j, RdpCurve::constant(&grid(), 4.0), 0.0))
            .expect("block");
    }
    let server = NetServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let cycles = ServiceHandle::spawn(Arc::clone(&service), Duration::from_millis(1));
    let pool = ClientPool::connect(server.local_addr(), 2).expect("pool");

    std::thread::scope(|s| {
        let panicker = s.spawn(|| {
            let mut client = pool.get();
            // An unknown block, so the orphaned reply is a rejection
            // and the grant count below stays exact.
            let _ = client.submit_nowait(9, &task(10_000, vec![99], 0.01));
            panic!("borrower dies mid-request");
        });
        for tenant in 0..6u32 {
            let pool = &pool;
            s.spawn(move || {
                for i in 0..10u64 {
                    let id = u64::from(tenant) * 100 + i;
                    let t = task(id, vec![id % 8], 0.05);
                    let outcome = pool.get().submit(tenant, &t).expect("submit");
                    assert!(outcome.is_granted(), "fits: {outcome}");
                }
            });
        }
        assert!(panicker.join().is_err(), "the borrower must have panicked");
    });
    // The panicked borrower's connection came back; full capacity.
    assert_eq!(pool.live(), 2);
    assert_eq!(service.stats_summary().granted, 60);
    cycles.stop();
    server.stop();
}

/// A secured node refuses wrong-token handshakes and any request
/// before a successful one — with the stable `unauthorized` code on
/// the wire and every refusal counted in `dpack_auth_rejected_total`.
#[test]
fn a_secured_node_refuses_and_counts_bad_handshakes() {
    let service = service(1, 1);
    let core = ServiceCore::new(Arc::clone(&service)).with_secret("cluster-secret");
    let server = NetServer::bind_core(core, "127.0.0.1:0").expect("bind secured");
    let rejected = || {
        service
            .obs()
            .registry
            .snapshot()
            .counter_total("dpack_auth_rejected_total")
    };
    let unauthorized = |err: &NetError| {
        matches!(
            err,
            NetError::Remote {
                code: ErrorCode::Unauthorized,
                ..
            }
        )
    };

    // A wrong token is refused (constant-time compare server-side)…
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let err = client
        .handshake(Some("cluster-secret-almost"))
        .expect_err("wrong token");
    assert!(unauthorized(&err), "{err:?}");
    assert_eq!(rejected(), 1);
    // …a missing token too (`grid()` is the tokenless handshake)…
    let err = client.grid().expect_err("missing token");
    assert!(unauthorized(&err), "{err:?}");
    assert_eq!(rejected(), 2);
    // …and so is any request smuggled in before the handshake: the
    // connection stays usable (the protocol was not violated) but
    // nothing reaches the service.
    let err = client
        .register_block(&Block::new(0, RdpCurve::constant(&grid(), 1.0), 0.0))
        .expect_err("request before handshake");
    assert!(unauthorized(&err), "{err:?}");
    assert_eq!(rejected(), 3);
    assert!(!client.is_broken(), "a refusal is a reply, not a cut line");

    // The right token flips the connection to authed; requests flow
    // and the rejection counter stops moving.
    assert_eq!(
        client.handshake(Some("cluster-secret")).expect("handshake"),
        grid()
    );
    client
        .register_block(&Block::new(0, RdpCurve::constant(&grid(), 1.0), 0.0))
        .expect("authed request reaches the service");
    assert_eq!(rejected(), 3);
    server.stop();
}
