//! Self-healing replication, observed through its instruments: the
//! `dpack_repl_*` counters and the live-replica gauge must tell the
//! exact story of a replica's life — hang, suspect, backoff, redial,
//! fast-path rejoin, state loss, full resync — under a [`ManualClock`]
//! so every backoff window is crossed deliberately.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dp_accounting::{AlphaGrid, RdpCurve};
use dpack_core::problem::Block;
use dpack_net::obs::{Clock, EventKind, Obs, Value};
use dpack_net::{
    Connector, LoopbackTransport, NetClient, NetError, ReplicaNode, Replicator, ServiceCore,
    Transport,
};
use dpack_service::wal::SimStorage;
use dpack_service::{BudgetService, DurabilityOptions, ReplStream, ReplicationSink, ServiceConfig};

/// A loopback transport whose acks can be made to hang: with the flag
/// set, `recv_frame` surfaces [`NetError::Timeout`] — exactly what a
/// ship sees when `SO_RCVTIMEO` expires on a wedged replica — while
/// `send_frame` still delivers (the batch lands, the ack does not).
struct HangableTransport {
    inner: LoopbackTransport,
    hang: Arc<AtomicBool>,
}

impl Transport for HangableTransport {
    fn send_frame(&mut self, payload: &[u8]) -> Result<(), NetError> {
        self.inner.send_frame(payload)
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, NetError> {
        if self.hang.load(Ordering::Acquire) {
            return Err(NetError::Timeout);
        }
        self.inner.recv_frame()
    }
}

fn grid() -> AlphaGrid {
    AlphaGrid::new(vec![4.0, 16.0]).expect("valid grid")
}

const BASE_BACKOFF: u64 = 50_000_000; // first redial delay, nanos

#[test]
fn the_self_healing_counters_tell_the_exact_lifecycle_story() {
    // The primary: a real (durable, unreplicated-WAL) service whose
    // ledger feeds resync snapshots, on a manual clock shared with the
    // replicator so backoff arithmetic is deterministic.
    let (obs, clock) = Obs::manual(0);
    let sim_p = SimStorage::new();
    let config = ServiceConfig {
        shards: 1,
        unlock_steps: 1,
        ..ServiceConfig::default()
    };
    let service = BudgetService::recover_with_obs(
        grid(),
        config,
        &sim_p,
        DurabilityOptions::default(),
        Arc::clone(&obs),
    )
    .expect("fresh primary");
    service
        .register_block(Block::new(0, RdpCurve::constant(&grid(), 4.0), 0.0))
        .expect("unique block");

    // One replica node, kept across the whole story (its own gauges
    // must track wipes and reinstalls), behind a connector that the
    // test can unplug (dial refused) or wedge (acks hang).
    let robs = Obs::wall();
    let sim_r = SimStorage::new();
    let node = Arc::new(ReplicaNode::open(&sim_r, 1, 1 << 16, Arc::clone(&robs)).expect("replica"));
    let reachable = Arc::new(AtomicBool::new(true));
    let hang = Arc::new(AtomicBool::new(false));
    let connector: Connector = {
        let node = Arc::clone(&node);
        let reachable = Arc::clone(&reachable);
        let hang = Arc::clone(&hang);
        Box::new(move || {
            if !reachable.load(Ordering::Acquire) {
                return Err(NetError::Closed);
            }
            Ok(NetClient::new(Box::new(HangableTransport {
                inner: LoopbackTransport::with_core(ServiceCore::replica(Arc::clone(&node))),
                hang: Arc::clone(&hang),
            })))
        })
    };
    let repl =
        Replicator::with_connectors(vec![(([127, 0, 0, 1], 0).into(), connector)], 1, 1, &obs)
            .with_ship_timeout(Duration::from_millis(100));

    let counters = |name: &str| obs.registry.snapshot().counter_total(name);
    let live_gauge = || match obs.registry.snapshot().get("dpack_repl_live_replicas", "") {
        Some(Value::Gauge(v)) => *v as u64,
        other => panic!("missing live gauge: {other:?}"),
    };
    let durable_gauge = || match robs
        .registry
        .snapshot()
        .get("dpack_repl_durable_seq", "stream=\"shard-0\"")
    {
        Some(Value::Gauge(v)) => *v as u64,
        other => panic!("missing durable gauge: {other:?}"),
    };

    // Chapter 1: connector links start Down; the first tend dials and
    // rejoins on the fast path (a fresh replica matches a fresh
    // primary — lineage 0, all-zero vector — so no resync).
    assert_eq!((repl.live(), live_gauge()), (0, 0));
    assert!(repl.tend(clock.now_nanos(), Some(&service)));
    assert_eq!((repl.live(), live_gauge()), (1, 1));
    assert_eq!(counters("dpack_repl_redials_total"), 1);
    assert_eq!(counters("dpack_repl_resyncs_total"), 0);

    // Chapter 2: an ordinary acked ship.
    repl.ship(ReplStream::Shard(0), &[b"a"]).expect("quorum");
    assert_eq!(node.wal().durable_seq(ReplStream::Shard(0)), 1);
    assert_eq!(durable_gauge(), 1);

    // Chapter 3: the replica wedges. The batch is delivered but its
    // ack never comes: the ship times out, counts it, and drops the
    // replica to Suspect — the commit path never blocks on a hung peer.
    hang.store(true, Ordering::Release);
    repl.ship(ReplStream::Shard(0), &[b"b"])
        .expect_err("no ack");
    assert_eq!((repl.live(), live_gauge()), (0, 0));
    assert_eq!(counters("dpack_repl_ship_timeout_total"), 1);
    assert_eq!(counters("dpack_repl_ship_failures_total"), 1);

    // Chapter 4: the replica is unreachable. Each due redial fails and
    // doubles the backoff; before the window expires tend must not
    // even attempt a dial.
    reachable.store(false, Ordering::Release);
    hang.store(false, Ordering::Release);
    assert!(repl.tend(clock.now_nanos(), Some(&service)));
    assert_eq!(
        counters("dpack_repl_redials_total"),
        1,
        "inside the backoff window nothing is dialed"
    );
    for due in [BASE_BACKOFF, 2 * BASE_BACKOFF, 4 * BASE_BACKOFF] {
        clock.advance(due);
        assert!(repl.tend(clock.now_nanos(), Some(&service)));
    }
    assert_eq!(
        counters("dpack_repl_redials_total"),
        1,
        "refused dials are probe failures, not redials"
    );
    assert_eq!(repl.live(), 0);

    // Chapter 5: the replica is back, state intact. The timed-out
    // batch *did* land (send succeeded), so its durable vector matches
    // the primary's exactly — fast-path rejoin, no resync.
    reachable.store(true, Ordering::Release);
    clock.advance(8 * BASE_BACKOFF);
    assert!(repl.tend(clock.now_nanos(), Some(&service)));
    assert_eq!((repl.live(), live_gauge()), (1, 1));
    assert_eq!(counters("dpack_repl_redials_total"), 2);
    assert_eq!(counters("dpack_repl_resyncs_total"), 0);
    assert_eq!(node.wal().vector(), repl.vector());

    // Chapter 6: the replica wedges again and then loses its state
    // (an operator wipe / disk replacement — the logs restart empty).
    // Now the probe sees a lagging vector and must run the full
    // catch-up: quiesced snapshot install at the primary's vector,
    // then a committed lineage.
    hang.store(true, Ordering::Release);
    repl.ship(ReplStream::Shard(0), &[b"c"])
        .expect_err("no ack");
    assert_eq!(counters("dpack_repl_ship_timeout_total"), 2);
    assert_eq!(counters("dpack_repl_ship_failures_total"), 2);
    node.reset_unattached().expect("wipe");
    assert_eq!(durable_gauge(), 0, "the wipe zeroes the replica's gauges");
    hang.store(false, Ordering::Release);
    clock.advance(BASE_BACKOFF);
    assert!(repl.tend(clock.now_nanos(), Some(&service)));
    assert_eq!((repl.live(), live_gauge()), (1, 1));
    assert_eq!(counters("dpack_repl_redials_total"), 3);
    assert_eq!(counters("dpack_repl_resyncs_total"), 1);
    assert_eq!(
        node.wal().vector(),
        repl.vector(),
        "the resync re-bases the replica at the primary's seq vector"
    );
    assert!(!node.is_resyncing(), "the round was committed");
    let resyncs = obs
        .recorder
        .dump()
        .iter()
        .filter(|e| e.kind == EventKind::ReplicaResynced)
        .count();
    assert_eq!(resyncs, 1, "one ReplicaResynced flight-recorder event");

    // Chapter 7: ships resume as an ordinary suffix of the installed
    // base, and the final ledger of counters is exact.
    repl.ship(ReplStream::Shard(0), &[b"d"]).expect("quorum");
    assert_eq!(node.wal().durable_seq(ReplStream::Shard(0)), 4);
    assert_eq!(durable_gauge(), 4);
    let metrics = obs.registry.snapshot();
    for (name, want) in [
        ("dpack_repl_shipped_batches_total", 4),
        ("dpack_repl_acked_batches_total", 2),
        ("dpack_repl_ship_failures_total", 2),
        ("dpack_repl_ship_timeout_total", 2),
        ("dpack_repl_redials_total", 3),
        ("dpack_repl_resyncs_total", 1),
    ] {
        assert_eq!(metrics.counter_total(name), want, "{name}");
    }
    assert_eq!(live_gauge(), 1);
}
