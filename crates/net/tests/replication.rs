//! Replicated service over real `127.0.0.1` sockets: the primary
//! ships its write-ahead stream to two replicas and acks grants only
//! at quorum; the primary then dies, one replica is promoted, and the
//! tenants' pooled clients fail over — losing no acked grant and
//! double-charging no resubmission.

use std::collections::BTreeMap;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use dp_accounting::{AlphaGrid, RdpCurve};
use dpack_core::problem::{Block, Task};
use dpack_net::{ClientPool, ErrorCode, NetClient, NetServer, Outcome, ReplicaNode, Replicator};
use dpack_service::wal::SimStorage;
use dpack_service::{
    BudgetService, DurabilityOptions, ServiceConfig, ServiceHandle, StatsRetention,
};

const SHARDS: usize = 2;

fn grid() -> AlphaGrid {
    AlphaGrid::new(vec![2.0, 4.0, 16.0]).expect("valid grid")
}

fn config() -> ServiceConfig {
    ServiceConfig {
        shards: SHARDS,
        workers: 2,
        unlock_steps: 1,
        retention: StatsRetention::Unbounded,
        ..ServiceConfig::default()
    }
}

fn task(id: u64, blocks: Vec<u64>, eps: f64) -> Task {
    Task::new(id, 1.0, blocks, RdpCurve::constant(&grid(), eps), 0.0)
}

fn ledger_bits(service: &BudgetService) -> Vec<(u64, u64, Vec<u64>, Vec<u64>)> {
    service
        .ledger()
        .block_states()
        .into_iter()
        .map(|(id, b)| {
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            (id, b.granted, bits(&b.total), bits(&b.consumed))
        })
        .collect()
}

/// The replication acceptance scenario, end to end over real sockets:
///
/// 1. A primary with `quorum = 2` over two socket replicas grants 20
///    tasks; every grant is on both replicas before its tenant hears
///    about it.
/// 2. The primary dies. Replica A is promoted by recovering a fresh
///    service from A's shipped write-ahead stream — bit-identical to
///    the dead primary's live ledger.
/// 3. The tenants' pool follows the failover candidate list (which
///    starts with a *replica*, exercising the `NotPrimary` probe
///    skip). Resubmitting every acked task is refused as a duplicate
///    — no double charge — and 20 fresh tasks land on the promoted
///    service. Exact conservation, client side: 40 unique tasks, 40
///    final decisions.
#[test]
fn promotion_after_primary_death_loses_no_acked_grant() {
    // Two socket replicas on their own storages.
    let sim_a = SimStorage::new();
    let sim_b = SimStorage::new();
    let seg = DurabilityOptions::default().segment_bytes;
    let node_a = Arc::new(
        ReplicaNode::open(&sim_a, SHARDS, seg, dpack_obs::Obs::wall()).expect("replica a"),
    );
    let node_b = Arc::new(
        ReplicaNode::open(&sim_b, SHARDS, seg, dpack_obs::Obs::wall()).expect("replica b"),
    );
    let server_a = NetServer::bind_replica(Arc::clone(&node_a), "127.0.0.1:0").expect("bind a");
    let server_b = NetServer::bind_replica(Arc::clone(&node_b), "127.0.0.1:0").expect("bind b");
    let (addr_a, addr_b) = (server_a.local_addr(), server_b.local_addr());

    // The primary: durable, fresh, shipping every append to both
    // replicas and acking at quorum 2 — a grant is only acked once it
    // is on *every* live replica, so promoting either loses nothing.
    let sim_p = SimStorage::new();
    let mut primary =
        BudgetService::recover(grid(), config(), &sim_p, DurabilityOptions::default())
            .expect("fresh primary");
    let replicator = Replicator::connect(&[addr_a, addr_b], 2, SHARDS, primary.obs().as_ref())
        .expect("replicas reachable");
    primary.replicate_to(Arc::new(replicator));
    let primary = Arc::new(primary);
    for j in 0..8u64 {
        primary
            .register_block(Block::new(j, RdpCurve::constant(&grid(), 4.0), 0.0))
            .expect("unique block");
    }
    let primary_server = NetServer::bind(Arc::clone(&primary), "127.0.0.1:0").expect("bind");
    let primary_addr = primary_server.local_addr();
    let cycles = ServiceHandle::spawn(Arc::clone(&primary), Duration::from_millis(1));

    // Reserve the promotion address up front so it can be a failover
    // candidate before the promoted server exists. The reserving
    // listener never accepts, so no TIME_WAIT blocks the later bind.
    let promoted_addr = TcpListener::bind("127.0.0.1:0")
        .expect("reserve")
        .local_addr()
        .expect("addr");

    // The candidate list leads with replica A: probes must skip past
    // its `NotPrimary` refusal to find the real primary.
    let pool = ClientPool::connect_failover(vec![addr_a, primary_addr, promoted_addr], 2)
        .expect("failover pool");

    // Phase 1: 20 grants through the replicated primary.
    for id in 0..20u64 {
        let outcome = pool
            .get()
            .submit(0, &task(id, vec![id % 8], 0.05))
            .expect("submit");
        assert!(outcome.is_granted(), "fits: {outcome}");
    }

    // Both replicas saw real traffic, visible in their own metrics;
    // and a replica refuses tenant traffic outright.
    for addr in [addr_a, addr_b] {
        let mut probe = NetClient::connect(addr).expect("connect replica");
        let metrics = probe.metrics().expect("scrape");
        assert!(
            metrics.counter_total("dpack_repl_applied_batches_total") > 0,
            "replica applied nothing"
        );
        match probe.grid() {
            Err(dpack_net::NetError::Remote {
                code: ErrorCode::NotPrimary,
                ..
            }) => {}
            other => panic!("a replica must refuse tenant traffic, got {other:?}"),
        }
    }

    // The primary dies (gracefully here; the crash-offset sweep lives
    // in the service-level suite).
    let primary = cycles.stop();
    primary_server.stop();
    let pre_kill = ledger_bits(&primary);

    // Promote replica A: recover a fresh service from its shipped
    // stream. The promoted ledger is bit-identical to the dead
    // primary's live ledger — quorum = replica count means *every*
    // acked append is on A.
    server_a.stop();
    drop(node_a);
    let promoted = BudgetService::recover(grid(), config(), &sim_a, DurabilityOptions::default())
        .expect("promote replica a");
    assert_eq!(
        pre_kill,
        ledger_bits(&promoted),
        "promotion must lose no acked state"
    );
    let promoted = Arc::new(promoted);
    let promoted_server =
        NetServer::bind(Arc::clone(&promoted), promoted_addr).expect("bind promoted");
    let cycles = ServiceHandle::spawn(Arc::clone(&promoted), Duration::from_millis(1));

    // Phase 2: the pool's idle connections still point at the dead
    // primary; each failed round trip discards one and the redial
    // probes through to the promoted service. Tenants resubmit
    // everything already acked (refused as duplicates — no double
    // charge) plus 20 fresh tasks.
    let mut outcomes = BTreeMap::new();
    for id in 0..40u64 {
        let t = task(id, vec![id % 8], 0.05);
        let outcome = loop {
            match pool.get().submit(0, &t) {
                Ok(o) => break o,
                // A dead-primary connection: dropped broken, redialed.
                Err(_) => continue,
            }
        };
        outcomes.insert(id, outcome);
    }
    assert_eq!(outcomes.len(), 40, "every unique task got a final decision");
    for id in 0..20u64 {
        assert!(
            matches!(
                outcomes[&id],
                Outcome::Rejected {
                    code: ErrorCode::DuplicateTask,
                    ..
                }
            ),
            "acked task {id} must not be double-charged, got {}",
            outcomes[&id]
        );
    }
    for id in 20..40u64 {
        assert!(
            outcomes[&id].is_granted(),
            "fresh task {id} fits, got {}",
            outcomes[&id]
        );
    }

    let promoted = cycles.stop();
    promoted_server.stop();
    server_b.stop();
    assert!(promoted.ledger().unsound_blocks().is_empty());
    // The 20 phase-2 grants are charged exactly once each on top of
    // the recovered state: 40 grants total across the 8 blocks.
    let granted: u64 = promoted
        .ledger()
        .block_states()
        .values()
        .map(|b| b.granted)
        .sum();
    let pre: u64 = pre_kill.iter().map(|(_, g, _, _)| g).sum();
    assert_eq!(pre, 20, "phase 1 grants, one block each");
    assert_eq!(granted, 40, "exact conservation across the failover");
}
