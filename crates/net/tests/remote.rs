//! Remote-frontend integration over real `127.0.0.1` sockets.
//!
//! The acceptance scenario for the remote frontend: tenants on real
//! TCP connections submit concurrently with in-process tenants and
//! receive **final decisions**; and a remote submission stream leaves
//! the ledger in a state bit-identical to the same stream submitted
//! in-process.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use dp_accounting::{AlphaGrid, RdpCurve};
use dpack_core::problem::{Block, Task};
use dpack_net::{ClientPool, ErrorCode, NetClient, NetError, NetServer, Outcome};
use dpack_service::{BudgetService, ServiceConfig, ServiceHandle, StatsRetention};
use rand::{RngExt, SeedableRng};

fn grid() -> AlphaGrid {
    AlphaGrid::new(vec![2.0, 4.0, 16.0]).expect("valid grid")
}

/// No default timeout: the concurrency tests run cycles on a
/// wall-clock thread whose *virtual* time races far ahead of the
/// tenants' `arrival: 0.0`, so any timeout would spuriously evict.
/// The deterministic equivalence test, which drives its own cycles,
/// opts into one explicitly.
fn service_with(shards: usize, workers: usize, timeout: Option<f64>) -> Arc<BudgetService> {
    Arc::new(BudgetService::new(
        grid(),
        ServiceConfig {
            shards,
            workers,
            unlock_steps: 1,
            default_timeout: timeout,
            retention: StatsRetention::Unbounded,
            ..ServiceConfig::default()
        },
    ))
}

fn service(shards: usize, workers: usize) -> Arc<BudgetService> {
    service_with(shards, workers, None)
}

fn task(id: u64, blocks: Vec<u64>, eps: f64, arrival: f64) -> Task {
    Task::new(id, 1.0, blocks, RdpCurve::constant(&grid(), eps), arrival)
}

/// The acceptance scenario: remote tenants over real sockets race
/// in-process tenants; everyone gets a final decision and the ledger
/// stays sound with exact conservation.
#[test]
fn remote_and_in_process_tenants_submit_concurrently() {
    let service = service(4, 2);
    for j in 0..8u64 {
        service
            .register_block(Block::new(j, RdpCurve::constant(&grid(), 4.0), 0.0))
            .expect("unique block");
    }
    let server = NetServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let cycles = ServiceHandle::spawn(Arc::clone(&service), Duration::from_millis(1));

    const PER_TENANT: u64 = 50;
    let mut grants = 0u64;
    std::thread::scope(|s| {
        // Two remote tenants, each on its own connection, pipelining.
        let mut remote_handles = Vec::new();
        for tenant in 0..2u32 {
            remote_handles.push(s.spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                let mut handles = Vec::new();
                for i in 0..PER_TENANT {
                    let id = u64::from(tenant) * 1_000 + i;
                    let t = task(id, vec![id % 8], 0.05, 0.0);
                    handles.push(client.submit_nowait(tenant, &t).expect("send"));
                }
                let mut granted = 0u64;
                for h in handles {
                    match client.wait_decision(h).expect("decision") {
                        Outcome::Granted { .. } => granted += 1,
                        other => panic!("workload fits, got {other}"),
                    }
                }
                granted
            }));
        }
        // Two in-process tenants race them through submit_async.
        let mut local_handles = Vec::new();
        for tenant in 2..4u32 {
            let service = Arc::clone(&service);
            local_handles.push(s.spawn(move || {
                let mut granted = 0u64;
                for i in 0..PER_TENANT {
                    let id = u64::from(tenant) * 1_000 + i;
                    let t = task(id, vec![id % 8], 0.05, 0.0);
                    let ticket = service.submit_async(tenant, t).expect("admitted");
                    if matches!(
                        ticket.wait_timeout(Duration::from_secs(30)),
                        Some(dpack_service::Decision::Granted { .. })
                    ) {
                        granted += 1;
                    }
                }
                granted
            }));
        }
        for h in remote_handles.into_iter().chain(local_handles) {
            grants += h.join().expect("tenant thread");
        }
    });

    let service = cycles.stop();
    server.stop();
    // 4 tenants × 50 tasks × ε=0.05 ⇒ 2.5 per two blocks… everything
    // fits inside capacity 4.0 per block; conservation is exact.
    assert_eq!(grants, 4 * PER_TENANT);
    let stats = service.stats_summary();
    assert_eq!(stats.submitted, 4 * PER_TENANT);
    assert_eq!(stats.granted, 4 * PER_TENANT);
    assert!(service.ledger().unsound_blocks().is_empty());
}

/// Drives one seeded workload, submitting each chunk then running one
/// deterministic cycle, through either surface; returns the service.
fn seeded_workload(seed: u64) -> Vec<Vec<Task>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut chunks = Vec::new();
    let mut id = 0u64;
    for step in 0..6 {
        let now = step as f64;
        let mut chunk = Vec::new();
        for _ in 0..12 {
            let n_blocks = 1 + (rng.random::<u64>() % 3) as usize;
            let mut blocks: Vec<u64> = (0..n_blocks).map(|_| rng.random::<u64>() % 8).collect();
            blocks.sort_unstable();
            blocks.dedup();
            // A sprinkle of infeasible demands exercises evictions.
            let eps = if rng.random::<u64>() % 8 == 0 {
                9.0
            } else {
                0.02 + (rng.random::<u64>() % 100) as f64 * 0.002
            };
            chunk.push(task(id, blocks, eps, now));
            id += 1;
        }
        chunks.push(chunk);
    }
    chunks
}

fn ledger_bits(service: &BudgetService) -> Vec<(u64, u64, Vec<u64>, Vec<u64>)> {
    service
        .ledger()
        .block_states()
        .into_iter()
        .map(|(id, b)| {
            let bits = |v: &[f64]| v.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
            (id, b.granted, bits(&b.total), bits(&b.consumed))
        })
        .collect()
}

/// The equivalence criterion: the same seeded workload, submitted
/// remotely over a real TCP socket vs in-process, produces
/// bit-identical ledger state and identical grant/eviction counts.
#[test]
fn remote_submission_is_bit_identical_to_in_process() {
    let chunks = seeded_workload(20250728);

    // Path A: in-process submission, deterministic manual cycles.
    let local = service_with(4, 2, Some(4.0));
    for j in 0..8u64 {
        local
            .register_block(Block::new(j, RdpCurve::constant(&grid(), 2.0), 0.0))
            .expect("unique block");
    }
    for (step, chunk) in chunks.iter().enumerate() {
        for t in chunk {
            local
                .submit((t.id % 3) as u32, t.clone())
                .expect("fits admission");
        }
        local.run_cycle((step + 1) as f64);
    }
    // Strictly past every arrival's 4.0 timeout, so each infeasible
    // task evicts (and, in path B, resolves its parked decision).
    for extra in 0..6 {
        local.run_cycle((chunks.len() + 1 + extra) as f64);
    }

    // Path B: the same stream over a real socket. The test drives the
    // cycles itself: submissions are pipelined, then the test waits
    // until the server has admitted the whole chunk (the `submitted`
    // counter is exact) before running the cycle — same ingest
    // boundaries as path A.
    let remote = service_with(4, 2, Some(4.0));
    for j in 0..8u64 {
        remote
            .register_block(Block::new(j, RdpCurve::constant(&grid(), 2.0), 0.0))
            .expect("unique block");
    }
    let server = NetServer::bind(Arc::clone(&remote), "127.0.0.1:0").expect("bind");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let mut handles = Vec::new();
    let mut sent = 0u64;
    for (step, chunk) in chunks.iter().enumerate() {
        for t in chunk {
            handles.push(client.submit_nowait((t.id % 3) as u32, t).expect("send"));
            sent += 1;
        }
        while remote.stats_summary().submitted < sent {
            std::thread::sleep(Duration::from_micros(100));
        }
        remote.run_cycle((step + 1) as f64);
    }
    for extra in 0..6 {
        remote.run_cycle((chunks.len() + 1 + extra) as f64);
    }
    // Every decision arrives (grants and evictions both resolved).
    let mut outcomes = std::collections::BTreeMap::new();
    for (h, t) in handles.into_iter().zip(chunks.iter().flatten()) {
        outcomes.insert(t.id, client.wait_decision(h).expect("decision"));
    }
    server.stop();

    // Decisions, counters, and ledger state all agree bit-for-bit.
    let a = local.stats_summary();
    let b = remote.stats_summary();
    assert_eq!(a.granted, b.granted);
    assert_eq!(a.evicted, b.evicted);
    assert_eq!(a.admitted, b.admitted);
    let granted_remote = outcomes.values().filter(|o| o.is_granted()).count() as u64;
    assert_eq!(granted_remote, a.granted);
    assert_eq!(ledger_bits(&local), ledger_bits(&remote));
    assert!(
        a.granted > 0 && a.evicted > 0,
        "workload must exercise both"
    );
}

#[test]
fn pipelined_stats_overtake_pending_submissions() {
    let service = service(2, 1);
    service
        .register_block(Block::new(0, RdpCurve::constant(&grid(), 1.0), 0.0))
        .expect("block");
    let server = NetServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");

    // This submission cannot resolve yet: no cycle is running.
    let pending = client
        .submit_nowait(0, &task(1, vec![0], 0.5, 0.0))
        .expect("send");
    // A stats request sent *after* it completes *before* it.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.admitted, 1);
    assert_eq!(stats.granted, 0);
    assert_eq!(stats.queue_depth, 1);
    // Snapshot also answers immediately, with full budget available.
    let snap = client.snapshot(1.0).expect("snapshot");
    assert_eq!(snap[&0], vec![1.0, 1.0, 1.0]);
    // Now run the cycle; the parked decision resolves.
    service.run_cycle(1.0);
    assert_eq!(
        client.wait_decision(pending).expect("decision"),
        Outcome::Granted { allocated_at: 1.0 }
    );
    let snap = client.snapshot(1.0).expect("snapshot");
    assert_eq!(snap[&0], vec![0.5, 0.5, 0.5]);
    server.stop();
}

#[test]
fn batch_submissions_answer_with_every_decision() {
    let service = service(2, 1);
    service
        .register_block(Block::new(0, RdpCurve::constant(&grid(), 1.0), 0.0))
        .expect("block");
    let server = NetServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let cycles = ServiceHandle::spawn(Arc::clone(&service), Duration::from_millis(1));
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let batch = vec![
        task(1, vec![0], 0.4, 0.0),
        task(1, vec![0], 0.1, 0.0), // Duplicate id: rejected.
        task(2, vec![9], 0.1, 0.0), // Unknown block: rejected.
        task(3, vec![0], 0.4, 0.0),
    ];
    let decisions = client.submit_batch(7, &batch).expect("batch");
    assert_eq!(decisions.len(), 4);
    assert!(matches!(decisions[0], (1, Outcome::Granted { .. })));
    assert!(matches!(
        decisions[1],
        (
            1,
            Outcome::Rejected {
                code: ErrorCode::DuplicateTask,
                ..
            }
        )
    ));
    assert!(matches!(
        decisions[2],
        (
            2,
            Outcome::Rejected {
                code: ErrorCode::UnknownBlock,
                ..
            }
        )
    ));
    assert!(matches!(decisions[3], (3, Outcome::Granted { .. })));
    cycles.stop();
    server.stop();
}

#[test]
fn connection_pool_shares_clients_across_threads() {
    let service = service(4, 2);
    for j in 0..8u64 {
        service
            .register_block(Block::new(j, RdpCurve::constant(&grid(), 4.0), 0.0))
            .expect("block");
    }
    let server = NetServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let cycles = ServiceHandle::spawn(Arc::clone(&service), Duration::from_millis(1));
    let pool = ClientPool::connect(server.local_addr(), 2).expect("pool");
    assert_eq!(pool.size(), 2);
    std::thread::scope(|s| {
        for tenant in 0..6u32 {
            let pool = &pool;
            s.spawn(move || {
                for i in 0..10u64 {
                    let id = u64::from(tenant) * 100 + i;
                    let t = task(id, vec![id % 8], 0.05, 0.0);
                    // Checkout spans one full round trip; contention
                    // forces waiting on the condvar path.
                    let outcome = pool.get().submit(tenant, &t).expect("submit");
                    assert!(outcome.is_granted(), "fits: {outcome}");
                }
            });
        }
    });
    assert_eq!(service.stats_summary().granted, 60);
    cycles.stop();
    server.stop();
}

/// The observability acceptance: a remote client scrapes live metrics
/// and the flight recorder over a real TCP socket, and the scrape
/// reflects the submissions it just made.
#[test]
fn remote_client_scrapes_live_metrics_and_trace() {
    let service = service(2, 1);
    for j in 0..4u64 {
        service
            .register_block(Block::new(j, RdpCurve::constant(&grid(), 1.0), 0.0))
            .expect("block");
    }
    let server = NetServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");

    let pending = client
        .submit_nowait(3, &task(1, vec![0], 0.25, 0.0))
        .expect("send");
    while service.stats_summary().submitted < 1 {
        std::thread::sleep(Duration::from_micros(100));
    }
    service.run_cycle(1.0);
    assert_eq!(
        client.wait_decision(pending).expect("decision"),
        Outcome::Granted { allocated_at: 1.0 }
    );

    let metrics = client.metrics().expect("scrape");
    assert_eq!(metrics.counter_total("dpack_submitted_total"), 1);
    assert_eq!(metrics.counter_total("dpack_granted_total"), 1);
    assert_eq!(metrics.counter_total("dpack_cycles_total"), 1);
    let grant = metrics
        .histogram("dpack_grant_latency_nanos", "")
        .expect("grant latency histogram");
    assert_eq!(grant.count, 1);
    // The reactor's self-instrumentation lands in the same scrape.
    let sweeps = metrics
        .histogram("dpack_reactor_sweep_nanos", "")
        .expect("sweep histogram");
    assert!(sweeps.count > 0, "the reactor has swept at least once");
    let rendered = metrics.render();
    assert!(rendered.contains("dpack_granted_total 1"));
    assert!(rendered.contains("dpack_cycle_phase_nanos"));

    // The flight recorder saw the admission then the grant, in order.
    let events = client.trace(0).expect("trace");
    let kinds: Vec<_> = events.iter().map(|e| e.kind).collect();
    use dpack_net::obs::EventKind;
    assert_eq!(kinds, vec![EventKind::TaskAdmitted, EventKind::TaskGranted]);
    assert_eq!(events[0].a, 1, "admitted task id");
    assert_eq!(events[0].b, 3, "admitting tenant");
    assert_eq!(events[1].b, 1.0f64.to_bits(), "grant time");
    assert!(events[0].seq < events[1].seq);
    // An incremental scrape from past the end returns nothing new.
    let last = events.last().expect("events").seq;
    assert!(client.trace(last + 1).expect("trace").is_empty());
    server.stop();
}

#[test]
fn protocol_violations_get_a_final_error_frame_then_the_boot() {
    let service = service(1, 1);
    let server = NetServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
    raw.write_all(&[0x00; 32]).expect("write garbage");
    // The server answers with a framed protocol error, then closes.
    let mut bytes = Vec::new();
    raw.set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    raw.read_to_end(&mut bytes).expect("read until close");
    let mut dec = dpack_net::wire::FrameDecoder::new();
    dec.extend(&bytes);
    let payload = dec.next_frame().expect("valid frame").expect("one frame");
    let resp = dpack_net::ResponseFrame::decode(&payload).expect("decodes");
    assert_eq!(resp.id, 0, "no request id can be trusted");
    assert!(matches!(
        resp.body,
        dpack_net::Response::Error {
            code: ErrorCode::Protocol,
            ..
        }
    ));
    // A well-behaved client on a fresh connection is unaffected — and
    // can read the violation off the metrics and the flight recorder.
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    assert_eq!(client.grid().expect("hello"), grid());
    let metrics = client.metrics().expect("scrape");
    assert_eq!(metrics.counter_total("dpack_protocol_violations_total"), 1);
    let events = client.trace(0).expect("trace");
    assert!(events
        .iter()
        .any(|e| e.kind == dpack_net::obs::EventKind::ProtocolViolation));
    server.stop();
}

#[test]
fn shutdown_closes_clients_cleanly() {
    let service = service(1, 1);
    service
        .register_block(Block::new(0, RdpCurve::constant(&grid(), 1.0), 0.0))
        .expect("block");
    let server = NetServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    assert_eq!(client.grid().expect("hello"), grid());
    // A decision still pending at shutdown surfaces as Closed/Io, not
    // a hang or a fabricated outcome.
    let h = client
        .submit_nowait(0, &task(1, vec![0], 0.5, 0.0))
        .expect("send");
    std::thread::sleep(Duration::from_millis(20)); // Let the reactor ingest it.
    server.stop();
    match client.wait_decision(h) {
        Err(NetError::Closed | NetError::Io(_)) => {}
        other => panic!("expected a closed-connection error, got {other:?}"),
    }
}
