//! Discrete-event simulator for online privacy-budget scheduling.
//!
//! The Rust counterpart of the paper's Python/simpy simulator (§5): a
//! virtual clock in *block inter-arrival periods*, an event heap over
//! block arrivals, task arrivals, and scheduling ticks every `T`, all
//! driving the [`dpack_core::online::OnlineEngine`]. Deterministic: ties
//! in event time are broken by event kind (blocks, then tasks, then the
//! tick) and then by insertion order.
//!
//! # Examples
//!
//! ```
//! use simulator::{SimulationConfig, simulate};
//! use dpack_core::schedulers::DPack;
//! use workloads::amazon::{self, AmazonConfig};
//!
//! let wl = amazon::generate(&AmazonConfig {
//!     n_blocks: 10,
//!     mean_tasks_per_block: 20.0,
//!     ..Default::default()
//! }, 1);
//! let result = simulate(&wl, DPack::default(), &SimulationConfig::default());
//! assert!(result.allocated() > 0);
//! ```

pub mod config;
pub mod event;
pub mod result;
pub mod service_backend;

pub use config::{BackendKind, DurabilityKind, SchedulerKind, SimulationSpec, WorkloadKind};
pub use event::{Event, EventKind, EventQueue};
pub use result::SimulationResult;
pub use service_backend::{simulate_service, simulate_service_durable};

use std::time::Instant;

use dpack_core::online::{OnlineConfig, OnlineEngine};
use dpack_core::problem::{Block, Task};
use dpack_core::schedulers::Scheduler;
use workloads::OnlineWorkload;

/// One event of a workload replay, handed to the backend callback by
/// [`replay_workload`].
#[derive(Debug, Clone, Copy)]
pub enum ReplayEvent<'a> {
    /// A block becomes available.
    Block(&'a Block),
    /// A task is submitted.
    Task(&'a Task),
    /// A scheduling step runs at the given virtual time.
    Tick(f64),
}

/// Drives a workload's deterministic event loop — block arrivals, task
/// arrivals, scheduling ticks every `T` until the drain horizon — and
/// hands each event to `on_event` in simulation order. Shared by the
/// engine and service backends so the two replays cannot drift.
pub fn replay_workload<F: FnMut(ReplayEvent<'_>)>(
    workload: &OnlineWorkload,
    config: &SimulationConfig,
    mut on_event: F,
) {
    let mut queue = EventQueue::new();
    for (i, b) in workload.blocks.iter().enumerate() {
        queue.push(b.arrival, EventKind::BlockArrival(i));
    }
    for (i, t) in workload.tasks.iter().enumerate() {
        queue.push(t.arrival, EventKind::TaskArrival(i));
    }
    // Scheduling ticks from T until the horizon.
    let last_arrival = workload
        .blocks
        .iter()
        .map(|b| b.arrival)
        .chain(workload.tasks.iter().map(|t| t.arrival))
        .fold(0.0f64, f64::max);
    let horizon = last_arrival + config.drain_steps as f64 * config.scheduling_period;
    let mut t = config.scheduling_period;
    while t <= horizon {
        queue.push(t, EventKind::ScheduleTick);
        t += config.scheduling_period;
    }

    while let Some(ev) = queue.pop() {
        match ev.kind {
            EventKind::BlockArrival(i) => on_event(ReplayEvent::Block(&workload.blocks[i])),
            EventKind::TaskArrival(i) => on_event(ReplayEvent::Task(&workload.tasks[i])),
            EventKind::ScheduleTick => on_event(ReplayEvent::Tick(ev.time)),
        }
    }
}

/// Simulation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationConfig {
    /// Scheduling period `T` in virtual time units.
    pub scheduling_period: f64,
    /// Unlocking steps `N` (§3.4).
    pub unlock_steps: u32,
    /// Default task timeout; `None` keeps tasks queued forever.
    pub task_timeout: Option<f64>,
    /// Extra scheduling ticks after the last arrival, so queued tasks
    /// see fully unlocked budget before the run ends.
    pub drain_steps: u32,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            scheduling_period: 1.0,
            unlock_steps: 50,
            task_timeout: None,
            drain_steps: 55,
        }
    }
}

/// Runs a workload to completion under one scheduler.
///
/// # Panics
///
/// Panics if the workload is internally inconsistent (tasks referencing
/// blocks that never arrive) or if a privacy filter rejects a scheduled
/// task — the budget-soundness invariant.
pub fn simulate<S: Scheduler>(
    workload: &OnlineWorkload,
    scheduler: S,
    config: &SimulationConfig,
) -> SimulationResult {
    let started = Instant::now();
    let mut engine = OnlineEngine::new(
        scheduler,
        workload.grid.clone(),
        OnlineConfig {
            scheduling_period: config.scheduling_period,
            unlock_period: 1.0,
            unlock_steps: config.unlock_steps,
            default_timeout: config.task_timeout,
        },
    );

    replay_workload(workload, config, |event| match event {
        ReplayEvent::Block(b) => {
            engine
                .add_block(b.clone())
                .expect("workload blocks are unique and on the grid");
        }
        ReplayEvent::Task(t) => {
            engine
                .submit_task(t.clone())
                .expect("workload tasks reference arrived blocks");
        }
        ReplayEvent::Tick(now) => {
            engine.run_step(now).expect("budget-soundness invariant");
        }
    });

    let final_pending = engine.pending().len();
    let total_capacities = engine.total_capacities();
    SimulationResult {
        stats: engine.into_stats(),
        n_submitted: workload.tasks.len(),
        final_pending,
        total_capacities,
        wall_time: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_accounting::{AlphaGrid, RdpCurve};
    use dpack_core::problem::{Block, Task};
    use dpack_core::schedulers::{DPack, Dpf, Fcfs};

    /// A tiny hand-built workload: 3 blocks, tasks that all fit.
    fn tiny_workload() -> OnlineWorkload {
        let grid = AlphaGrid::new(vec![4.0, 16.0]).unwrap();
        let cap = RdpCurve::constant(&grid, 1.0);
        let blocks: Vec<Block> = (0..3u64)
            .map(|j| Block::new(j, cap.clone(), j as f64))
            .collect();
        let tasks: Vec<Task> = (0..6u64)
            .map(|i| {
                let arrival = 0.2 + i as f64 * 0.4;
                let newest = (arrival.floor() as u64).min(2);
                Task::new(
                    i,
                    1.0,
                    vec![newest],
                    RdpCurve::constant(&grid, 0.25),
                    arrival,
                )
            })
            .collect();
        OnlineWorkload {
            grid,
            blocks,
            tasks,
        }
    }

    #[test]
    fn all_feasible_tasks_eventually_run() {
        let wl = tiny_workload();
        let cfg = SimulationConfig {
            unlock_steps: 2,
            drain_steps: 5,
            ..Default::default()
        };
        let r = simulate(&wl, DPack::default(), &cfg);
        assert_eq!(r.allocated(), 6);
        assert_eq!(r.final_pending, 0);
        assert_eq!(r.n_submitted, 6);
    }

    #[test]
    fn contended_workload_allocates_subset() {
        let grid = AlphaGrid::single(2.0).unwrap();
        let cap = RdpCurve::constant(&grid, 1.0);
        let blocks = vec![Block::new(0, cap, 0.0)];
        let tasks: Vec<Task> = (0..10u64)
            .map(|i| {
                Task::new(
                    i,
                    1.0,
                    vec![0],
                    RdpCurve::constant(&grid, 0.3),
                    0.1 * i as f64,
                )
            })
            .collect();
        let wl = OnlineWorkload {
            grid,
            blocks,
            tasks,
        };
        let cfg = SimulationConfig {
            unlock_steps: 1,
            drain_steps: 3,
            ..Default::default()
        };
        let r = simulate(&wl, Fcfs, &cfg);
        assert_eq!(r.allocated(), 3); // 3 × 0.3 ≤ 1.0 < 4 × 0.3.
        assert_eq!(r.final_pending, 7);
    }

    #[test]
    fn unlocking_delays_allocation() {
        let wl = tiny_workload();
        let eager = simulate(
            &wl,
            DPack::default(),
            &SimulationConfig {
                unlock_steps: 1,
                drain_steps: 3,
                ..Default::default()
            },
        );
        let slow = simulate(
            &wl,
            DPack::default(),
            &SimulationConfig {
                unlock_steps: 8,
                drain_steps: 12,
                ..Default::default()
            },
        );
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&slow.stats.delays()) >= mean(&eager.stats.delays()),
            "slower unlocking should not reduce delay"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let wl = tiny_workload();
        let cfg = SimulationConfig::default();
        let a = simulate(&wl, Dpf, &cfg);
        let b = simulate(&wl, Dpf, &cfg);
        assert_eq!(a.stats.allocated, b.stats.allocated);
    }

    #[test]
    fn larger_t_batches_more() {
        // With T = 10 all tasks of the tiny workload are scheduled in one
        // batch at t = 10.
        let wl = tiny_workload();
        let cfg = SimulationConfig {
            scheduling_period: 10.0,
            unlock_steps: 1,
            drain_steps: 2,
            ..Default::default()
        };
        let r = simulate(&wl, DPack::default(), &cfg);
        assert_eq!(r.allocated(), 6);
        assert!(r
            .stats
            .allocated
            .iter()
            .all(|a| (a.allocated_at - 10.0).abs() < 1e-9));
    }
}
