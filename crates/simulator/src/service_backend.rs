//! The `dpack-service` backend: replaying a workload through the
//! sharded budget service instead of the single-threaded
//! [`dpack_core::online::OnlineEngine`].
//!
//! The same deterministic event loop as [`crate::simulate`] — block
//! arrivals, task arrivals, scheduling ticks every `T` — but arrivals
//! register/submit into a [`BudgetService`] and ticks run its batched
//! cycle. With one shard and one worker the allocations are identical
//! to the engine backend; with more shards the service's local-first
//! discipline applies (single-shard tasks schedule per shard in
//! parallel, cross-shard tasks go through the two-phase pass).

use std::time::Instant;

use dpack_service::wal::SimStorage;
use dpack_service::{BudgetService, DurabilityOptions, ServiceConfig, StatsRetention};
use workloads::OnlineWorkload;

use crate::{replay_workload, ReplayEvent, SimulationConfig, SimulationResult};

/// Runs a workload to completion on the service backend.
///
/// The service's `scheduling_period`, `unlock_steps` and
/// `default_timeout` are taken from `config` (mirroring
/// [`crate::simulate`]); sharding, worker count and scheduler choice
/// come from `service_config`. The replay lifts the admission bounds
/// (queue capacity, tenant quota, ingest batch): a trace replay is
/// single-threaded, so backpressure would deadlock it, and admission
/// limits are a live-service concern — exercised by the service's own
/// tests and the `service_throughput` bench. Stats retention is forced
/// to [`StatsRetention::Unbounded`]: simulator parity compares the run
/// allocation-for-allocation with the engine, which needs the full
/// per-event logs (the bounded window is for always-on deployments).
/// All tasks are submitted as tenant 0 (workload traces carry no
/// tenant labels).
///
/// # Panics
///
/// Panics if the workload is internally inconsistent (tasks referencing
/// blocks that never arrive, duplicate block or task ids) — the same
/// inputs on which [`crate::simulate`] panics.
pub fn simulate_service(
    workload: &OnlineWorkload,
    service_config: &ServiceConfig,
    config: &SimulationConfig,
) -> SimulationResult {
    run_service(workload, service_config, config, false)
}

/// [`simulate_service`] with write-ahead logging enabled (the
/// `durability = sim` config toggle): the service runs through a
/// `dpack-wal` ledger on in-memory [`SimStorage`], so every grant pays
/// the logging path. Durability is decision-invisible — allocations
/// are identical to [`simulate_service`] — which the tests assert.
pub fn simulate_service_durable(
    workload: &OnlineWorkload,
    service_config: &ServiceConfig,
    config: &SimulationConfig,
) -> SimulationResult {
    run_service(workload, service_config, config, true)
}

fn run_service(
    workload: &OnlineWorkload,
    service_config: &ServiceConfig,
    config: &SimulationConfig,
    durable: bool,
) -> SimulationResult {
    let started = Instant::now();
    let resolved = ServiceConfig {
        scheduling_period: config.scheduling_period,
        unlock_period: 1.0,
        unlock_steps: config.unlock_steps,
        default_timeout: config.task_timeout,
        queue_capacity: usize::MAX,
        tenant_quota: usize::MAX,
        ingest_batch: usize::MAX,
        retention: StatsRetention::Unbounded,
        ..*service_config
    };
    // Replays run with observability fully off: the simulator's
    // contract is bit-identical decisions run-to-run, so it opts out of
    // even the (decision-invisible) instrumentation cost.
    let service = if durable {
        BudgetService::recover_with_obs(
            workload.grid.clone(),
            resolved,
            &SimStorage::new(),
            DurabilityOptions::default(),
            dpack_service::obs::Obs::off(),
        )
        .expect("fresh sim storage opens")
    } else {
        BudgetService::with_obs(
            workload.grid.clone(),
            resolved,
            dpack_service::obs::Obs::off(),
        )
    };

    replay_workload(workload, config, |event| match event {
        ReplayEvent::Block(b) => {
            service
                .register_block(b.clone())
                .expect("workload blocks are unique and on the grid");
        }
        ReplayEvent::Task(t) => {
            service
                .submit(0, t.clone())
                .expect("replay submissions must be admitted");
        }
        ReplayEvent::Tick(now) => {
            service.run_cycle(now);
        }
    });

    let final_pending = service.pending_count() + service.queue_depth();
    SimulationResult {
        stats: service.stats().to_online(),
        n_submitted: workload.tasks.len(),
        final_pending,
        total_capacities: service.ledger().total_capacities(),
        wall_time: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_accounting::{AlphaGrid, RdpCurve};
    use dpack_core::problem::{Block, Task};
    use dpack_core::schedulers::DPack;
    use dpack_service::SchedulerChoice;

    fn tiny_workload() -> OnlineWorkload {
        let grid = AlphaGrid::new(vec![4.0, 16.0]).unwrap();
        let cap = RdpCurve::constant(&grid, 1.0);
        let blocks: Vec<Block> = (0..4u64)
            .map(|j| Block::new(j, cap.clone(), j as f64))
            .collect();
        let tasks: Vec<Task> = (0..12u64)
            .map(|i| {
                let arrival = 0.2 + i as f64 * 0.3;
                let newest = (arrival.floor() as u64).min(3);
                let blocks = if i % 3 == 0 && newest > 0 {
                    vec![newest - 1, newest] // Cross-shard at S=2.
                } else {
                    vec![newest]
                };
                Task::new(i, 1.0, blocks, RdpCurve::constant(&grid, 0.2), arrival)
            })
            .collect();
        OnlineWorkload {
            grid,
            blocks,
            tasks,
        }
    }

    #[test]
    fn sequential_backend_matches_engine_backend_exactly() {
        let wl = tiny_workload();
        let cfg = SimulationConfig {
            unlock_steps: 2,
            drain_steps: 6,
            ..Default::default()
        };
        let engine = crate::simulate(&wl, DPack::default(), &cfg);
        let service = simulate_service(
            &wl,
            &ServiceConfig {
                shards: 1,
                workers: 1,
                scheduler: SchedulerChoice::DPack,
                ..ServiceConfig::default()
            },
            &cfg,
        );
        assert_eq!(service.stats.allocated, engine.stats.allocated);
        assert_eq!(service.final_pending, engine.final_pending);
    }

    #[test]
    fn durable_backend_is_decision_identical_to_the_in_memory_one() {
        let wl = tiny_workload();
        let cfg = SimulationConfig {
            unlock_steps: 2,
            drain_steps: 6,
            ..Default::default()
        };
        let service_config = ServiceConfig {
            shards: 2,
            workers: 2,
            scheduler: SchedulerChoice::DPack,
            ..ServiceConfig::default()
        };
        let plain = simulate_service(&wl, &service_config, &cfg);
        let durable = simulate_service_durable(&wl, &service_config, &cfg);
        assert_eq!(durable.stats.allocated, plain.stats.allocated);
        assert_eq!(durable.final_pending, plain.final_pending);
    }

    #[test]
    fn sharded_backend_is_sound_and_live() {
        let wl = tiny_workload();
        let cfg = SimulationConfig {
            unlock_steps: 2,
            drain_steps: 6,
            ..Default::default()
        };
        let r = simulate_service(
            &wl,
            &ServiceConfig {
                shards: 2,
                workers: 2,
                scheduler: SchedulerChoice::DPack,
                ..ServiceConfig::default()
            },
            &cfg,
        );
        assert!(r.allocated() > 0);
        assert_eq!(r.allocated() + r.final_pending, r.n_submitted);
    }
}
