//! Configuration-file support for the simulator.
//!
//! The paper's simulator is driven by configuration files that define
//! "block and task arrival frequencies, the scheduling period and the
//! block unlocking rate" (§5). This module parses a minimal
//! `key = value` format (comments with `#`, sections ignored) into a
//! [`SimulationSpec`]: the simulation parameters plus a workload choice,
//! without pulling a serialization dependency.
//!
//! ```text
//! # experiment.conf
//! workload            = alibaba     # alibaba | amazon | microbenchmark
//! seed                = 42
//! n_blocks            = 30
//! n_tasks             = 5000
//! scheduling_period   = 1.0
//! unlock_steps        = 50
//! task_timeout        = 5.0         # omit or set to "none" for no eviction
//! scheduler           = dpack       # dpack | dpf | dpf-strict | fcfs | greedy-area
//! backend             = engine      # engine | service
//! shards              = 4           # service backend: ledger shards
//! workers             = 2           # service backend: worker threads
//! durability          = none        # service backend: none | sim
//!                                   # (sim = write-ahead log on in-memory
//!                                   #  SimStorage; decision-invisible)
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use crate::SimulationConfig;

/// An error parsing a configuration file.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigError(pub String);

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config error: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Which workload generator to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// The §6.3 Alibaba-DP macrobenchmark.
    Alibaba,
    /// The PrivateKube Amazon Reviews macrobenchmark.
    Amazon,
    /// The §6.2 microbenchmark (offline-style, replayed online).
    Microbenchmark,
}

impl FromStr for WorkloadKind {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "alibaba" | "alibaba-dp" => Ok(Self::Alibaba),
            "amazon" | "amazon-reviews" => Ok(Self::Amazon),
            "microbenchmark" | "micro" => Ok(Self::Microbenchmark),
            other => Err(ConfigError(format!("unknown workload '{other}'"))),
        }
    }
}

/// Which scheduling policy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// DPack (Alg. 1).
    DPack,
    /// DPF, skip-greedy packing.
    Dpf,
    /// DPF with head-of-line blocking.
    DpfStrict,
    /// First-come-first-serve.
    Fcfs,
    /// The Eq. 4 area heuristic.
    GreedyArea,
}

impl FromStr for SchedulerKind {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "dpack" => Ok(Self::DPack),
            "dpf" => Ok(Self::Dpf),
            "dpf-strict" | "dpf_strict" => Ok(Self::DpfStrict),
            "fcfs" => Ok(Self::Fcfs),
            "greedy-area" | "greedy_area" | "area" => Ok(Self::GreedyArea),
            other => Err(ConfigError(format!("unknown scheduler '{other}'"))),
        }
    }
}

impl SchedulerKind {
    /// The service-crate policy equivalent to this kind.
    pub fn to_service_choice(self) -> dpack_service::SchedulerChoice {
        match self {
            Self::DPack => dpack_service::SchedulerChoice::DPack,
            Self::Dpf => dpack_service::SchedulerChoice::Dpf,
            Self::DpfStrict => dpack_service::SchedulerChoice::DpfStrict,
            Self::Fcfs => dpack_service::SchedulerChoice::Fcfs,
            Self::GreedyArea => dpack_service::SchedulerChoice::GreedyArea,
        }
    }
}

/// Which execution backend replays the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// The single-threaded [`dpack_core::online::OnlineEngine`].
    Engine,
    /// The sharded, concurrent `dpack-service` budget service.
    Service,
}

impl FromStr for BackendKind {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "engine" | "online" => Ok(Self::Engine),
            "service" | "dpack-service" => Ok(Self::Service),
            other => Err(ConfigError(format!("unknown backend '{other}'"))),
        }
    }
}

/// Whether the service backend writes ahead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityKind {
    /// In-memory ledger (the default).
    #[default]
    None,
    /// WAL through `dpack-wal`'s in-memory `SimStorage` — exercises
    /// the full logging path deterministically, without touching disk.
    Sim,
}

impl FromStr for DurabilityKind {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "none" | "off" => Ok(Self::None),
            "sim" | "wal" => Ok(Self::Sim),
            other => Err(ConfigError(format!("unknown durability '{other}'"))),
        }
    }
}

/// A fully parsed experiment specification.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationSpec {
    /// Workload generator.
    pub workload: WorkloadKind,
    /// Scheduling policy.
    pub scheduler: SchedulerKind,
    /// Execution backend.
    pub backend: BackendKind,
    /// Ledger shards (service backend only).
    pub shards: usize,
    /// Worker threads (service backend only).
    pub workers: usize,
    /// Write-ahead logging (service backend only).
    pub durability: DurabilityKind,
    /// RNG seed.
    pub seed: u64,
    /// Number of blocks.
    pub n_blocks: usize,
    /// Number of tasks (Alibaba/microbenchmark) or mean tasks per block
    /// (Amazon).
    pub n_tasks: usize,
    /// Simulator parameters.
    pub sim: SimulationConfig,
}

impl Default for SimulationSpec {
    fn default() -> Self {
        Self {
            workload: WorkloadKind::Alibaba,
            scheduler: SchedulerKind::DPack,
            backend: BackendKind::Engine,
            shards: 4,
            workers: 2,
            durability: DurabilityKind::None,
            seed: 42,
            n_blocks: 30,
            n_tasks: 5000,
            sim: SimulationConfig::default(),
        }
    }
}

impl SimulationSpec {
    /// Parses the `key = value` format described in the module docs.
    ///
    /// Unknown keys are rejected (typos should fail loudly); missing
    /// keys keep their defaults.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut map = BTreeMap::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() || line.starts_with('[') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError(format!(
                    "line {}: expected 'key = value', got '{line}'",
                    lineno + 1
                )));
            };
            map.insert(key.trim().to_string(), value.trim().to_string());
        }
        Self::from_map(map)
    }

    fn from_map(map: BTreeMap<String, String>) -> Result<Self, ConfigError> {
        let mut spec = Self::default();
        for (key, value) in map {
            match key.as_str() {
                "workload" => spec.workload = value.parse()?,
                "scheduler" => spec.scheduler = value.parse()?,
                "backend" => spec.backend = value.parse()?,
                "shards" => spec.shards = parse_num(&key, &value)?,
                "workers" => spec.workers = parse_num(&key, &value)?,
                "durability" => spec.durability = value.parse()?,
                "seed" => spec.seed = parse_num(&key, &value)?,
                "n_blocks" => spec.n_blocks = parse_num(&key, &value)?,
                "n_tasks" => spec.n_tasks = parse_num(&key, &value)?,
                "scheduling_period" => spec.sim.scheduling_period = parse_num(&key, &value)?,
                "unlock_steps" => spec.sim.unlock_steps = parse_num(&key, &value)?,
                "drain_steps" => spec.sim.drain_steps = parse_num(&key, &value)?,
                "task_timeout" => {
                    spec.sim.task_timeout = if value.eq_ignore_ascii_case("none") {
                        None
                    } else {
                        Some(parse_num(&key, &value)?)
                    };
                }
                other => return Err(ConfigError(format!("unknown key '{other}'"))),
            }
        }
        if spec.n_blocks == 0 || spec.n_tasks == 0 {
            return Err(ConfigError("n_blocks and n_tasks must be positive".into()));
        }
        if spec.shards == 0 || spec.workers == 0 {
            return Err(ConfigError("shards and workers must be positive".into()));
        }
        if spec.sim.scheduling_period <= 0.0 || spec.sim.scheduling_period.is_nan() {
            return Err(ConfigError("scheduling_period must be positive".into()));
        }
        if spec.durability != DurabilityKind::None && spec.backend != BackendKind::Service {
            return Err(ConfigError(
                "durability requires 'backend = service'".into(),
            ));
        }
        Ok(spec)
    }

    /// Generates the configured workload.
    pub fn build_workload(&self) -> workloads::OnlineWorkload {
        match self.workload {
            WorkloadKind::Alibaba => workloads::alibaba::generate(
                &workloads::alibaba::AlibabaDpConfig {
                    n_blocks: self.n_blocks,
                    n_tasks: self.n_tasks,
                    ..Default::default()
                },
                self.seed,
            ),
            WorkloadKind::Amazon => workloads::amazon::generate(
                &workloads::amazon::AmazonConfig {
                    n_blocks: self.n_blocks,
                    mean_tasks_per_block: self.n_tasks as f64 / self.n_blocks as f64,
                    ..Default::default()
                },
                self.seed,
            ),
            WorkloadKind::Microbenchmark => {
                // Replay the offline microbenchmark online: all blocks at
                // t = 0, tasks spread over the first period.
                let lib = workloads::curves::CurveLibrary::standard();
                let state = workloads::microbenchmark::generate(
                    &lib,
                    &workloads::microbenchmark::MicrobenchmarkConfig {
                        n_tasks: self.n_tasks,
                        n_blocks: self.n_blocks,
                        mu_blocks: (self.n_blocks as f64 / 2.0).max(1.0),
                        sigma_blocks: 2.0,
                        sigma_alpha: 2.0,
                        eps_min: 0.05,
                        ..Default::default()
                    },
                    self.seed,
                );
                let blocks = state
                    .blocks()
                    .iter()
                    .map(|(id, cap)| dpack_core::problem::Block::new(*id, cap.clone(), 0.0))
                    .collect();
                workloads::OnlineWorkload {
                    grid: state.grid().clone(),
                    blocks,
                    tasks: state.tasks().to_vec(),
                }
            }
        }
    }

    /// Runs the configured experiment on the selected backend.
    pub fn run(&self) -> crate::SimulationResult {
        use dpack_core::schedulers::{DPack, Dpf, DpfStrict, Fcfs, GreedyArea};
        let wl = self.build_workload();
        match self.backend {
            BackendKind::Engine => match self.scheduler {
                SchedulerKind::DPack => crate::simulate(&wl, DPack::default(), &self.sim),
                SchedulerKind::Dpf => crate::simulate(&wl, Dpf, &self.sim),
                SchedulerKind::DpfStrict => crate::simulate(&wl, DpfStrict, &self.sim),
                SchedulerKind::Fcfs => crate::simulate(&wl, Fcfs, &self.sim),
                SchedulerKind::GreedyArea => crate::simulate(&wl, GreedyArea, &self.sim),
            },
            BackendKind::Service => {
                let service_config = dpack_service::ServiceConfig {
                    shards: self.shards,
                    workers: self.workers,
                    scheduler: self.scheduler.to_service_choice(),
                    ..dpack_service::ServiceConfig::default()
                };
                match self.durability {
                    DurabilityKind::None => {
                        crate::simulate_service(&wl, &service_config, &self.sim)
                    }
                    DurabilityKind::Sim => {
                        crate::simulate_service_durable(&wl, &service_config, &self.sim)
                    }
                }
            }
        }
    }
}

fn parse_num<T: FromStr>(key: &str, value: &str) -> Result<T, ConfigError> {
    value
        .parse()
        .map_err(|_| ConfigError(format!("invalid value '{value}' for key '{key}'")))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "
        # experiment
        workload = amazon
        scheduler = dpf-strict
        seed = 7
        n_blocks = 12
        n_tasks = 240             # 20 per block
        scheduling_period = 2.0
        unlock_steps = 10
        drain_steps = 15
        task_timeout = none
    ";

    #[test]
    fn parses_the_documented_format() {
        let spec = SimulationSpec::parse(SAMPLE).unwrap();
        assert_eq!(spec.workload, WorkloadKind::Amazon);
        assert_eq!(spec.scheduler, SchedulerKind::DpfStrict);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.n_blocks, 12);
        assert_eq!(spec.n_tasks, 240);
        assert_eq!(spec.sim.scheduling_period, 2.0);
        assert_eq!(spec.sim.unlock_steps, 10);
        assert_eq!(spec.sim.task_timeout, None);
    }

    #[test]
    fn defaults_fill_missing_keys() {
        let spec = SimulationSpec::parse("workload = alibaba").unwrap();
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.scheduler, SchedulerKind::DPack);
    }

    #[test]
    fn rejects_unknown_keys_and_values() {
        assert!(SimulationSpec::parse("workload = netflix").is_err());
        assert!(SimulationSpec::parse("sched = dpack").is_err());
        assert!(SimulationSpec::parse("seed = abc").is_err());
        assert!(SimulationSpec::parse("just a line").is_err());
        assert!(SimulationSpec::parse("n_blocks = 0").is_err());
    }

    #[test]
    fn comments_and_sections_are_ignored() {
        let spec = SimulationSpec::parse("[sim]\n# note\nseed = 9 # trailing\n").unwrap();
        assert_eq!(spec.seed, 9);
    }

    #[test]
    fn end_to_end_run_from_config() {
        let spec = SimulationSpec::parse(
            "workload = amazon\nn_blocks = 6\nn_tasks = 120\nunlock_steps = 3\ndrain_steps = 8",
        )
        .unwrap();
        let result = spec.run();
        assert!(result.allocated() > 0);
        assert!(result.n_submitted > 0);
    }

    #[test]
    fn microbenchmark_workload_builds() {
        let spec = SimulationSpec::parse(
            "workload = micro\nn_blocks = 5\nn_tasks = 50\nscheduler = greedy-area",
        )
        .unwrap();
        let wl = spec.build_workload();
        assert_eq!(wl.blocks.len(), 5);
        assert_eq!(wl.tasks.len(), 50);
        wl.validate().unwrap();
    }

    #[test]
    fn service_backend_runs_from_config() {
        let spec = SimulationSpec::parse(
            "workload = micro\nbackend = service\nshards = 2\nworkers = 2\n\
             n_blocks = 6\nn_tasks = 60\nunlock_steps = 3\ndrain_steps = 8",
        )
        .unwrap();
        assert_eq!(spec.backend, BackendKind::Service);
        let result = spec.run();
        assert!(result.allocated() > 0);
    }

    #[test]
    fn backend_keys_are_validated() {
        assert!(SimulationSpec::parse("backend = quantum").is_err());
        assert!(SimulationSpec::parse("shards = 0").is_err());
        assert!(SimulationSpec::parse("workers = 0").is_err());
        let spec = SimulationSpec::parse("backend = engine").unwrap();
        assert_eq!(spec.backend, BackendKind::Engine);
    }

    #[test]
    fn durability_toggle_parses_and_is_gated_to_the_service_backend() {
        let spec = SimulationSpec::parse("backend = service\ndurability = sim").unwrap();
        assert_eq!(spec.durability, DurabilityKind::Sim);
        let spec = SimulationSpec::parse("backend = service").unwrap();
        assert_eq!(spec.durability, DurabilityKind::None);
        assert!(SimulationSpec::parse("durability = etcd").is_err());
        // The engine backend has no ledger to log.
        assert!(SimulationSpec::parse("durability = sim").is_err());
        assert!(SimulationSpec::parse("backend = engine\ndurability = wal").is_err());
    }

    #[test]
    fn durable_service_backend_runs_from_config() {
        let spec = SimulationSpec::parse(
            "workload = micro\nbackend = service\ndurability = sim\nshards = 2\nworkers = 2\n\
             n_blocks = 6\nn_tasks = 60\nunlock_steps = 3\ndrain_steps = 8",
        )
        .unwrap();
        let durable = spec.run();
        assert!(durable.allocated() > 0);
        // Durability is decision-invisible at the config level too.
        let plain = SimulationSpec {
            durability: DurabilityKind::None,
            ..spec
        }
        .run();
        assert_eq!(durable.stats.allocated, plain.stats.allocated);
    }

    #[test]
    fn every_scheduler_kind_parses() {
        for (s, k) in [
            ("dpack", SchedulerKind::DPack),
            ("DPF", SchedulerKind::Dpf),
            ("dpf_strict", SchedulerKind::DpfStrict),
            ("fcfs", SchedulerKind::Fcfs),
            ("area", SchedulerKind::GreedyArea),
        ] {
            assert_eq!(s.parse::<SchedulerKind>().unwrap(), k);
        }
    }
}
