//! Simulation results and derived metrics.

use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

use dp_accounting::RdpCurve;
use dpack_core::metrics::{fairness_report, FairnessReport};
use dpack_core::online::OnlineStats;
use dpack_core::problem::{BlockId, Task, TaskId};

/// The outcome of one simulated run.
#[derive(Debug, Clone)]
pub struct SimulationResult {
    /// The engine's statistics (allocations with delays, evictions,
    /// scheduler runtime, step count).
    pub stats: OnlineStats,
    /// Number of submitted tasks.
    pub n_submitted: usize,
    /// Tasks still queued when the run ended.
    pub final_pending: usize,
    /// Total (initial) capacities of all blocks, for fairness analysis.
    pub total_capacities: BTreeMap<BlockId, RdpCurve>,
    /// Wall-clock duration of the whole simulation.
    pub wall_time: Duration,
}

impl SimulationResult {
    /// Number of allocated tasks (the paper's unweighted global
    /// efficiency).
    pub fn allocated(&self) -> usize {
        self.stats.allocated.len()
    }

    /// Sum of allocated weights (the weighted global efficiency).
    pub fn total_weight(&self) -> f64 {
        self.stats.total_weight()
    }

    /// The ids of allocated tasks.
    pub fn allocated_ids(&self) -> BTreeSet<TaskId> {
        self.stats.allocated.iter().map(|a| a.id).collect()
    }

    /// Mean scheduling delay in virtual time; `None` if nothing ran.
    pub fn mean_delay(&self) -> Option<f64> {
        let d = self.stats.delays();
        if d.is_empty() {
            None
        } else {
            Some(d.iter().sum::<f64>() / d.len() as f64)
        }
    }

    /// The §6.3 fairness report for this run against the workload's full
    /// task list.
    pub fn fairness(&self, workload_tasks: &[Task], n_fair: u32) -> FairnessReport {
        fairness_report(
            workload_tasks,
            &self.allocated_ids(),
            &self.total_capacities,
            n_fair,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_accounting::AlphaGrid;
    use dpack_core::online::AllocatedTask;

    #[test]
    fn derived_metrics() {
        let grid = AlphaGrid::single(2.0).unwrap();
        let mut caps = BTreeMap::new();
        caps.insert(0u64, RdpCurve::constant(&grid, 10.0));
        let stats = OnlineStats {
            allocated: vec![
                AllocatedTask {
                    id: 0,
                    weight: 2.0,
                    arrival: 0.0,
                    allocated_at: 1.0,
                },
                AllocatedTask {
                    id: 1,
                    weight: 3.0,
                    arrival: 0.5,
                    allocated_at: 2.0,
                },
            ],
            evicted: vec![],
            scheduler_runtime: Duration::ZERO,
            steps: 2,
        };
        let r = SimulationResult {
            stats,
            n_submitted: 3,
            final_pending: 1,
            total_capacities: caps,
            wall_time: Duration::ZERO,
        };
        assert_eq!(r.allocated(), 2);
        assert_eq!(r.total_weight(), 5.0);
        assert_eq!(r.mean_delay(), Some(1.25));
        assert_eq!(r.allocated_ids().len(), 2);
    }
}
