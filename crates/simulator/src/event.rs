//! The event heap.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens at an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Block `i` (index into the workload) becomes available.
    BlockArrival(usize),
    /// Task `i` (index into the workload) is submitted.
    TaskArrival(usize),
    /// A scheduling step runs.
    ScheduleTick,
}

impl EventKind {
    /// Priority *within* one timestamp: arrivals are visible to the tick
    /// at the same instant.
    fn rank(&self) -> u8 {
        match self {
            EventKind::BlockArrival(_) => 0,
            EventKind::TaskArrival(_) => 1,
            EventKind::ScheduleTick => 2,
        }
    }
}

/// A scheduled event.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Virtual time of the event.
    pub time: f64,
    /// Payload.
    pub kind: EventKind,
    /// Insertion sequence number, the final tie-breaker.
    pub seq: u64,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_key() == other.cmp_key()
    }
}
impl Eq for Event {}

impl Event {
    fn cmp_key(&self) -> (u64, u8, u64) {
        // total_cmp-compatible bits ordering for non-negative times.
        (self.time.to_bits(), self.kind.rank(), self.seq)
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other.cmp_key().cmp(&self.cmp_key())
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-heap of events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules an event.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite times (virtual time starts at 0).
    pub fn push(&mut self, time: f64, kind: EventKind) {
        assert!(
            time.is_finite() && time >= 0.0,
            "event time must be finite and >= 0 (got {time})"
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Event { time, kind, seq });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(2.0, EventKind::ScheduleTick);
        q.push(1.0, EventKind::TaskArrival(0));
        q.push(1.5, EventKind::BlockArrival(1));
        let times: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(times, vec![1.0, 1.5, 2.0]);
    }

    #[test]
    fn same_time_orders_blocks_tasks_tick() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::ScheduleTick);
        q.push(1.0, EventKind::TaskArrival(3));
        q.push(1.0, EventKind::BlockArrival(2));
        let kinds: Vec<EventKind> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::BlockArrival(2),
                EventKind::TaskArrival(3),
                EventKind::ScheduleTick
            ]
        );
    }

    #[test]
    fn insertion_order_breaks_remaining_ties() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::TaskArrival(7));
        q.push(1.0, EventKind::TaskArrival(8));
        let ids: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::TaskArrival(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![7, 8]);
    }

    #[test]
    #[should_panic(expected = "event time")]
    fn rejects_negative_time() {
        EventQueue::new().push(-1.0, EventKind::ScheduleTick);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(0.0, EventKind::ScheduleTick);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
