//! Distributed causal tracing: follow one grant across the whole
//! deployment.
//!
//! Per-node metrics say how the *population* of grants behaved; a
//! trace says where *one* grant's latency went — admission queue,
//! scheduling cycle, WAL fsync, replication ship, the slowest replica
//! of the quorum. The model is Dapper's: every traced submission
//! carries a [`TraceContext`] (a process-independent trace id plus the
//! root span id), each layer records [`Span`]s into its node-local
//! [`SpanRing`], and a [`SpanTree`] assembler merges the per-node
//! dumps back into one causal tree keyed by trace id.
//!
//! Three properties keep the propagation cheap and deterministic:
//!
//! * **Ids come from the seeded rand shim.** A [`Tracer`] draws trace
//!   and root-span ids from the vendored xoshiro256++ PRNG; under a
//!   fixed seed (the [`ManualClock`](crate::ManualClock) test setup)
//!   every id — and therefore every span tree — is reproducible.
//! * **Child span ids are derived, not carried.** [`span_id`] hashes
//!   `(trace, kind, salt)`, so the WAL layer, the replicator, and a
//!   replica on the other end of the wire all compute the same span
//!   (and parent) ids from the trace id alone — only the trace id
//!   crosses layer and node boundaries.
//! * **Recording is lock-free.** [`SpanRing`] is the
//!   [`FlightRecorder`](crate::FlightRecorder)'s seqlock-slot ring
//!   with a nine-word payload; writers on the grant path never take a
//!   mutex.
//!
//! The current trace set rides a thread-local ([`scoped_traces`]):
//! a scheduling cycle pins the traced tasks it is about to commit,
//! and the ledger/replication layers below read it without any
//! signature changes.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What one span measured. The payload word `a` is per-kind: the
/// shard for [`SpanKind::WalFlush`], the wire stream address for
/// [`SpanKind::ReplShip`], the quorum-closing link ordinal for
/// [`SpanKind::QuorumWait`], the shipped batch seq for
/// [`SpanKind::ReplicaAppend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum SpanKind {
    /// The root: admission enqueue to decision ack.
    Grant = 1,
    /// Admission enqueue to the start of the deciding cycle.
    QueueWait = 2,
    /// The scheduling cycle that committed the grant.
    Cycle = 3,
    /// Cycle phase: queue drain + eviction sweep.
    PhaseIngest = 4,
    /// Cycle phase: shard-local schedule + commit.
    PhaseLocal = 5,
    /// Cycle phase: cross-shard schedule + 2PC commit.
    PhaseCross = 6,
    /// Cycle phase: ticket resolution + bookkeeping.
    PhaseFinalize = 7,
    /// One shard's group-commit WAL append + fsync (`a` = shard).
    WalFlush = 8,
    /// One replication ship: pipeline + quorum collection (`a` = wire
    /// stream address).
    ReplShip = 9,
    /// The wait for the quorum-closing ack inside a ship (`a` = the
    /// link ordinal whose ack closed the quorum — the slowest replica
    /// the grant waited for).
    QuorumWait = 10,
    /// A replica's durable apply of one shipped batch (`a` = the
    /// shipped batch seq; the applying node rides [`Span::node`]).
    /// Recorded on the replica, in its clock domain.
    ReplicaAppend = 11,
}

impl SpanKind {
    /// Decodes the wire byte; `None` for unknown kinds.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => Self::Grant,
            2 => Self::QueueWait,
            3 => Self::Cycle,
            4 => Self::PhaseIngest,
            5 => Self::PhaseLocal,
            6 => Self::PhaseCross,
            7 => Self::PhaseFinalize,
            8 => Self::WalFlush,
            9 => Self::ReplShip,
            10 => Self::QuorumWait,
            11 => Self::ReplicaAppend,
            _ => return None,
        })
    }

    /// The chrome-trace event name.
    pub fn name(self) -> &'static str {
        match self {
            Self::Grant => "grant",
            Self::QueueWait => "queue_wait",
            Self::Cycle => "cycle",
            Self::PhaseIngest => "phase_ingest",
            Self::PhaseLocal => "phase_local",
            Self::PhaseCross => "phase_cross",
            Self::PhaseFinalize => "phase_finalize",
            Self::WalFlush => "wal_flush",
            Self::ReplShip => "repl_ship",
            Self::QuorumWait => "quorum_wait",
            Self::ReplicaAppend => "replica_append",
        }
    }
}

/// The context a traced submission carries: the trace id and the root
/// span id, both drawn by a [`Tracer`]. Everything else is derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceContext {
    /// The deployment-unique trace id (nonzero).
    pub trace: u64,
    /// The root ([`SpanKind::Grant`]) span id (nonzero).
    pub span: u64,
}

/// One recorded span. Timestamps are node-local clock readings —
/// cross-node causality comes from the parent ids, not the clocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Ring sequence number (process-unique, from 1).
    pub seq: u64,
    /// The trace this span belongs to.
    pub trace: u64,
    /// This span's id.
    pub span: u64,
    /// The parent span id (0 for the root).
    pub parent: u64,
    /// What was measured.
    pub kind: SpanKind,
    /// The recording node's deployment id.
    pub node: u64,
    /// Start, in the recording node's clock domain.
    pub start_nanos: u64,
    /// End, same clock domain.
    pub end_nanos: u64,
    /// The per-kind payload word (see [`SpanKind`]).
    pub a: u64,
}

impl Span {
    /// The span's duration (saturating — a manual clock can be set
    /// backwards between the two reads).
    pub fn duration_nanos(&self) -> u64 {
        self.end_nanos.saturating_sub(self.start_nanos)
    }
}

/// SplitMix64's finalizer: the bijective mixer the id derivation and
/// the rand shim's seeding both build on.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child span id from `(trace, kind, salt)`. Deterministic
/// and computed independently on every node/layer, so only the trace
/// id needs to cross boundaries: the primary's ship span and the
/// replica's notion of its parent agree by construction. Never 0.
pub fn span_id(trace: u64, kind: SpanKind, salt: u64) -> u64 {
    let id = mix64(
        trace
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(u64::from(kind as u8))
            .wrapping_add(salt.wrapping_mul(0xD1B5_4A32_D192_ED03)),
    );
    if id == 0 {
        1
    } else {
        id
    }
}

/// Draws trace and root-span ids from the seeded rand shim. Seed it
/// from the wall clock in production and from a constant in tests —
/// the id stream (and with it every derived span id) replays exactly.
#[derive(Debug)]
pub struct Tracer {
    rng: Mutex<StdRng>,
}

impl Tracer {
    /// A tracer over the shim's SplitMix64-seeded xoshiro256++.
    pub fn seeded(seed: u64) -> Self {
        Self {
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// Starts a new trace: fresh nonzero trace id + root span id.
    pub fn start(&self) -> TraceContext {
        let mut rng = self.rng.lock().expect("tracer rng poisoned");
        let mut draw = || loop {
            let v = rng.next_u64();
            if v != 0 {
                return v;
            }
        };
        TraceContext {
            trace: draw(),
            span: draw(),
        }
    }
}

// ---- the span ring ----------------------------------------------------

/// One seqlock-published slot; the protocol is the flight recorder's
/// (`seq == 0` means empty or mid-write).
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    trace: AtomicU64,
    span: AtomicU64,
    parent: AtomicU64,
    kind: AtomicU64,
    node: AtomicU64,
    start: AtomicU64,
    end: AtomicU64,
    a: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Self {
            seq: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            span: AtomicU64::new(0),
            parent: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            node: AtomicU64::new(0),
            start: AtomicU64::new(0),
            end: AtomicU64::new(0),
            a: AtomicU64::new(0),
        }
    }

    fn read(&self) -> Option<Span> {
        let before = self.seq.load(Ordering::Acquire);
        if before == 0 {
            return None;
        }
        let trace = self.trace.load(Ordering::Relaxed);
        let span = self.span.load(Ordering::Relaxed);
        let parent = self.parent.load(Ordering::Relaxed);
        let kind = self.kind.load(Ordering::Relaxed);
        let node = self.node.load(Ordering::Relaxed);
        let start = self.start.load(Ordering::Relaxed);
        let end = self.end.load(Ordering::Relaxed);
        let a = self.a.load(Ordering::Relaxed);
        if self.seq.load(Ordering::Acquire) != before {
            return None;
        }
        let kind = SpanKind::from_u8(u8::try_from(kind).ok()?)?;
        Some(Span {
            seq: before,
            trace,
            span,
            parent,
            kind,
            node,
            start_nanos: start,
            end_nanos: end,
            a,
        })
    }
}

#[derive(Debug)]
struct RingInner {
    next_seq: AtomicU64,
    node: AtomicU64,
    slots: Box<[Slot]>,
}

/// A shared, fixed-capacity span ring — the tracing sibling of the
/// flight recorder, dumped over the wire by the `SpanDump` request.
/// Cloning shares the ring.
#[derive(Debug, Clone)]
pub struct SpanRing {
    inner: Arc<RingInner>,
}

impl SpanRing {
    /// A ring retaining the most recent `capacity` spans.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Arc::new(RingInner {
                next_seq: AtomicU64::new(0),
                node: AtomicU64::new(0),
                slots: (0..capacity).map(|_| Slot::empty()).collect(),
            }),
        }
    }

    /// A ring that drops everything (capacity 0).
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// The retention capacity.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Whether recording does anything.
    pub fn is_enabled(&self) -> bool {
        !self.inner.slots.is_empty()
    }

    /// Stamps the deployment node id every subsequent span carries
    /// (defaults to 0 for standalone deployments).
    pub fn set_node(&self, node: u64) {
        self.inner.node.store(node, Ordering::Relaxed);
    }

    /// The node id spans are stamped with.
    pub fn node(&self) -> u64 {
        self.inner.node.load(Ordering::Relaxed)
    }

    /// Appends one span, evicting the oldest at capacity. Lock-free:
    /// one `fetch_add` claims the slot, a seqlock publishes it.
    #[allow(clippy::similar_names, clippy::too_many_arguments)]
    pub fn record(
        &self,
        trace: u64,
        span: u64,
        parent: u64,
        kind: SpanKind,
        start_nanos: u64,
        end_nanos: u64,
        a: u64,
    ) {
        let slots = &self.inner.slots;
        if slots.is_empty() {
            return;
        }
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let slot = &slots[(seq - 1) as usize % slots.len()];
        slot.seq.store(0, Ordering::Release); // Invalidate for readers.
        slot.trace.store(trace, Ordering::Relaxed);
        slot.span.store(span, Ordering::Relaxed);
        slot.parent.store(parent, Ordering::Relaxed);
        slot.kind.store(u64::from(kind as u8), Ordering::Relaxed);
        slot.node
            .store(self.inner.node.load(Ordering::Relaxed), Ordering::Relaxed);
        slot.start.store(start_nanos, Ordering::Relaxed);
        slot.end.store(end_nanos, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.seq.store(seq, Ordering::Release);
    }

    /// The retained spans in sequence order.
    pub fn dump(&self) -> Vec<Span> {
        self.dump_since(0)
    }

    /// The retained spans with `seq >= since`, in sequence order —
    /// the incremental form the wire dump paginates with.
    pub fn dump_since(&self, since: u64) -> Vec<Span> {
        let mut spans: Vec<Span> = self
            .inner
            .slots
            .iter()
            .filter_map(Slot::read)
            .filter(|s| s.seq >= since)
            .collect();
        spans.sort_by_key(|s| s.seq);
        spans
    }

    /// Total spans ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner.next_seq.load(Ordering::Relaxed)
    }
}

// ---- the scoped trace set ---------------------------------------------

thread_local! {
    static ACTIVE: RefCell<Vec<TraceContext>> = const { RefCell::new(Vec::new()) };
}

/// Clears the thread's pinned trace set on drop.
#[derive(Debug)]
pub struct ScopedTraces(());

impl Drop for ScopedTraces {
    fn drop(&mut self) {
        ACTIVE.with(|a| a.borrow_mut().clear());
    }
}

/// Pins `ctxs` as the thread's current trace set until the guard
/// drops. A scheduling cycle pins the traced tasks it is committing;
/// the WAL-flush and replication layers underneath read the set with
/// [`active_traces`] — no plumbing through their signatures, and no
/// cross-thread races because each cycle worker commits on its own
/// thread.
pub fn scoped_traces(ctxs: Vec<TraceContext>) -> ScopedTraces {
    ACTIVE.with(|a| *a.borrow_mut() = ctxs);
    ScopedTraces(())
}

/// The thread's pinned trace set (empty outside a traced commit).
pub fn active_traces() -> Vec<TraceContext> {
    ACTIVE.with(|a| a.borrow().clone())
}

/// Runs `f` over the pinned set without cloning; `f` is skipped
/// entirely when the set is empty — the untraced hot path costs one
/// thread-local read.
pub fn with_active_traces(f: impl FnOnce(&[TraceContext])) {
    ACTIVE.with(|a| {
        let ctxs = a.borrow();
        if !ctxs.is_empty() {
            f(&ctxs);
        }
    });
}

// ---- the tree assembler -----------------------------------------------

/// One trace's spans, merged across node dumps, as a causal tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanTree {
    /// The trace id.
    pub trace: u64,
    /// Every span of the trace, deduplicated by span id, ordered by
    /// (kind, node, a) — deterministic regardless of dump order.
    pub spans: Vec<Span>,
}

impl SpanTree {
    /// The root ([`SpanKind::Grant`]) span, if the dump caught it.
    pub fn root(&self) -> Option<&Span> {
        self.spans.iter().find(|s| s.kind == SpanKind::Grant)
    }

    /// The children of `parent`, in the tree's deterministic order.
    pub fn children(&self, parent: u64) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.parent == parent).collect()
    }

    /// The spans of one kind.
    pub fn of_kind(&self, kind: SpanKind) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.kind == kind).collect()
    }

    /// End-to-end latency: the root span's duration (0 if the root is
    /// missing).
    pub fn duration_nanos(&self) -> u64 {
        self.root().map_or(0, Span::duration_nanos)
    }

    /// Whether the tree tells the whole story of a replicated grant:
    /// root, cycle, at least one WAL flush and one ship, replica
    /// appends from at least `quorum` distinct nodes, and every
    /// non-root span's parent present — the well-formedness the slow
    /// sampler requires before a tree is worth exporting.
    pub fn is_complete(&self, quorum: usize) -> bool {
        let ids: std::collections::BTreeSet<u64> = self.spans.iter().map(|s| s.span).collect();
        let parents_ok = self
            .spans
            .iter()
            .all(|s| s.parent == 0 || ids.contains(&s.parent));
        let appended_nodes: std::collections::BTreeSet<u64> = self
            .of_kind(SpanKind::ReplicaAppend)
            .iter()
            .map(|s| s.node)
            .collect();
        parents_ok
            && self.root().is_some()
            && !self.of_kind(SpanKind::Cycle).is_empty()
            && !self.of_kind(SpanKind::WalFlush).is_empty()
            && !self.of_kind(SpanKind::ReplShip).is_empty()
            && appended_nodes.len() >= quorum
    }
}

/// Merges span dumps (one per node, any order, duplicates allowed —
/// a paginated scrape can overlap) into one [`SpanTree`] per trace
/// id, ascending by trace id.
pub fn assemble_trees(dumps: impl IntoIterator<Item = Vec<Span>>) -> Vec<SpanTree> {
    let mut by_trace: BTreeMap<u64, BTreeMap<u64, Span>> = BTreeMap::new();
    for dump in dumps {
        for span in dump {
            by_trace
                .entry(span.trace)
                .or_default()
                .insert(span.span, span);
        }
    }
    by_trace
        .into_iter()
        .map(|(trace, spans)| {
            let mut spans: Vec<Span> = spans.into_values().collect();
            spans.sort_by_key(|s| (s.kind, s.node, s.a, s.span));
            SpanTree { trace, spans }
        })
        .collect()
}

// ---- the slow-trace sampler + chrome export ---------------------------

/// Keeps the N slowest *complete* trees seen so far — the post-mortem
/// working set a chrome-trace export renders.
#[derive(Debug)]
pub struct SlowTraceSampler {
    capacity: usize,
    quorum: usize,
    trees: Vec<SpanTree>,
}

impl SlowTraceSampler {
    /// A sampler retaining the `capacity` slowest trees that are
    /// complete at `quorum` replica appends.
    pub fn new(capacity: usize, quorum: usize) -> Self {
        Self {
            capacity,
            quorum,
            trees: Vec::new(),
        }
    }

    /// Offers one assembled tree; it is kept iff it is complete and
    /// among the `capacity` slowest so far. Re-offering a trace id
    /// replaces its earlier (possibly less complete) tree.
    pub fn offer(&mut self, tree: SpanTree) {
        if !tree.is_complete(self.quorum) {
            return;
        }
        self.trees.retain(|t| t.trace != tree.trace);
        self.trees.push(tree);
        self.trees
            .sort_by_key(|t| (std::cmp::Reverse(t.duration_nanos()), t.trace));
        self.trees.truncate(self.capacity);
    }

    /// The retained trees, slowest first.
    pub fn trees(&self) -> &[SpanTree] {
        &self.trees
    }

    /// The chrome://tracing export of the retained trees.
    pub fn export_chrome(&self) -> String {
        chrome_trace_json(&self.trees)
    }
}

/// Renders trees as chrome://tracing JSON (the "JSON Array Format"
/// with complete `ph:"X"` events): load the string in
/// `chrome://tracing` or Perfetto. `pid` is the recording node,
/// `tid` the trace id truncated to its low 32 bits, timestamps are
/// microseconds in each node's clock domain.
pub fn chrome_trace_json(trees: &[SpanTree]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for tree in trees {
        for s in &tree.spans {
            if !first {
                out.push(',');
            }
            first = false;
            let ts = s.start_nanos as f64 / 1_000.0;
            let dur = s.duration_nanos() as f64 / 1_000.0;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"dpack\",\"ph\":\"X\",\"ts\":{ts:.3},\
                 \"dur\":{dur:.3},\"pid\":{},\"tid\":{},\"args\":{{\"trace\":\"{:016x}\",\
                 \"span\":\"{:016x}\",\"parent\":\"{:016x}\",\"a\":{}}}}}",
                s.kind.name(),
                s.node,
                s.trace & 0xFFFF_FFFF,
                s.trace,
                s.span,
                s.parent,
                s.a,
            );
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_tracer_replays_and_derivation_is_stable() {
        let a = Tracer::seeded(7);
        let b = Tracer::seeded(7);
        let (ca, cb) = (a.start(), b.start());
        assert_eq!(ca, cb, "same seed, same ids");
        assert_ne!(ca.trace, 0);
        assert_ne!(a.start(), ca, "the stream advances");
        let id1 = span_id(ca.trace, SpanKind::WalFlush, 3);
        assert_eq!(id1, span_id(ca.trace, SpanKind::WalFlush, 3));
        assert_ne!(id1, span_id(ca.trace, SpanKind::WalFlush, 4));
        assert_ne!(id1, span_id(ca.trace, SpanKind::ReplShip, 3));
    }

    #[test]
    fn ring_evicts_oldest_and_stamps_the_node() {
        let ring = SpanRing::new(2);
        ring.set_node(9);
        for i in 0..3u64 {
            ring.record(1, 10 + i, 0, SpanKind::Cycle, i, i + 5, 0);
        }
        let dump = ring.dump();
        assert_eq!(dump.len(), 2);
        assert_eq!(dump[0].seq, 2, "oldest retained");
        assert_eq!(dump[1].span, 12);
        assert!(dump.iter().all(|s| s.node == 9));
        assert_eq!(ring.recorded(), 3);
        assert_eq!(ring.dump_since(3).len(), 1);
        let off = SpanRing::disabled();
        off.record(1, 2, 0, SpanKind::Grant, 0, 1, 0);
        assert!(off.dump().is_empty() && !off.is_enabled());
    }

    #[test]
    fn scoped_traces_pin_and_clear() {
        assert!(active_traces().is_empty());
        {
            let _g = scoped_traces(vec![TraceContext { trace: 1, span: 2 }]);
            assert_eq!(active_traces().len(), 1);
            let mut seen = 0;
            with_active_traces(|c| seen = c.len());
            assert_eq!(seen, 1);
        }
        assert!(active_traces().is_empty(), "guard drop clears the set");
    }

    fn span(trace: u64, span: u64, parent: u64, kind: SpanKind, node: u64) -> Span {
        Span {
            seq: span, // seq only orders dumps; any unique value works
            trace,
            span,
            parent,
            kind,
            node,
            start_nanos: 10,
            end_nanos: 20,
            a: 0,
        }
    }

    /// A minimal complete tree: root ← cycle ← {flush, ship ← appends}.
    fn complete_tree_spans(trace: u64, appends: usize) -> Vec<Span> {
        let mut v = vec![
            span(trace, 1, 0, SpanKind::Grant, 0),
            span(trace, 2, 1, SpanKind::Cycle, 0),
            span(trace, 3, 2, SpanKind::WalFlush, 0),
            span(trace, 4, 2, SpanKind::ReplShip, 0),
        ];
        for n in 0..appends {
            v.push(span(
                trace,
                5 + n as u64,
                4,
                SpanKind::ReplicaAppend,
                n as u64 + 1,
            ));
        }
        v
    }

    #[test]
    fn assembler_merges_dedups_and_checks_completeness() {
        let spans = complete_tree_spans(42, 2);
        // Two overlapping per-node dumps plus an unrelated trace.
        let dump_a: Vec<Span> = spans[..4].to_vec();
        let mut dump_b: Vec<Span> = spans[2..].to_vec();
        dump_b.push(span(7, 1, 0, SpanKind::Grant, 0));
        let trees = assemble_trees([dump_a, dump_b]);
        assert_eq!(trees.len(), 2);
        assert_eq!(trees[0].trace, 7);
        let t = &trees[1];
        assert_eq!(t.spans.len(), 6, "duplicates collapse by span id");
        assert!(t.is_complete(2));
        assert!(!t.is_complete(3), "only two distinct appending nodes");
        assert_eq!(t.children(2).len(), 2, "flush and ship under the cycle");
        // Lose the root: incomplete, and the orphaned cycle fails the
        // parent check too.
        let rootless: Vec<Span> = t.spans.iter().copied().filter(|s| s.span != 1).collect();
        assert!(!assemble_trees([rootless])[0].is_complete(1));
    }

    #[test]
    fn sampler_keeps_the_n_slowest_complete_trees() {
        let mut sampler = SlowTraceSampler::new(2, 1);
        for (trace, dur) in [(1u64, 50u64), (2, 10), (3, 99)] {
            let mut spans = complete_tree_spans(trace, 1);
            spans[0].end_nanos = spans[0].start_nanos + dur;
            sampler.offer(SpanTree { trace, spans });
        }
        // Incomplete trees are refused outright.
        sampler.offer(SpanTree {
            trace: 4,
            spans: complete_tree_spans(4, 0),
        });
        let kept: Vec<u64> = sampler.trees().iter().map(|t| t.trace).collect();
        assert_eq!(kept, [3, 1], "slowest two, slowest first");
        let json = sampler.export_chrome();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"replica_append\""));
        assert!(json.contains("\"ph\":\"X\""));
    }
}
