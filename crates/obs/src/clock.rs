//! The clock seam.
//!
//! Every span measurement in the workspace reads time through a
//! [`Clock`] instead of calling [`Instant::now`] directly, so
//! deterministic tests can substitute a [`ManualClock`] and assert
//! phase timings *exactly* — the same move `SimStorage` makes for
//! storage faults, applied to time.
//!
//! Time is a monotone `u64` nanosecond counter from an arbitrary
//! origin (the clock's construction for [`WallClock`], zero for
//! [`ManualClock`]); only differences are meaningful. At nanosecond
//! resolution the counter lasts ~584 years, far past any process
//! lifetime.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotone nanosecond clock.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since the clock's origin.
    fn now_nanos(&self) -> u64;
}

/// The real wall clock: nanoseconds since construction.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock anchored at the moment of construction.
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_nanos(&self) -> u64 {
        // Saturating: a reading past u64::MAX nanos (~584 years of
        // uptime) pins rather than wraps.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A deterministic test clock.
///
/// Reads return the current value and then advance it by the
/// configured `tick` — so with `tick = T`, the `k`-th read after
/// construction returns exactly `k·T`, and a span bracketed by two
/// reads with `n` reads between them measures exactly `(n + 1)·T`.
/// With the default `tick = 0` the clock only moves on explicit
/// [`ManualClock::advance`]/[`ManualClock::set`] calls.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
    tick: u64,
}

impl ManualClock {
    /// A clock frozen at zero (advance it explicitly).
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock that self-advances by `tick` nanoseconds per read.
    pub fn with_tick(tick: u64) -> Self {
        Self {
            nanos: AtomicU64::new(0),
            tick,
        }
    }

    /// Moves the clock forward by `nanos`.
    pub fn advance(&self, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Pins the clock to an absolute reading.
    pub fn set(&self, nanos: u64) {
        self.nanos.store(nanos, Ordering::Relaxed);
    }

    /// The current reading without consuming a tick.
    pub fn peek(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.fetch_add(self.tick, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now_nanos();
        let b = c.now_nanos();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_ticks_exactly() {
        let c = ManualClock::with_tick(1_000);
        assert_eq!(c.now_nanos(), 0);
        assert_eq!(c.now_nanos(), 1_000);
        c.advance(500);
        assert_eq!(c.now_nanos(), 2_500);
        c.set(10);
        assert_eq!(c.peek(), 10);
        assert_eq!(c.now_nanos(), 10);
    }

    #[test]
    fn manual_clock_defaults_to_frozen() {
        let c = ManualClock::new();
        assert_eq!(c.now_nanos(), 0);
        assert_eq!(c.now_nanos(), 0);
    }
}
