//! Log-linear-bucketed histograms.
//!
//! A [`Histogram`] sorts recorded `u64` values into log-linear buckets
//! in the HdrHistogram style: values below 16 get one exact bucket
//! each, and every power-of-two octave above is split into 16 linear
//! sub-buckets, so a reported quantile is within 1/16 (6.25%) of the
//! true value instead of within a full power of two. The finer grain
//! is what keeps p50 and p99 distinct when a whole latency population
//! lands inside one octave — e.g. grant latencies clustered around
//! 27 ms all fall in `[2^24, 2^25)`, where pure power-of-two buckets
//! collapse every quantile onto the same upper bound. Recording is
//! lock-free — one `fetch_add` per counter — and a
//! [`HistogramSnapshot`] is mergeable across histograms, shards, or
//! processes by plain bucket-wise addition, so percentile queries
//! survive aggregation.
//!
//! A disabled histogram (from a disabled registry, or
//! [`Histogram::disabled`]) carries no storage: recording is a no-op
//! branch on an `Option`, which is what makes instrumentation
//! near-free when unused.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Linear sub-buckets per power-of-two octave (2^[`SUB_BITS`]).
const SUB: usize = 16;
/// log2 of [`SUB`].
const SUB_BITS: usize = 4;

/// Number of buckets: 16 exact slots for values `0..16`, then 16
/// linear sub-buckets for each of the 60 octaves `[2^4, 2^64)` —
/// enough for the full `u64` range at ≤ 6.25% relative error.
pub const BUCKETS: usize = SUB + (64 - SUB_BITS) * SUB;

/// The bucket a value falls into: exact below [`SUB`], otherwise the
/// value's octave split into [`SUB`] linear sub-buckets.
fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros() as usize; // >= SUB_BITS
    let sub = ((v >> (exp - SUB_BITS)) as usize) & (SUB - 1);
    SUB + (exp - SUB_BITS) * SUB + sub
}

/// The largest value bucket `i` can hold (its reported upper bound).
fn bucket_upper(i: usize) -> u64 {
    if i < SUB {
        return i as u64;
    }
    let exp = SUB_BITS + (i - SUB) / SUB;
    let sub = ((i - SUB) % SUB) as u64;
    let lower = (SUB as u64 + sub) << (exp - SUB_BITS);
    lower + ((1u64 << (exp - SUB_BITS)) - 1)
}

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistInner {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A lock-free, log-bucketed histogram handle. Cloning shares the
/// underlying counters.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    inner: Option<Arc<HistInner>>,
}

impl Histogram {
    /// A live histogram.
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(HistInner::default())),
        }
    }

    /// A no-op handle: every record is a single branch.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether records land anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one value. Lock-free; relaxed ordering (the snapshot is
    /// a statistical view, not a synchronization point).
    pub fn record(&self, v: u64) {
        let Some(inner) = &self.inner else { return };
        inner.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records an `f64` by saturating cast: NaN and negatives clamp to
    /// 0, values past `u64::MAX` clamp to `u64::MAX` — no input
    /// panics.
    pub fn record_f64(&self, v: f64) {
        // Rust float→int `as` casts saturate (NaN → 0), which is
        // exactly the clamping contract.
        self.record(v as u64);
    }

    /// A point-in-time copy of the counters. Concurrent records may
    /// land between field reads; the snapshot is internally consistent
    /// enough for monitoring (counts never decrease, never tear within
    /// one bucket).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::default();
        if let Some(inner) = &self.inner {
            for (slot, bucket) in snap.buckets.iter_mut().zip(&inner.buckets) {
                *slot = bucket.load(Ordering::Relaxed);
            }
            snap.count = inner.count.load(Ordering::Relaxed);
            snap.sum = inner.sum.load(Ordering::Relaxed);
            snap.max = inner.max.load(Ordering::Relaxed);
        }
        snap
    }
}

/// A mergeable, queryable copy of a histogram's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts in the log-linear layout: bucket `i < 16`
    /// holds exactly the value `i`; above that, each power-of-two
    /// octave is split into 16 linear sub-buckets.
    pub buckets: [u64; BUCKETS],
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping at `u64::MAX`).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Folds another snapshot in: bucket-wise addition, max of maxes.
    /// Merging distributes over recording — merging two snapshots
    /// equals snapshotting one histogram that saw both value streams.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        // `record` accumulates the sum with a wrapping `fetch_add`;
        // merge must wrap the same way or merging loses distributivity.
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q ∈ [0, 1]`, reported as the upper bound
    /// of the bucket holding that rank, clamped to the observed max
    /// (and 0 when empty). Monotone in `q`, never panics: NaN and
    /// out-of-range quantiles clamp into `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the q-quantile among `count` ordered values,
        // 1-based; q = 0 maps to rank 1, q = 1 to rank count.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(*n);
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (upper-bounded by bucket; see [`Self::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Exact arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(index, count)` pairs — the sparse form
    /// the wire protocol ships. Indices are `u16`: the log-linear
    /// layout has more than 256 buckets.
    pub fn nonzero_buckets(&self) -> Vec<(u16, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| (i as u16, *n))
            .collect()
    }

    /// Rebuilds a snapshot from the sparse wire form. Ignores
    /// out-of-range indices (a hostile peer cannot panic this).
    pub fn from_parts(count: u64, sum: u64, max: u64, buckets: &[(u16, u64)]) -> Self {
        let mut snap = Self {
            count,
            sum,
            max,
            ..Self::default()
        };
        for (i, n) in buckets {
            if let Some(slot) = snap.buckets.get_mut(*i as usize) {
                *slot = slot.saturating_add(*n);
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_log_linear() {
        // Values below 16 are exact.
        for v in 0..16u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_upper(v as usize), v);
        }
        // 16..32 is the first split octave — still exact (width 1).
        assert_eq!(bucket_of(16), 16);
        assert_eq!(bucket_of(31), 31);
        assert_eq!(bucket_upper(16), 16);
        // 1023 lands in octave [512, 1024), sub-bucket width 32.
        assert_eq!(bucket_of(1023), bucket_of(1008));
        assert_ne!(bucket_of(1023), bucket_of(1024));
        assert_eq!(bucket_upper(bucket_of(1023)), 1023);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
        // Every bucket's upper bound maps back into that bucket, and
        // the value one above it into the next — no gaps, no overlap.
        for i in 0..BUCKETS - 1 {
            let hi = bucket_upper(i);
            assert_eq!(bucket_of(hi), i, "upper({i})");
            assert_eq!(bucket_of(hi + 1), i + 1, "upper({i})+1");
        }
        // Relative error is bounded by one sub-bucket: 1/16.
        for v in [17u64, 1000, 65_537, 27_533_630, u64::MAX / 3] {
            let upper = bucket_upper(bucket_of(v));
            assert!(upper >= v);
            assert!((upper - v) as f64 <= v as f64 / 16.0, "v={v} upper={upper}");
        }
    }

    #[test]
    fn record_and_query() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000, 1000, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 7106);
        assert_eq!(s.max, 5000);
        // p50: rank ceil(0.5·7)=4 → the 100 (sub-bucket [100, 104)).
        assert_eq!(s.p50(), 103);
        assert!(s.p95() >= s.p50());
        assert_eq!(s.quantile(1.0), s.max.min(5119));
        assert!((s.mean() - 7106.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn same_octave_latencies_keep_distinct_quantiles() {
        // The BENCH_6 regression: grant latencies clustered around
        // 27.5 ms all sit inside the octave [2^24, 2^25), where the
        // old power-of-two buckets reported p50 == p99. The linear
        // sub-buckets must keep a spread distinguishable.
        let h = Histogram::new();
        for i in 0..100u64 {
            h.record(20_000_000 + i * 100_000); // 20.0 ms .. 29.9 ms
        }
        let s = h.snapshot();
        assert!(
            s.p50() < s.p99(),
            "p50 {} must stay below p99 {}",
            s.p50(),
            s.p99()
        );
        // And each is within a sub-bucket (6.25%) of the true value.
        let (true_p50, true_p99) = (24_900_000f64, 29_800_000f64);
        assert!((s.p50() as f64 - true_p50) / true_p50 < 0.0625);
        assert!((s.p99() as f64 - true_p99) / true_p99 < 0.0625);
    }

    #[test]
    fn empty_and_disabled_are_inert() {
        let s = HistogramSnapshot::default();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.quantile(f64::NAN), 0);
        assert_eq!(s.mean(), 0.0);
        let h = Histogram::disabled();
        h.record(5);
        h.record_f64(f64::MAX);
        assert_eq!(h.snapshot().count, 0);
        assert!(!h.is_enabled());
    }

    #[test]
    fn f64_recording_saturates_instead_of_panicking() {
        let h = Histogram::new();
        for v in [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MAX,
            f64::MIN,
            -1.0,
            0.5,
            1.5,
        ] {
            h.record_f64(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.max, u64::MAX); // f64::MAX and +inf clamp there.
        assert_eq!(s.buckets[BUCKETS - 1], 2); // +inf and f64::MAX.
        assert_eq!(s.buckets[0], 5); // NaN, −inf, MIN, −1.0, 0.5 → 0.
        assert_eq!(s.buckets[1], 1); // 1.5 → 1.
    }

    #[test]
    fn merge_equals_combined_recording() {
        let (a, b, c) = (Histogram::new(), Histogram::new(), Histogram::new());
        let xs = [3u64, 9, 81, 100_000];
        let ys = [1u64, 9, 7_777_777];
        for x in xs {
            a.record(x);
            c.record(x);
        }
        for y in ys {
            b.record(y);
            c.record(y);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, c.snapshot());
    }

    #[test]
    fn sparse_roundtrip() {
        let h = Histogram::new();
        for v in [1u64, 100, 100, 65_536] {
            h.record(v);
        }
        let s = h.snapshot();
        let back = HistogramSnapshot::from_parts(s.count, s.sum, s.max, &s.nonzero_buckets());
        assert_eq!(back, s);
        // Hostile bucket indices are ignored, not panicked on.
        let junk = HistogramSnapshot::from_parts(1, 1, 1, &[(BUCKETS as u16 + 7, 5)]);
        assert_eq!(junk.buckets.iter().sum::<u64>(), 0);
    }
}
