//! Log-bucketed histograms.
//!
//! A [`Histogram`] sorts recorded `u64` values into 64 power-of-two
//! buckets: bucket `i` holds values in `[2^i, 2^(i+1))` (bucket 0 also
//! takes 0). Recording is lock-free — one `fetch_add` per counter —
//! and a [`HistogramSnapshot`] is mergeable across histograms, shards,
//! or processes by plain bucket-wise addition, so percentile queries
//! survive aggregation (within one power-of-two of exact, which is the
//! deliberate trade for a fixed 64-slot footprint).
//!
//! A disabled histogram (from a disabled registry, or
//! [`Histogram::disabled`]) carries no storage: recording is a no-op
//! branch on an `Option`, which is what makes instrumentation
//! near-free when unused.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of power-of-two buckets — enough for the full `u64` range.
pub const BUCKETS: usize = 64;

/// The bucket a value falls into: `floor(log2(max(v, 1)))`.
fn bucket_of(v: u64) -> usize {
    (63 - (v | 1).leading_zeros()) as usize
}

/// The largest value bucket `i` can hold (its reported upper bound).
fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

#[derive(Debug)]
struct HistInner {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistInner {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A lock-free, log-bucketed histogram handle. Cloning shares the
/// underlying counters.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    inner: Option<Arc<HistInner>>,
}

impl Histogram {
    /// A live histogram.
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(HistInner::default())),
        }
    }

    /// A no-op handle: every record is a single branch.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether records land anywhere.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one value. Lock-free; relaxed ordering (the snapshot is
    /// a statistical view, not a synchronization point).
    pub fn record(&self, v: u64) {
        let Some(inner) = &self.inner else { return };
        inner.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records an `f64` by saturating cast: NaN and negatives clamp to
    /// 0, values past `u64::MAX` clamp to `u64::MAX` — no input
    /// panics.
    pub fn record_f64(&self, v: f64) {
        // Rust float→int `as` casts saturate (NaN → 0), which is
        // exactly the clamping contract.
        self.record(v as u64);
    }

    /// A point-in-time copy of the counters. Concurrent records may
    /// land between field reads; the snapshot is internally consistent
    /// enough for monitoring (counts never decrease, never tear within
    /// one bucket).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::default();
        if let Some(inner) = &self.inner {
            for (slot, bucket) in snap.buckets.iter_mut().zip(&inner.buckets) {
                *slot = bucket.load(Ordering::Relaxed);
            }
            snap.count = inner.count.load(Ordering::Relaxed);
            snap.sum = inner.sum.load(Ordering::Relaxed);
            snap.max = inner.max.load(Ordering::Relaxed);
        }
        snap
    }
}

/// A mergeable, queryable copy of a histogram's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; bucket `i` covers `[2^i, 2^(i+1))`.
    pub buckets: [u64; BUCKETS],
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (wrapping at `u64::MAX`).
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Folds another snapshot in: bucket-wise addition, max of maxes.
    /// Merging distributes over recording — merging two snapshots
    /// equals snapshotting one histogram that saw both value streams.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.count = self.count.saturating_add(other.count);
        // `record` accumulates the sum with a wrapping `fetch_add`;
        // merge must wrap the same way or merging loses distributivity.
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The value at quantile `q ∈ [0, 1]`, reported as the upper bound
    /// of the bucket holding that rank, clamped to the observed max
    /// (and 0 when empty). Monotone in `q`, never panics: NaN and
    /// out-of-range quantiles clamp into `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the q-quantile among `count` ordered values,
        // 1-based; q = 0 maps to rank 1, q = 1 to rank count.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(*n);
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (upper-bounded by bucket; see [`Self::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Exact arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(index, count)` pairs — the sparse form
    /// the wire protocol ships.
    pub fn nonzero_buckets(&self) -> Vec<(u8, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| (i as u8, *n))
            .collect()
    }

    /// Rebuilds a snapshot from the sparse wire form. Ignores
    /// out-of-range indices (a hostile peer cannot panic this).
    pub fn from_parts(count: u64, sum: u64, max: u64, buckets: &[(u8, u64)]) -> Self {
        let mut snap = Self {
            count,
            sum,
            max,
            ..Self::default()
        };
        for (i, n) in buckets {
            if let Some(slot) = snap.buckets.get_mut(*i as usize) {
                *slot = slot.saturating_add(*n);
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketing_is_power_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), 63);
        assert_eq!(bucket_upper(0), 1);
        assert_eq!(bucket_upper(9), 1023);
        assert_eq!(bucket_upper(63), u64::MAX);
    }

    #[test]
    fn record_and_query() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000, 1000, 5000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 7106);
        assert_eq!(s.max, 5000);
        // p50: rank ceil(0.5·7)=4 → the 100 (bucket 6, upper 127).
        assert_eq!(s.p50(), 127);
        assert!(s.p95() >= s.p50());
        assert_eq!(s.quantile(1.0), s.max.min(8191));
        assert!((s.mean() - 7106.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_disabled_are_inert() {
        let s = HistogramSnapshot::default();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.quantile(f64::NAN), 0);
        assert_eq!(s.mean(), 0.0);
        let h = Histogram::disabled();
        h.record(5);
        h.record_f64(f64::MAX);
        assert_eq!(h.snapshot().count, 0);
        assert!(!h.is_enabled());
    }

    #[test]
    fn f64_recording_saturates_instead_of_panicking() {
        let h = Histogram::new();
        for v in [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MAX,
            f64::MIN,
            -1.0,
            0.5,
            1.5,
        ] {
            h.record_f64(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.max, u64::MAX); // f64::MAX and +inf clamp there.
        assert_eq!(s.buckets[63], 2); // +inf and f64::MAX.
        assert_eq!(s.buckets[0], 6); // NaN, −inf, MIN, −1.0, 0.5 → 0; 1.5 → 1.
    }

    #[test]
    fn merge_equals_combined_recording() {
        let (a, b, c) = (Histogram::new(), Histogram::new(), Histogram::new());
        let xs = [3u64, 9, 81, 100_000];
        let ys = [1u64, 9, 7_777_777];
        for x in xs {
            a.record(x);
            c.record(x);
        }
        for y in ys {
            b.record(y);
            c.record(y);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, c.snapshot());
    }

    #[test]
    fn sparse_roundtrip() {
        let h = Histogram::new();
        for v in [1u64, 100, 100, 65_536] {
            h.record(v);
        }
        let s = h.snapshot();
        let back = HistogramSnapshot::from_parts(s.count, s.sum, s.max, &s.nonzero_buckets());
        assert_eq!(back, s);
        // Hostile bucket indices are ignored, not panicked on.
        let junk = HistogramSnapshot::from_parts(1, 1, 1, &[(200, 5)]);
        assert_eq!(junk.buckets.iter().sum::<u64>(), 0);
    }
}
