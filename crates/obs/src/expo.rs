//! Prometheus-style text exposition.
//!
//! Renders a [`MetricsSnapshot`] in the text format scrapers expect:
//! counters and gauges as single samples, histograms as summaries
//! (`{quantile="…"}` samples plus `_sum`/`_count`/`_max`). Values are
//! rendered in the instrument's native unit — time histograms in this
//! workspace record nanoseconds and carry a `_nanos` suffix, so no
//! hidden unit conversion happens here.

use std::fmt::Write as _;

use crate::registry::{MetricsSnapshot, Value};

/// Escapes one label **value** for the text format: backslash, double
/// quote, and newline become `\\`, `\"`, and `\n`. The registry stores
/// label sets pre-rendered (`name="value"`), so callers interpolating
/// untrusted values (tenant names, file paths) escape them with this
/// before registering.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn sample_line(
    out: &mut String,
    name: &str,
    labels: &str,
    extra: &str,
    value: impl std::fmt::Display,
) {
    let sep = if labels.is_empty() || extra.is_empty() {
        ""
    } else {
        ","
    };
    if labels.is_empty() && extra.is_empty() {
        let _ = writeln!(out, "{name} {value}");
    } else {
        let _ = writeln!(out, "{name}{{{labels}{sep}{extra}}} {value}");
    }
}

/// Renders the text exposition. Families appear in snapshot order
/// (sorted by name), each prefixed with one `# TYPE` line; label sets
/// of one family stay adjacent.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_family: Option<&str> = None;
    for sample in &snapshot.samples {
        let family_type = match &sample.value {
            Value::Counter(_) => "counter",
            Value::Gauge(_) => "gauge",
            Value::Histogram(_) => "summary",
        };
        if last_family != Some(sample.name.as_str()) {
            let _ = writeln!(out, "# TYPE {} {}", sample.name, family_type);
            last_family = Some(sample.name.as_str());
        }
        match &sample.value {
            Value::Counter(n) => sample_line(&mut out, &sample.name, &sample.labels, "", n),
            Value::Gauge(v) => sample_line(&mut out, &sample.name, &sample.labels, "", v),
            Value::Histogram(h) => {
                for (q, v) in [
                    ("0.5", h.p50()),
                    ("0.95", h.p95()),
                    ("0.99", h.p99()),
                    ("1", h.max),
                ] {
                    sample_line(
                        &mut out,
                        &sample.name,
                        &sample.labels,
                        &format!("quantile=\"{q}\""),
                        v,
                    );
                }
                let sum_name = format!("{}_sum", sample.name);
                sample_line(&mut out, &sum_name, &sample.labels, "", h.sum);
                let count_name = format!("{}_count", sample.name);
                sample_line(&mut out, &count_name, &sample.labels, "", h.count);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::registry::Registry;

    #[test]
    fn renders_all_three_kinds() {
        let r = Registry::new();
        r.counter("dpack_granted_total", "").add(42);
        r.gauge("dpack_queue_depth", "").set_u64(7);
        let h = r.histogram("dpack_cycle_nanos", "phase=\"ingest\"");
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        let text = r.snapshot().render();
        assert!(text.contains("# TYPE dpack_granted_total counter\ndpack_granted_total 42\n"));
        assert!(text.contains("# TYPE dpack_queue_depth gauge\ndpack_queue_depth 7\n"));
        assert!(text.contains("# TYPE dpack_cycle_nanos summary\n"));
        assert!(text.contains("dpack_cycle_nanos{phase=\"ingest\",quantile=\"0.5\"} 207"));
        assert!(text.contains("dpack_cycle_nanos{phase=\"ingest\",quantile=\"1\"} 300"));
        assert!(text.contains("dpack_cycle_nanos_sum{phase=\"ingest\"} 600"));
        assert!(text.contains("dpack_cycle_nanos_count{phase=\"ingest\"} 3"));
    }

    #[test]
    fn one_type_line_per_family_across_label_sets() {
        let r = Registry::new();
        r.counter("x_total", "shard=\"0\"").inc();
        r.counter("x_total", "shard=\"1\"").inc();
        let text = r.snapshot().render();
        assert_eq!(text.matches("# TYPE x_total counter").count(), 1);
        assert!(text.contains("x_total{shard=\"0\"} 1"));
        assert!(text.contains("x_total{shard=\"1\"} 1"));
    }
}
