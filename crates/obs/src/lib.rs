//! `dpack-obs`: the observability spine of the DPack service stack.
//!
//! The paper's operational claims (§6.4: "system-related overheads
//! dominate runtime"; the Fig. 8 latency regime) are claims about
//! *measured* behavior — and PrivateKube's production experience shows
//! a budget scheduler is operated through its queue depths, grant
//! latencies, and consumption counters. This crate is the std-only
//! substrate those measurements flow through:
//!
//! * [`Registry`] — atomic counters and gauges plus log-bucketed,
//!   lock-free [`Histogram`]s (power-of-two buckets, mergeable
//!   [`HistogramSnapshot`]s with p50/p95/p99/max), registered by name
//!   and label set. Handles from a [`Registry::disabled`] registry are
//!   inert, so instrumentation costs one branch when unused.
//! * [`Clock`] — the time seam. Production uses [`WallClock`];
//!   deterministic tests substitute a [`ManualClock`] and assert span
//!   timings exactly.
//! * [`FlightRecorder`] — a fixed-capacity ring of structured
//!   [`Event`]s with sequence numbers, dumpable for post-mortems and
//!   assertable in crash-recovery tests.
//! * [`expo`] — Prometheus-style text exposition over a
//!   [`MetricsSnapshot`]; the same snapshot travels the dpack-net wire
//!   as the `Metrics` response.
//! * [`trace`] — distributed causal tracing: seeded trace/span ids, a
//!   lock-free [`SpanRing`] sibling of the recorder, and the
//!   [`SpanTree`] assembler that merges per-node dumps into one causal
//!   tree per traced grant.
//!
//! [`Obs`] bundles the seams into the single handle the service,
//! WAL, and reactor layers thread through their constructors.

pub mod clock;
pub mod expo;
pub mod hist;
pub mod recorder;
pub mod registry;
pub mod trace;

use std::sync::Arc;

pub use clock::{Clock, ManualClock, WallClock};
pub use hist::{Histogram, HistogramSnapshot, BUCKETS};
pub use recorder::{Event, EventKind, FlightRecorder};
pub use registry::{Counter, Gauge, MetricsSnapshot, Registry, Sample, Value};
pub use trace::{Span, SpanKind, SpanRing, SpanTree, TraceContext, Tracer};

/// Default flight-recorder retention: generous enough to hold a full
/// crash-recovery trace plus steady-state traffic, small enough to be
/// memory-irrelevant.
pub const DEFAULT_RECORDER_CAPACITY: usize = 4096;

/// Default span-ring retention, sized like the recorder: a traced
/// replicated grant emits on the order of ten spans, so this holds
/// hundreds of recent traces.
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// The tracer seed for deterministic (non-wall) contexts: every
/// manual-clock test draws the same trace-id stream.
const MANUAL_TRACER_SEED: u64 = 0x00DA_0000_7ACE_0001;

/// The bundled observability context one component tree shares: a
/// registry, a flight recorder, a span ring + tracer, and a clock.
#[derive(Debug, Clone)]
pub struct Obs {
    /// The instrument registry.
    pub registry: Registry,
    /// The event ring.
    pub recorder: FlightRecorder,
    /// The span ring distributed traces record into.
    pub spans: SpanRing,
    tracer: Arc<Tracer>,
    clock: Arc<dyn Clock>,
}

impl Obs {
    /// The production default: live registry and recorder, wall clock.
    /// The tracer seed is drawn from the clock, so distinct processes
    /// draw distinct trace-id streams.
    pub fn wall() -> Arc<Self> {
        let clock = Arc::new(WallClock::new());
        let seed = clock.now_nanos();
        Arc::new(Self::live(clock, seed))
    }

    /// A live registry/recorder on an arbitrary clock. The clock is
    /// **not** read here (a [`ManualClock`]'s reads are part of its
    /// deterministic contract), so the tracer runs on the fixed
    /// deterministic seed; see [`Obs::wall`] for the wall-seeded form.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Arc<Self> {
        Arc::new(Self::live(clock, MANUAL_TRACER_SEED))
    }

    fn live(clock: Arc<dyn Clock>, tracer_seed: u64) -> Self {
        let registry = Registry::new();
        let recorder = FlightRecorder::new(DEFAULT_RECORDER_CAPACITY)
            .with_dropped_counter(registry.counter("dpack_recorder_dropped_total", ""));
        Self {
            registry,
            recorder,
            spans: SpanRing::new(DEFAULT_SPAN_CAPACITY),
            tracer: Arc::new(Tracer::seeded(tracer_seed)),
            clock,
        }
    }

    /// Fully disabled: inert handles, zero-capacity recorder and span
    /// ring, frozen clock. This is the "metrics off" leg of the
    /// overhead benchmark and the right default for decision-parity
    /// replays.
    pub fn off() -> Arc<Self> {
        Arc::new(Self {
            registry: Registry::disabled(),
            recorder: FlightRecorder::disabled(),
            spans: SpanRing::disabled(),
            tracer: Arc::new(Tracer::seeded(MANUAL_TRACER_SEED)),
            clock: Arc::new(ManualClock::new()),
        })
    }

    /// A live context on a [`ManualClock`], returned alongside the
    /// clock so the test can drive it. The tracer runs on the fixed
    /// seed: trace ids (and every span id derived from them) replay
    /// exactly.
    pub fn manual(tick: u64) -> (Arc<Self>, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::with_tick(tick));
        (
            Arc::new(Self::live(
                Arc::clone(&clock) as Arc<dyn Clock>,
                MANUAL_TRACER_SEED,
            )),
            clock,
        )
    }

    /// The clock seam.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// The trace-id source (seeded rand shim; see [`Tracer`]).
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Reads the clock.
    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// Whether the registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_context_is_live() {
        let obs = Obs::wall();
        assert!(obs.is_enabled());
        obs.registry.counter("c", "").inc();
        assert_eq!(obs.registry.snapshot().counter_total("c"), 1);
        obs.recorder.record(EventKind::TaskAdmitted, 1, 0);
        assert_eq!(obs.recorder.dump().len(), 1);
    }

    #[test]
    fn off_context_records_nothing() {
        let obs = Obs::off();
        assert!(!obs.is_enabled());
        obs.registry.counter("c", "").inc();
        obs.recorder.record(EventKind::TaskAdmitted, 1, 0);
        assert!(obs.registry.snapshot().samples.is_empty());
        assert!(obs.recorder.dump().is_empty());
        assert_eq!(obs.now_nanos(), 0);
    }

    #[test]
    fn manual_context_ticks_deterministically() {
        let (obs, clock) = Obs::manual(250);
        assert_eq!(obs.now_nanos(), 0);
        assert_eq!(obs.now_nanos(), 250);
        clock.advance(1_000);
        assert_eq!(obs.now_nanos(), 1_500);
    }
}
