//! `dpack-obs`: the observability spine of the DPack service stack.
//!
//! The paper's operational claims (§6.4: "system-related overheads
//! dominate runtime"; the Fig. 8 latency regime) are claims about
//! *measured* behavior — and PrivateKube's production experience shows
//! a budget scheduler is operated through its queue depths, grant
//! latencies, and consumption counters. This crate is the std-only
//! substrate those measurements flow through:
//!
//! * [`Registry`] — atomic counters and gauges plus log-bucketed,
//!   lock-free [`Histogram`]s (power-of-two buckets, mergeable
//!   [`HistogramSnapshot`]s with p50/p95/p99/max), registered by name
//!   and label set. Handles from a [`Registry::disabled`] registry are
//!   inert, so instrumentation costs one branch when unused.
//! * [`Clock`] — the time seam. Production uses [`WallClock`];
//!   deterministic tests substitute a [`ManualClock`] and assert span
//!   timings exactly.
//! * [`FlightRecorder`] — a fixed-capacity ring of structured
//!   [`Event`]s with sequence numbers, dumpable for post-mortems and
//!   assertable in crash-recovery tests.
//! * [`expo`] — Prometheus-style text exposition over a
//!   [`MetricsSnapshot`]; the same snapshot travels the dpack-net wire
//!   as the `Metrics` response.
//!
//! [`Obs`] bundles the three seams into the single handle the service,
//! WAL, and reactor layers thread through their constructors.

pub mod clock;
pub mod expo;
pub mod hist;
pub mod recorder;
pub mod registry;

use std::sync::Arc;

pub use clock::{Clock, ManualClock, WallClock};
pub use hist::{Histogram, HistogramSnapshot, BUCKETS};
pub use recorder::{Event, EventKind, FlightRecorder};
pub use registry::{Counter, Gauge, MetricsSnapshot, Registry, Sample, Value};

/// Default flight-recorder retention: generous enough to hold a full
/// crash-recovery trace plus steady-state traffic, small enough to be
/// memory-irrelevant.
pub const DEFAULT_RECORDER_CAPACITY: usize = 4096;

/// The bundled observability context one component tree shares: a
/// registry, a flight recorder, and a clock.
#[derive(Debug, Clone)]
pub struct Obs {
    /// The instrument registry.
    pub registry: Registry,
    /// The event ring.
    pub recorder: FlightRecorder,
    clock: Arc<dyn Clock>,
}

impl Obs {
    /// The production default: live registry and recorder, wall clock.
    pub fn wall() -> Arc<Self> {
        Self::with_clock(Arc::new(WallClock::new()))
    }

    /// A live registry/recorder on an arbitrary clock.
    pub fn with_clock(clock: Arc<dyn Clock>) -> Arc<Self> {
        Arc::new(Self {
            registry: Registry::new(),
            recorder: FlightRecorder::new(DEFAULT_RECORDER_CAPACITY),
            clock,
        })
    }

    /// Fully disabled: inert handles, zero-capacity recorder, frozen
    /// clock. This is the "metrics off" leg of the overhead benchmark
    /// and the right default for decision-parity replays.
    pub fn off() -> Arc<Self> {
        Arc::new(Self {
            registry: Registry::disabled(),
            recorder: FlightRecorder::disabled(),
            clock: Arc::new(ManualClock::new()),
        })
    }

    /// A live context on a [`ManualClock`], returned alongside the
    /// clock so the test can drive it.
    pub fn manual(tick: u64) -> (Arc<Self>, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::with_tick(tick));
        (
            Arc::new(Self {
                registry: Registry::new(),
                recorder: FlightRecorder::new(DEFAULT_RECORDER_CAPACITY),
                clock: Arc::clone(&clock) as Arc<dyn Clock>,
            }),
            clock,
        )
    }

    /// The clock seam.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Reads the clock.
    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// Whether the registry records anything.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_context_is_live() {
        let obs = Obs::wall();
        assert!(obs.is_enabled());
        obs.registry.counter("c", "").inc();
        assert_eq!(obs.registry.snapshot().counter_total("c"), 1);
        obs.recorder.record(EventKind::TaskAdmitted, 1, 0);
        assert_eq!(obs.recorder.dump().len(), 1);
    }

    #[test]
    fn off_context_records_nothing() {
        let obs = Obs::off();
        assert!(!obs.is_enabled());
        obs.registry.counter("c", "").inc();
        obs.recorder.record(EventKind::TaskAdmitted, 1, 0);
        assert!(obs.registry.snapshot().samples.is_empty());
        assert!(obs.recorder.dump().is_empty());
        assert_eq!(obs.now_nanos(), 0);
    }

    #[test]
    fn manual_context_ticks_deterministically() {
        let (obs, clock) = Obs::manual(250);
        assert_eq!(obs.now_nanos(), 0);
        assert_eq!(obs.now_nanos(), 250);
        clock.advance(1_000);
        assert_eq!(obs.now_nanos(), 1_500);
    }
}
