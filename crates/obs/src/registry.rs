//! The metrics registry: one named home for every counter, gauge, and
//! histogram in the process.
//!
//! Instruments are registered by **name + label set** (labels travel
//! pre-rendered, e.g. `phase="ingest"`); registering the same pair
//! twice returns a handle to the same underlying cells, which is how
//! independent layers (service, WAL, reactor) share one metrics truth
//! without threading handles through every constructor. Registration
//! takes the registry lock once; the handles it returns are lock-free
//! atomics, so the hot paths never touch the registry again.
//!
//! A registry created with [`Registry::disabled`] hands out inert
//! handles — recording through them is a single predictable branch —
//! which is both the "near-zero cost when unused" contract and the
//! off-leg of the instrumentation-overhead benchmark.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramSnapshot};

/// A monotone counter handle. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A no-op handle.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-write-wins gauge handle storing an `f64`. Cloning shares the
/// cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// A no-op handle.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.cell {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Sets the gauge from an integer (depths, sizes).
    pub fn set_u64(&self, v: u64) {
        self.set(v as f64);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        self.cell
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// One registered instrument.
#[derive(Debug, Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The value of one sample in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A monotone count.
    Counter(u64),
    /// A point-in-time level.
    Gauge(f64),
    /// A mergeable distribution (boxed: a snapshot's 64 buckets would
    /// otherwise dominate every counter/gauge sample's size).
    Histogram(Box<HistogramSnapshot>),
}

/// One named sample of a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The metric family name (`dpack_granted_total`).
    pub name: String,
    /// Pre-rendered label pairs (`phase="ingest"`), empty for none.
    pub labels: String,
    /// The sampled value.
    pub value: Value,
}

/// A point-in-time copy of every registered instrument, ordered by
/// (name, labels) — deterministic for rendering and diffing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// The samples, sorted by (name, labels).
    pub samples: Vec<Sample>,
}

impl MetricsSnapshot {
    /// Finds a sample by name and labels.
    pub fn get(&self, name: &str, labels: &str) -> Option<&Value> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels == labels)
            .map(|s| &s.value)
    }

    /// Sum of a counter family across label sets.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| match &s.value {
                Value::Counter(n) => *n,
                _ => 0,
            })
            .sum()
    }

    /// A histogram sample's snapshot, if that is what the name holds.
    pub fn histogram(&self, name: &str, labels: &str) -> Option<&HistogramSnapshot> {
        match self.get(name, labels) {
            Some(Value::Histogram(h)) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// Renders the Prometheus-style text exposition (see
    /// [`crate::expo::render`]).
    pub fn render(&self) -> String {
        crate::expo::render(self)
    }

    /// Folds `other` into this snapshot sample-by-sample — the
    /// cluster-wide aggregation over per-node scrapes: counters sum,
    /// gauges sum (levels like queue depths and lags add across
    /// nodes), histograms merge bucket-wise. A (name, labels) pair
    /// present on only one side passes through; a kind mismatch keeps
    /// the existing side (same forgiveness as registering a name
    /// twice at different kinds). Output order stays (name, labels).
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        let mut merged: BTreeMap<(String, String), Value> = self
            .samples
            .drain(..)
            .map(|s| ((s.name, s.labels), s.value))
            .collect();
        for sample in &other.samples {
            let key = (sample.name.clone(), sample.labels.clone());
            match merged.get_mut(&key) {
                None => {
                    merged.insert(key, sample.value.clone());
                }
                Some(Value::Counter(mine)) => {
                    if let Value::Counter(theirs) = &sample.value {
                        *mine += theirs;
                    }
                }
                Some(Value::Gauge(mine)) => {
                    if let Value::Gauge(theirs) = &sample.value {
                        *mine += theirs;
                    }
                }
                Some(Value::Histogram(mine)) => {
                    if let Value::Histogram(theirs) = &sample.value {
                        mine.merge(theirs);
                    }
                }
            }
        }
        self.samples = merged
            .into_iter()
            .map(|((name, labels), value)| Sample {
                name,
                labels,
                value,
            })
            .collect();
    }

    /// The cluster-wide aggregate of many per-node snapshots (see
    /// [`MetricsSnapshot::absorb`]).
    pub fn merged<'a>(snapshots: impl IntoIterator<Item = &'a MetricsSnapshot>) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for snap in snapshots {
            out.absorb(snap);
        }
        out
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    metrics: Mutex<BTreeMap<(String, String), Instrument>>,
}

/// The process-wide (or service-wide) instrument registry. Cloning
/// shares the underlying table.
#[derive(Debug, Clone)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
}

impl Registry {
    /// A live registry.
    pub fn new() -> Self {
        Self {
            inner: Some(Arc::new(RegistryInner::default())),
        }
    }

    /// A registry that hands out inert handles and snapshots empty.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether instruments registered here record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn register<T: Clone>(
        &self,
        name: &str,
        labels: &str,
        disabled: T,
        make: impl FnOnce() -> Instrument,
        pick: impl FnOnce(&Instrument) -> Option<T>,
    ) -> T {
        let Some(inner) = &self.inner else {
            return disabled;
        };
        let mut metrics = inner.metrics.lock().expect("registry lock poisoned");
        let entry = metrics
            .entry((name.to_string(), labels.to_string()))
            .or_insert_with(make);
        // A name registered as two different kinds is a programming
        // error; the second caller gets an inert handle rather than a
        // panic on a monitoring path.
        pick(entry).unwrap_or(disabled)
    }

    /// Registers (or re-opens) a counter.
    pub fn counter(&self, name: &str, labels: &str) -> Counter {
        self.register(
            name,
            labels,
            Counter::disabled(),
            || {
                Instrument::Counter(Counter {
                    cell: Some(Arc::new(AtomicU64::new(0))),
                })
            },
            |i| match i {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// Registers (or re-opens) a gauge.
    pub fn gauge(&self, name: &str, labels: &str) -> Gauge {
        self.register(
            name,
            labels,
            Gauge::disabled(),
            || {
                Instrument::Gauge(Gauge {
                    cell: Some(Arc::new(AtomicU64::new(0f64.to_bits()))),
                })
            },
            |i| match i {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// Registers (or re-opens) a histogram.
    pub fn histogram(&self, name: &str, labels: &str) -> Histogram {
        self.register(
            name,
            labels,
            Histogram::disabled(),
            || Instrument::Histogram(Histogram::new()),
            |i| match i {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Samples every registered instrument, in (name, labels) order.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let metrics = inner.metrics.lock().expect("registry lock poisoned");
        MetricsSnapshot {
            samples: metrics
                .iter()
                .map(|((name, labels), instrument)| Sample {
                    name: name.clone(),
                    labels: labels.clone(),
                    value: match instrument {
                        Instrument::Counter(c) => Value::Counter(c.get()),
                        Instrument::Gauge(g) => Value::Gauge(g.get()),
                        Instrument::Histogram(h) => Value::Histogram(Box::new(h.snapshot())),
                    },
                })
                .collect(),
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_cells_by_name_and_labels() {
        let r = Registry::new();
        let a = r.counter("requests", "");
        let b = r.counter("requests", "");
        let other = r.counter("requests", "tenant=\"1\"");
        a.inc();
        b.add(2);
        other.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(other.get(), 1);
        assert_eq!(r.snapshot().counter_total("requests"), 4);
    }

    #[test]
    fn gauges_and_histograms_register() {
        let r = Registry::new();
        let g = r.gauge("depth", "");
        g.set_u64(7);
        let h = r.histogram("lat", "");
        h.record(100);
        let snap = r.snapshot();
        assert_eq!(snap.get("depth", ""), Some(&Value::Gauge(7.0)));
        assert_eq!(snap.histogram("lat", "").unwrap().count, 1);
        assert!(snap.get("absent", "").is_none());
    }

    #[test]
    fn kind_conflicts_yield_inert_handles_not_panics() {
        let r = Registry::new();
        let c = r.counter("x", "");
        c.inc();
        let g = r.gauge("x", "");
        g.set(5.0); // Inert: "x" is already a counter.
        assert_eq!(g.get(), 0.0);
        assert_eq!(r.snapshot().counter_total("x"), 1);
    }

    #[test]
    fn disabled_registry_is_free_and_empty() {
        let r = Registry::disabled();
        assert!(!r.is_enabled());
        let c = r.counter("x", "");
        let g = r.gauge("y", "");
        let h = r.histogram("z", "");
        c.inc();
        g.set(1.0);
        h.record(1);
        assert_eq!(c.get(), 0);
        assert!(r.snapshot().samples.is_empty());
    }

    #[test]
    fn snapshot_is_sorted_and_deterministic() {
        let r = Registry::new();
        r.counter("b", "").inc();
        r.counter("a", "x=\"2\"").inc();
        r.counter("a", "x=\"1\"").inc();
        let names: Vec<(String, String)> = r
            .snapshot()
            .samples
            .into_iter()
            .map(|s| (s.name, s.labels))
            .collect();
        assert_eq!(
            names,
            vec![
                ("a".into(), "x=\"1\"".into()),
                ("a".into(), "x=\"2\"".into()),
                ("b".into(), "".into())
            ]
        );
    }
}
