//! The flight recorder: a fixed-capacity ring of structured events.
//!
//! Counters say *how much*; the recorder says *what happened, in what
//! order*. Every event carries a process-unique sequence number, a
//! typed kind, and two `u64` payload words whose meaning the kind
//! fixes (task id + tenant, shard + record count, …) — no timestamps,
//! so a dump taken after a deterministic run is itself deterministic
//! and tests can assert against it byte-for-byte.
//!
//! The ring holds the most recent `capacity` events; older ones fall
//! off the front (their sequence numbers keep counting, so a dump
//! always reveals whether it is complete: a gap before the first
//! retained seq means truncation).
//!
//! Recording is **lock-free**: one `fetch_add` claims a sequence
//! number (and with it a slot), and a per-slot seqlock publishes the
//! payload. Writers on the grant path never contend on a mutex; a
//! concurrent [`FlightRecorder::dump`] simply skips slots caught
//! mid-overwrite. Dumps taken at quiescence — how every test and
//! post-mortem uses them — are exact and deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::registry::Counter;

/// What happened. The payload words `a`/`b` are per-kind:
///
/// | kind | `a` | `b` |
/// |---|---|---|
/// | `TaskAdmitted` | task id | tenant |
/// | `TaskGranted` | task id | virtual grant time (`f64::to_bits`) |
/// | `TaskEvicted` | task id | virtual eviction time (`f64::to_bits`) |
/// | `BatchFlushed` | shard | records in the flush |
/// | `RecoveryStarted` | shard count | 0 |
/// | `RecoveryCoordinator` | committed attempts | highest attempt |
/// | `RecoveryShard` | shard | records replayed |
/// | `RecoveryApplied` | task id | 2PC attempt + 1 (0 = shard-local) |
/// | `RecoveryFinished` | blocks recovered | 0 |
/// | `ProtocolViolation` | connection ordinal | 0 |
/// | `ReplicaApplied` | stream (shard, `u32::MAX` = coordinator) | batch seq |
/// | `AcceptRejected` | 0 | 0 |
/// | `LeaderElected` | term | winning node id |
/// | `PeerStateChanged` | peer node id | new state (0 up / 1 suspect / 2 down) |
/// | `ReplicaResynced` | peer node id | lineage (the installing primary's term) |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A submission passed admission into the queue.
    TaskAdmitted = 1,
    /// A scheduling cycle committed the task's grant.
    TaskGranted = 2,
    /// The task timed out and left the pending set.
    TaskEvicted = 3,
    /// A group-commit batch flushed to one shard's WAL.
    BatchFlushed = 4,
    /// Crash recovery began.
    RecoveryStarted = 5,
    /// The coordinator log was folded (2PC decisions known).
    RecoveryCoordinator = 6,
    /// One shard's log was replayed.
    RecoveryShard = 7,
    /// Recovery re-applied one durable grant.
    RecoveryApplied = 8,
    /// Recovery completed; the ledger is live.
    RecoveryFinished = 9,
    /// A peer broke the wire protocol and was disconnected.
    ProtocolViolation = 10,
    /// A replica durably applied one replicated WAL batch.
    ReplicaApplied = 11,
    /// The accept loop refused an incoming socket (setup failed).
    AcceptRejected = 12,
    /// A node won a leader election and promoted.
    LeaderElected = 13,
    /// A peer's failure-detector state changed (up/suspect/down).
    PeerStateChanged = 14,
    /// A lagging replica was resynced (snapshot install + commit).
    ReplicaResynced = 15,
}

impl EventKind {
    /// Decodes the wire byte; `None` for unknown kinds.
    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => Self::TaskAdmitted,
            2 => Self::TaskGranted,
            3 => Self::TaskEvicted,
            4 => Self::BatchFlushed,
            5 => Self::RecoveryStarted,
            6 => Self::RecoveryCoordinator,
            7 => Self::RecoveryShard,
            8 => Self::RecoveryApplied,
            9 => Self::RecoveryFinished,
            10 => Self::ProtocolViolation,
            11 => Self::ReplicaApplied,
            12 => Self::AcceptRejected,
            13 => Self::LeaderElected,
            14 => Self::PeerStateChanged,
            15 => Self::ReplicaResynced,
            _ => return None,
        })
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Process-unique, strictly increasing sequence number (from 1).
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
    /// First payload word (see [`EventKind`]).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

/// One seqlock-published ring slot. `seq == 0` means empty or
/// mid-write; writers clear `seq`, store the payload, then publish the
/// new `seq` with `Release` so a reader that sees the same nonzero
/// `seq` on both sides of its payload reads saw a consistent event.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Self {
            seq: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }

    /// A consistent snapshot of the slot, or `None` if it is empty or
    /// a writer raced the read.
    fn read(&self) -> Option<Event> {
        let before = self.seq.load(Ordering::Acquire);
        if before == 0 {
            return None;
        }
        let kind = self.kind.load(Ordering::Relaxed);
        let a = self.a.load(Ordering::Relaxed);
        let b = self.b.load(Ordering::Relaxed);
        if self.seq.load(Ordering::Acquire) != before {
            return None;
        }
        let kind = EventKind::from_u8(u8::try_from(kind).ok()?)?;
        Some(Event {
            seq: before,
            kind,
            a,
            b,
        })
    }
}

#[derive(Debug)]
struct RecorderInner {
    next_seq: AtomicU64,
    slots: Box<[Slot]>,
    /// Counts ring evictions (a dump with a seq gap before its first
    /// retained event is a truncated dump — this makes the silent gap
    /// a scrapable `dpack_recorder_dropped_total` signal). Inert
    /// unless wired to a live registry.
    dropped: Counter,
}

/// A shared, fixed-capacity event ring. Cloning shares the ring.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<RecorderInner>,
}

impl FlightRecorder {
    /// A recorder retaining the most recent `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Arc::new(RecorderInner {
                next_seq: AtomicU64::new(0),
                slots: (0..capacity).map(|_| Slot::empty()).collect(),
                dropped: Counter::disabled(),
            }),
        }
    }

    /// Wires the eviction counter (typically the registry's
    /// `dpack_recorder_dropped_total`). Call before the recorder is
    /// cloned/shared.
    ///
    /// # Panics
    ///
    /// Panics if the recorder is already shared.
    #[must_use]
    pub fn with_dropped_counter(mut self, dropped: Counter) -> Self {
        Arc::get_mut(&mut self.inner)
            .expect("wire the dropped counter before sharing")
            .dropped = dropped;
        self
    }

    /// Total events evicted by the ring (recorded − retained): the
    /// truncation a dump's leading seq gap silently implies.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.get()
    }

    /// A recorder that drops everything (capacity 0): recording is an
    /// early return.
    pub fn disabled() -> Self {
        Self::new(0)
    }

    /// The retention capacity.
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Appends one event, evicting the oldest at capacity. Lock-free:
    /// one `fetch_add` claims the slot, a seqlock publishes it.
    pub fn record(&self, kind: EventKind, a: u64, b: u64) {
        let slots = &self.inner.slots;
        if slots.is_empty() {
            return;
        }
        let seq = self.inner.next_seq.fetch_add(1, Ordering::Relaxed) + 1;
        if seq > slots.len() as u64 {
            // This claim overwrites the oldest retained event.
            self.inner.dropped.inc();
        }
        let slot = &slots[(seq - 1) as usize % slots.len()];
        slot.seq.store(0, Ordering::Release); // Invalidate for readers.
        slot.kind.store(u64::from(kind as u8), Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.seq.store(seq, Ordering::Release);
    }

    /// The retained events in sequence order. Concurrent with writers,
    /// events caught mid-overwrite are skipped; at quiescence the dump
    /// is exact.
    pub fn dump(&self) -> Vec<Event> {
        self.dump_since(0)
    }

    /// The retained events with `seq >= since`, in sequence order —
    /// the incremental form a remote trace scrape uses.
    pub fn dump_since(&self, since: u64) -> Vec<Event> {
        let mut events: Vec<Event> = self
            .inner
            .slots
            .iter()
            .filter_map(Slot::read)
            .filter(|e| e.seq >= since)
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Total events ever recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.inner.next_seq.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_are_dense_and_ordered() {
        let r = FlightRecorder::new(8);
        for i in 0..5u64 {
            r.record(EventKind::TaskAdmitted, i, 0);
        }
        let dump = r.dump();
        assert_eq!(dump.len(), 5);
        assert_eq!(
            dump.iter().map(|e| e.seq).collect::<Vec<_>>(),
            [1, 2, 3, 4, 5]
        );
        assert_eq!(r.dump_since(4).len(), 2);
        assert_eq!(r.recorded(), 5);
    }

    #[test]
    fn ring_evicts_oldest_but_keeps_counting() {
        let r = FlightRecorder::new(3);
        for i in 0..10u64 {
            r.record(EventKind::BatchFlushed, i, i * 2);
        }
        let dump = r.dump();
        assert_eq!(dump.len(), 3);
        assert_eq!(dump[0].seq, 8, "oldest retained");
        assert_eq!(
            dump[2],
            Event {
                seq: 10,
                kind: EventKind::BatchFlushed,
                a: 9,
                b: 18
            }
        );
        assert_eq!(r.recorded(), 10);
    }

    #[test]
    fn evictions_count_on_the_dropped_counter() {
        let counter = crate::registry::Registry::new().counter("dpack_recorder_dropped_total", "");
        let r = FlightRecorder::new(3).with_dropped_counter(counter.clone());
        for i in 0..10u64 {
            r.record(EventKind::BatchFlushed, i, 0);
        }
        assert_eq!(r.dropped(), 7, "10 recorded, 3 retained");
        assert_eq!(counter.get(), 7, "the registry sees the truncation");
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let r = FlightRecorder::disabled();
        r.record(EventKind::ProtocolViolation, 1, 2);
        assert!(r.dump().is_empty());
        assert_eq!(r.recorded(), 0);
    }

    #[test]
    fn concurrent_writers_never_lose_or_duplicate_sequences() {
        let r = FlightRecorder::new(64);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let r = r.clone();
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        r.record(EventKind::TaskGranted, t, i);
                    }
                });
            }
        });
        assert_eq!(r.recorded(), 4_000, "every claim counted exactly once");
        let dump = r.dump();
        assert_eq!(dump.len(), 64, "every slot holds a published event");
        // Each seq maps to one slot, so a dump can never repeat one;
        // racing writers may leave an older survivor in a wrapped
        // slot, so density is not guaranteed — order and bounds are.
        for pair in dump.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "strictly ordered dump");
        }
        assert!(dump.iter().all(|e| e.seq >= 1 && e.seq <= 4_000));
    }

    #[test]
    fn kind_bytes_roundtrip() {
        for k in 1..=15u8 {
            let kind = EventKind::from_u8(k).expect("dense kinds");
            assert_eq!(kind as u8, k);
        }
        assert_eq!(EventKind::from_u8(0), None);
        assert_eq!(EventKind::from_u8(16), None);
    }
}
