//! dpack-check property suite for the log-bucketed histogram.
//!
//! The invariants monitoring leans on: recording then merging in any
//! partition equals recording everything into one histogram; quantiles
//! are monotone in `q` and bounded by the observed max; the sparse
//! wire form roundtrips losslessly; and no input — including NaN,
//! infinities, and `f64::MAX` — panics a record or a query.

use dpack_check::{check_cases, floats, ints, prop_assert, prop_assert_eq, vecs, PropResult};
use dpack_obs::{Histogram, HistogramSnapshot};

const CASES: u32 = 96;

/// Draws mixed-magnitude `u64`s: small counts, mid-range latencies,
/// and full-range extremes all in one stream.
fn values_strategy() -> impl dpack_check::Strategy<Value = Vec<(u64, u8)>> {
    vecs((ints(0u64..u64::MAX), ints(0u8..4)), 0..64)
}

/// Skews a raw draw: most real recordings are small, so exercise the
/// low buckets too instead of living in bucket 60+.
fn shape(raw: u64, pick: u8) -> u64 {
    match pick {
        0 => raw % 16,
        1 => raw % 100_000,
        2 => raw % 10_000_000_000,
        _ => raw,
    }
}

fn record_all(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for v in values {
        h.record(*v);
    }
    h.snapshot()
}

#[test]
fn merge_distributes_over_recording() {
    check_cases(
        "merge_distributes_over_recording",
        CASES,
        (values_strategy(), ints(0usize..64)),
        |(draws, split)| -> PropResult {
            let values: Vec<u64> = draws.iter().map(|(v, p)| shape(*v, *p)).collect();
            let cut = *split % (values.len() + 1);
            let mut merged = record_all(&values[..cut]);
            merged.merge(&record_all(&values[cut..]));
            prop_assert_eq!(&merged, &record_all(&values));
            Ok(())
        },
    );
}

#[test]
fn quantiles_are_monotone_and_bounded() {
    check_cases(
        "quantiles_are_monotone_and_bounded",
        CASES,
        (values_strategy(), floats(0.0..1.0), floats(0.0..1.0)),
        |(draws, q1, q2)| -> PropResult {
            let values: Vec<u64> = draws.iter().map(|(v, p)| shape(*v, *p)).collect();
            let s = record_all(&values);
            let (lo, hi) = if q1 <= q2 { (*q1, *q2) } else { (*q2, *q1) };
            prop_assert!(
                s.quantile(lo) <= s.quantile(hi),
                "quantile not monotone: q({lo}) > q({hi})"
            );
            prop_assert!(s.p50() <= s.p95(), "p50 > p95");
            prop_assert!(s.p95() <= s.p99(), "p95 > p99");
            prop_assert!(s.p99() <= s.max, "p99 {} above max {}", s.p99(), s.max);
            prop_assert_eq!(s.count, values.len() as u64);
            if let Some(observed_max) = values.iter().max() {
                prop_assert_eq!(s.max, *observed_max);
            }
            // Out-of-range and non-finite quantiles clamp, never panic.
            for junk in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -3.0, 7.5] {
                let q = s.quantile(junk);
                prop_assert!(q <= s.max.max(1), "junk quantile escaped bounds: {q}");
            }
            Ok(())
        },
    );
}

#[test]
fn sparse_wire_form_roundtrips() {
    check_cases(
        "sparse_wire_form_roundtrips",
        CASES,
        values_strategy(),
        |draws| -> PropResult {
            let values: Vec<u64> = draws.iter().map(|(v, p)| shape(*v, *p)).collect();
            let s = record_all(&values);
            let back = HistogramSnapshot::from_parts(s.count, s.sum, s.max, &s.nonzero_buckets());
            prop_assert_eq!(&back, &s);
            Ok(())
        },
    );
}

#[test]
fn extreme_f64_recordings_never_panic() {
    check_cases(
        "extreme_f64_recordings_never_panic",
        CASES,
        vecs((floats(-1e300..1e300), ints(0u8..8)), 1..48),
        |draws| -> PropResult {
            let h = Histogram::new();
            for (raw, pick) in draws {
                // Mix drawn floats with the adversarial fixed points.
                let v = match pick {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    2 => f64::NEG_INFINITY,
                    3 => f64::MAX,
                    4 => f64::MIN,
                    5 => f64::MIN_POSITIVE,
                    _ => *raw,
                };
                h.record_f64(v);
            }
            let s = h.snapshot();
            prop_assert_eq!(s.count, draws.len() as u64);
            prop_assert!(s.quantile(0.99) <= s.max.max(1), "quantile above max");
            // Bucket totals always account for every recording.
            prop_assert_eq!(s.buckets.iter().copied().sum::<u64>(), s.count);
            Ok(())
        },
    );
}
