//! The golden-file pin of the Prometheus text exposition: a registry
//! covering every sample shape — counters and gauges with and without
//! labels, multi-label-set families, histogram quantile summaries,
//! and escaped label values — rendered and compared byte for byte
//! against `tests/golden/expo_render.txt`.
//!
//! The golden file is the compatibility contract scrapers parse; any
//! format drift (type lines, label separators, quantile set, escaping)
//! fails here first. After an *intentional* change, regenerate with
//! `DPACK_GOLDEN=write cargo test -p dpack-obs --test expo_golden`
//! and review the diff.

use dpack_obs::expo::escape_label_value;
use dpack_obs::Registry;

fn golden_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/expo_render.txt")
}

#[test]
fn render_matches_the_golden_exposition() {
    let r = Registry::new();
    // Counters: bare, and one family across two label sets (one
    // `# TYPE` line, adjacent samples).
    r.counter("dpack_granted_total", "").add(42);
    r.counter("dpack_repl_acked_batches_total", "stream=\"shard-0\"")
        .add(9);
    r.counter("dpack_repl_acked_batches_total", "stream=\"coord\"")
        .inc();
    // Gauges: integer-valued and fractional (rendered in f64's
    // shortest-roundtrip form).
    r.gauge("dpack_queue_depth", "").set_u64(7);
    r.gauge("dpack_repl_lag", "stream=\"shard-0\"").set_u64(3);
    r.gauge("dpack_fill_fraction", "").set(0.25);
    // A histogram renders as a quantile summary + _sum/_count; the
    // quantiles are bucket upper bounds, so they are exact pins.
    let h = r.histogram("dpack_cycle_nanos", "");
    for v in [100u64, 200, 300, 400, 1_000] {
        h.record(v);
    }
    // Label escaping: a tenant name carrying a quote, a backslash,
    // and a newline lands in the exposition as \" \\ \n.
    let tenant = escape_label_value("acme\"corp\\west\n");
    r.counter("dpack_rejected_total", &format!("tenant=\"{tenant}\""))
        .add(2);

    let text = r.snapshot().render();
    if std::env::var_os("DPACK_GOLDEN").is_some_and(|v| v == "write") {
        std::fs::write(golden_path(), &text).expect("write golden");
    }
    let golden = std::fs::read_to_string(golden_path()).expect("golden file committed");
    assert_eq!(
        text, golden,
        "exposition drifted from the golden file; if intentional, \
         regenerate with DPACK_GOLDEN=write and review the diff"
    );
}

#[test]
fn escape_label_value_handles_every_special() {
    assert_eq!(escape_label_value("plain"), "plain");
    assert_eq!(escape_label_value("a\"b"), "a\\\"b");
    assert_eq!(escape_label_value("a\\b"), "a\\\\b");
    assert_eq!(escape_label_value("a\nb"), "a\\nb");
    assert_eq!(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
}
