//! The efficiency–fairness trade-off, interactively.
//!
//! Two task populations compete for six blocks:
//!
//! * **company-wide reports** — tasks spanning *all six* blocks with a
//!   small per-block demand. Their dominant share (max per-block ratio)
//!   is small, so they qualify as "fair-share" demanders, and DPF
//!   schedules them first.
//! * **single-block jobs** — heavier per-block demand on one block
//!   each. Dominant share above the fair threshold, but their total
//!   budget *area* is a fraction of a report's.
//!
//! This is Fig. 1 of the paper as a fairness story: DPF's dominant
//! share ignores the area of multi-block demands, so it spends the
//! entire budget on reports; DPack's Eq. 6 metric charges reports for
//! all six blocks and packs far more jobs — at the cost of fair-share
//! representation (§6.3).
//!
//! Run with `cargo run --example fairness_tradeoff`.

use dpack::core::metrics::fairness_report;
use dpack::prelude::*;

/// Scales a curve so its dominant share (max ratio over usable orders)
/// equals `target`.
fn scale_to_dominant_share(curve: &RdpCurve, capacity: &RdpCurve, target: f64) -> RdpCurve {
    let mut max_ratio = 0.0f64;
    for (i, _) in capacity.grid().iter() {
        let c = capacity.epsilon(i);
        if c > 0.0 {
            max_ratio = max_ratio.max(curve.epsilon(i) / c);
        }
    }
    curve.scale(target / max_ratio)
}

fn main() {
    let grid = AlphaGrid::standard();
    let capacity = block_capacity(&grid, 10.0, 1e-7).expect("valid budget");
    let n_fair = 16u32; // Fair share: dominant share ≤ 1/16.

    let blocks: Vec<Block> = (0..6u64)
        .map(|j| Block::new(j, capacity.clone(), 0.0))
        .collect();

    // Reports: all 6 blocks at dominant share 0.05 (fair), area 0.30.
    let report = LaplaceMechanism::new(1.2).expect("valid").curve(&grid);
    let report = scale_to_dominant_share(&report, &capacity, 0.05);
    // Jobs: one block at dominant share 0.12 (not fair), area 0.12.
    let job = LaplaceMechanism::new(0.6).expect("valid").curve(&grid);
    let job = scale_to_dominant_share(&job, &capacity, 0.12);

    let mut tasks = Vec::new();
    let mut id = 0u64;
    for _ in 0..80 {
        tasks.push(Task::new(id, 1.0, (0..6).collect(), report.clone(), 0.0));
        id += 1;
    }
    for _ in 0..300 {
        tasks.push(Task::new(id, 1.0, vec![id % 6], job.clone(), 0.0));
        id += 1;
    }

    let state = ProblemState::new(grid, blocks, tasks.clone()).expect("well-formed");
    println!("workload: 80 six-block fair-share reports + 300 single-block jobs\n");

    println!(
        "{:<8} {:>9} {:>16} {:>18}",
        "policy", "allocated", "fair allocated", "% of grants fair"
    );
    for scheduler in [&Dpf as &dyn Scheduler, &DPack::default()] {
        let allocation = scheduler.schedule(&state);
        let ids = allocation.scheduled.iter().copied().collect();
        let report = fairness_report(&tasks, &ids, state.blocks(), n_fair);
        println!(
            "{:<8} {:>9} {:>16} {:>17.0}%",
            scheduler.name(),
            report.allocated_total,
            report.qualifying_allocated,
            100.0 * report.allocated_fair_fraction()
        );
    }

    println!(
        "\nDPF protects the fair-share reports, but only until the budget runs out —\n\
         later fair-share arrivals get nothing either (the paper calls this fairness\n\
         notion 'somewhat arbitrary', §6.3). DPack converts the same budget into far\n\
         more completed work."
    );
}
