//! A remote tenant talking to the budget service over a real socket.
//!
//! Starts a [`BudgetService`] with a background cycle loop, exposes it
//! through `dpack-net` on `127.0.0.1`, and drives it exactly as a
//! remote tenant would: handshake for the alpha grid, register blocks,
//! submit tasks (pipelined), read stats and a budget snapshot — all
//! answered with **final decisions**, not enqueue acks. CI runs this
//! as the client↔server smoke test.
//!
//! ```sh
//! cargo run --release --example remote_tenant
//! ```

use std::sync::Arc;
use std::time::Duration;

use dpack::accounting::{AlphaGrid, RdpCurve};
use dpack::core::problem::{Block, Task};
use dpack_net::{ErrorCode, NetClient, NetServer, Outcome};
use dpack_service::{BudgetService, ServiceConfig, ServiceHandle};

fn main() {
    // The operator's side: an always-on service behind a socket.
    let grid = AlphaGrid::new(vec![2.0, 4.0, 16.0]).expect("valid grid");
    let service = Arc::new(BudgetService::new(
        grid,
        ServiceConfig {
            shards: 4,
            workers: 2,
            unlock_steps: 1,
            ..ServiceConfig::default()
        },
    ));
    let server = NetServer::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind loopback");
    let cycles = ServiceHandle::spawn(Arc::clone(&service), Duration::from_millis(1));
    println!("service listening on {}", server.local_addr());

    // The tenant's side: everything below travels over the socket.
    let mut client = NetClient::connect(server.local_addr()).expect("connect");
    let grid = client.grid().expect("handshake");
    println!("server grid: {:?}", grid.orders());

    for j in 0..8u64 {
        client
            .register_block(&Block::new(j, RdpCurve::constant(&grid, 1.0), 0.0))
            .expect("register");
    }
    println!("registered 8 blocks of capacity 1.0");

    // Pipeline a burst of submissions, then collect final decisions.
    let mut handles = Vec::new();
    for i in 0..16u64 {
        let task = Task::new(i, 1.0, vec![i % 8], RdpCurve::constant(&grid, 0.4), 0.0);
        handles.push(client.submit_nowait(7, &task).expect("send"));
    }
    let mut granted = 0;
    for h in handles {
        if client.wait_decision(h).expect("decision").is_granted() {
            granted += 1;
        }
    }
    println!("burst of 16: {granted} granted (2 x 0.4 fits per block)");
    assert_eq!(granted, 16);

    // A third 0.4 on block 0 cannot fit: it waits in the pending set
    // until its timeout evicts it, and the parked decision resolves to
    // `evicted` — while a malformed submission is rejected immediately
    // with its stable error code.
    let over = Task::new(100, 1.0, vec![0], RdpCurve::constant(&grid, 0.4), 0.0).with_timeout(1.0);
    let bad = Task::new(100, 1.0, vec![99], RdpCurve::constant(&grid, 0.1), 0.0);
    let decisions = client.submit_batch(7, &[over, bad]).expect("batch");
    for (task, outcome) in &decisions {
        println!("task {task}: {outcome}");
    }
    assert!(matches!(
        decisions[1].1,
        Outcome::Rejected {
            code: ErrorCode::UnknownBlock,
            ..
        }
    ));

    let stats = client.stats().expect("stats");
    println!(
        "server stats: submitted={} granted={} rejected={}",
        stats.submitted, stats.granted, stats.rejected
    );
    assert_eq!(stats.granted, 16);
    assert_eq!(stats.rejected, 1);

    // Observability over the same socket: a Prometheus-style metrics
    // scrape and a flight-recorder dump, exactly as an operator's
    // monitor would read them.
    let metrics = client.metrics().expect("metrics");
    assert_eq!(metrics.counter_total("dpack_granted_total"), 16);
    print!("\n--- metrics scrape ---\n{}", metrics.render());
    let trace = client.trace(0).expect("trace");
    assert!(!trace.is_empty());
    println!(
        "--- flight recorder: {} events retained, last seq {} ---",
        trace.len(),
        trace.last().map_or(0, |e| e.seq)
    );

    let snapshot = client.snapshot(10.0).expect("snapshot");
    let spent = snapshot
        .values()
        .filter(|curve| curve.iter().all(|eps| *eps < 0.3))
        .count();
    println!("snapshot: {spent}/8 blocks nearly spent");

    cycles.stop();
    server.stop();
    println!("remote tenant smoke: OK");
}
