//! Quickstart: schedule a handful of DP tasks over two data blocks.
//!
//! Builds two privacy blocks from a global `(ε_G, δ_G)` guarantee, a
//! mixed batch of statistics and training tasks, and compares what
//! DPack, DPF and the exact Optimal solver allocate.
//!
//! Run with `cargo run --example quickstart`.

use dpack::prelude::*;

fn main() {
    // The Rényi-order grid shared by every curve in the system.
    let grid = AlphaGrid::standard();

    // Two data blocks, each guaranteeing (ε, δ) = (10, 1e-7) globally.
    let capacity = block_capacity(&grid, 10.0, 1e-7).expect("valid budget");
    let blocks = vec![
        Block::new(0, capacity.clone(), 0.0),
        Block::new(1, capacity.clone(), 0.0),
    ];

    // A mixed workload:
    //  - three Laplace statistics on the latest block,
    //  - a histogram (Gaussian) on both blocks,
    //  - two DP-SGD-style training runs (subsampled Gaussian × steps).
    let laplace = LaplaceMechanism::new(0.35).expect("valid").curve(&grid);
    let gaussian = GaussianMechanism::new(1.8).expect("valid").curve(&grid);
    let sgd_step = SubsampledGaussian::new(1.0, 0.02)
        .expect("valid")
        .curve(&grid);
    let training = sgd_step.compose_k(1200);

    let tasks = vec![
        Task::new(1, 1.0, vec![1], laplace.clone(), 0.0),
        Task::new(2, 1.0, vec![1], laplace.clone(), 0.0),
        Task::new(3, 1.0, vec![1], laplace, 0.0),
        Task::new(4, 1.0, vec![0, 1], gaussian, 0.0),
        Task::new(5, 1.0, vec![0, 1], training.clone(), 0.0),
        Task::new(6, 1.0, vec![0, 1], training, 0.0),
    ];

    // Inspect each task's privacy translation.
    println!("task demands as (ε_DP, δ = 1e-6) guarantees:");
    for t in &tasks {
        let g = rdp_to_dp(&t.demand, 1e-6).expect("valid delta");
        println!(
            "  task {}: ε_DP = {:.2} at best α = {} over blocks {:?}",
            t.id, g.epsilon, g.best_alpha, t.blocks
        );
    }

    let state = ProblemState::new(grid, blocks, tasks).expect("well-formed problem");
    println!("\nallocations:");
    for scheduler in [
        &Dpf as &dyn Scheduler,
        &DPack::default(),
        &Optimal::unbounded(),
    ] {
        let allocation = scheduler.schedule(&state);
        println!(
            "  {:<8} -> {} tasks {:?}",
            scheduler.name(),
            allocation.scheduled.len(),
            allocation.scheduled
        );
    }
}
