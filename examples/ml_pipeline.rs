//! A continuous-training pipeline over a user-data stream.
//!
//! The §2.1 scenario end-to-end: data arrives as daily blocks; a company
//! schedules recurring DP workloads — a daily noisy usage count, a daily
//! histogram, and periodic DP-SGD model retrains — under a global
//! `(ε_G, δ_G)` guarantee per block. When the online engine grants a
//! task, the example *actually executes* the DP computation on synthetic
//! data (real noise, real training), demonstrating that granted budget
//! corresponds to runnable mechanisms.
//!
//! Run with `cargo run --example ml_pipeline`.

use dpack::accounting::dpsgd::{self, DpSgdConfig};
use dpack::accounting::noise::{noisy_count, noisy_histogram, sample_gaussian};
use dpack::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One day's worth of synthetic user records.
struct DayData {
    /// Two features per user for the churn model.
    features: Vec<Vec<f64>>,
    /// Churn labels.
    labels: Vec<bool>,
    /// Country bucket per user, for the histogram.
    country: Vec<usize>,
}

fn synthesize_day(rng: &mut StdRng, day: u64) -> DayData {
    let n = 400 + (day as usize % 3) * 100;
    let mut features = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    let mut country = Vec::with_capacity(n);
    for i in 0..n {
        let churned = i % 3 == 0;
        let center = if churned { 1.0 } else { -1.0 };
        features.push(vec![
            center + sample_gaussian(rng, 0.6),
            center + sample_gaussian(rng, 0.6),
        ]);
        labels.push(churned);
        country.push(i % 5);
    }
    DayData {
        features,
        labels,
        country,
    }
}

fn main() {
    let grid = AlphaGrid::standard();
    let mut rng = StdRng::seed_from_u64(7);

    // The engine enforces (10, 1e-7)-DP per daily block, unlocking
    // budget over 10 scheduling steps.
    let capacity = block_capacity(&grid, 10.0, 1e-7).expect("valid budget");
    let mut engine = OnlineEngine::new(
        DPack::default(),
        grid.clone(),
        OnlineConfig {
            scheduling_period: 1.0,
            unlock_period: 1.0,
            unlock_steps: 10,
            default_timeout: Some(7.0),
        },
    );

    // Task templates.
    let count_demand = LaplaceMechanism::new(2.0).expect("valid").curve(&grid);
    let hist_demand = GaussianMechanism::new(4.0).expect("valid").curve(&grid);
    let sgd = DpSgdConfig {
        noise_multiplier: 1.1,
        clip_norm: 1.0,
        sampling_rate: 0.05,
        steps: 400,
        learning_rate: 0.4,
    };
    let sgd_demand = sgd.privacy_cost(&grid).expect("valid config");

    let days = 14u64;
    let mut data: Vec<DayData> = Vec::new();
    let mut next_task = 0u64;
    let mut executed = Vec::new();

    for day in 0..days {
        // A new block of data arrives.
        data.push(synthesize_day(&mut rng, day));
        engine
            .add_block(Block::new(day, capacity.clone(), day as f64))
            .expect("unique block");

        // Daily statistics on the fresh block.
        for demand in [&count_demand, &hist_demand] {
            engine
                .submit_task(Task::new(
                    next_task,
                    1.0,
                    vec![day],
                    demand.clone(),
                    day as f64,
                ))
                .expect("valid task");
            next_task += 1;
        }
        // Every third day, retrain the churn model on the last 3 blocks.
        if day % 3 == 2 {
            let window: Vec<u64> = (day - 2..=day).collect();
            engine
                .submit_task(Task::new(
                    next_task,
                    1.0,
                    window,
                    sgd_demand.clone(),
                    day as f64,
                ))
                .expect("valid task");
            next_task += 1;
        }

        // One scheduling step at the end of the day.
        let granted = engine.run_step(day as f64 + 1.0).expect("budget sound");
        for id in &granted.scheduled {
            // Execute the granted task on its data.
            let is_training = *id >= 2 && (*id + 1) % 3 == 0 && *id % 2 == 0;
            executed.push((*id, is_training));
        }
        // Run the mechanisms for real on the newest block.
        if granted.scheduled.contains(&(next_task - 2)) {
            let est =
                noisy_count(&mut rng, &data[day as usize].features, 0.5).expect("valid epsilon");
            println!(
                "day {day:>2}: noisy user count = {est:.0} (true {})",
                data[day as usize].features.len()
            );
        }
        if granted.scheduled.contains(&(next_task - 1)) && day % 3 != 2 {
            let hist = noisy_histogram(&mut rng, &data[day as usize].country, 5, 4.0)
                .expect("valid params");
            println!(
                "day {day:>2}: noisy country histogram = {:?}",
                hist.iter().map(|h| h.round()).collect::<Vec<_>>()
            );
        }
        if day % 3 == 2 && granted.scheduled.contains(&(next_task - 1)) {
            // Train on the 3-day window.
            let (mut xs, mut ys) = (Vec::new(), Vec::new());
            for d in (day - 2)..=day {
                xs.extend(data[d as usize].features.iter().cloned());
                ys.extend(data[d as usize].labels.iter().copied());
            }
            let model = dpsgd::train(&mut rng, &xs, &ys, &sgd).expect("training runs");
            println!(
                "day {day:>2}: retrained churn model, accuracy = {:.2}",
                model.accuracy(&xs, &ys)
            );
        }
    }

    // Drain remaining steps so queued tasks get their chance.
    for step in 0..12 {
        engine
            .run_step(days as f64 + 1.0 + step as f64)
            .expect("budget sound");
    }

    let stats = engine.stats();
    println!(
        "\npipeline summary: {} tasks granted, {} evicted, mean delay {:.1} days",
        stats.allocated.len(),
        stats.evicted.len(),
        stats.delays().iter().sum::<f64>() / stats.allocated.len().max(1) as f64
    );
    // The global guarantee held throughout: every block's filter kept at
    // least one Rényi order within capacity (enforced by the engine).
    println!("every block kept its (10, 1e-7)-DP guarantee (filters enforced per grant)");
}
