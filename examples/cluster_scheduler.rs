//! Cluster-scale scheduling on the Alibaba-DP workload.
//!
//! Generates a month-long DP-ML cluster workload (the §6.3
//! macrobenchmark), runs it through the discrete-event simulator under
//! DPack, DPF and FCFS, and prints efficiency, delay and eviction
//! statistics — a compressed version of the Fig. 6 experiment.
//!
//! Run with `cargo run --release --example cluster_scheduler`.

use dpack::gen::alibaba::{generate, AlibabaDpConfig};
use dpack::prelude::*;

fn main() {
    let config = AlibabaDpConfig {
        n_blocks: 30,
        n_tasks: 4000,
        ..Default::default()
    };
    let workload = generate(&config, 42);
    println!(
        "Alibaba-DP workload: {} tasks over {} daily blocks",
        workload.tasks.len(),
        workload.blocks.len()
    );
    let multi = workload.tasks.iter().filter(|t| t.blocks.len() > 1).count();
    println!(
        "  {}% of tasks span multiple blocks; largest request: {} blocks\n",
        100 * multi / workload.tasks.len(),
        workload
            .tasks
            .iter()
            .map(|t| t.blocks.len())
            .max()
            .unwrap_or(0)
    );

    let sim_config = SimulationConfig {
        scheduling_period: 1.0,
        unlock_steps: 20,
        task_timeout: Some(5.0),
        drain_steps: 25,
    };

    println!(
        "{:<8} {:>10} {:>12} {:>10} {:>12}",
        "policy", "allocated", "mean delay", "evicted", "sched time"
    );
    let dpack = simulate(&workload, DPack::default(), &sim_config);
    let dpf = simulate(&workload, DpfStrict, &sim_config);
    let fcfs = simulate(&workload, Fcfs, &sim_config);
    for (name, r) in [("DPack", &dpack), ("DPF", &dpf), ("FCFS", &fcfs)] {
        println!(
            "{:<8} {:>10} {:>12.2} {:>10} {:>10.1}ms",
            name,
            r.allocated(),
            r.mean_delay().unwrap_or(f64::NAN),
            r.stats.evicted.len(),
            r.stats.scheduler_runtime.as_secs_f64() * 1e3,
        );
    }

    println!(
        "\nDPack allocated {:.2}x the tasks DPF did on the same budget — budget that is\n\
         consumed forever: the extra tasks are ones DPF could never run.",
        dpack.allocated() as f64 / dpf.allocated().max(1) as f64
    );

    // Fairness lens (§6.3): what fraction of each policy's grants went
    // to "fair-share" tasks (dominant share ≤ 1/20 here)?
    for (name, r) in [("DPack", &dpack), ("DPF", &dpf)] {
        let fair = r.fairness(&workload.tasks, 20);
        println!(
            "{name}: {:.0}% of allocations were fair-share tasks",
            100.0 * fair.allocated_fair_fraction()
        );
    }
}
