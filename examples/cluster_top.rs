//! `cluster_top`: live introspection of a three-node deployment.
//!
//! Boots three [`dpack_net::ClusterNode`]s behind real sockets, lets
//! them elect a leader on their own, pushes a burst of **traced**
//! submissions through the primary, and then plays the operator:
//!
//! * scrapes every node's `ClusterStatus` and renders a `top`-style
//!   table — role, term, seq vector, per-peer Up/Suspect/Down state,
//!   per-stream replication lag, resync count;
//! * merges the three Prometheus-style registry snapshots into one
//!   cluster-wide view ([`MetricsSnapshot::merged`]) and prints it;
//! * merges the three span dumps into causal trees, prints the
//!   slowest grant's cross-node breakdown, and exports the slowest
//!   complete trees as chrome://tracing JSON
//!   (`target/cluster_top.trace.json` — load it in `chrome://tracing`
//!   or Perfetto), validating the JSON's nesting before writing.
//!
//! CI runs this as the introspection-plane smoke test.
//!
//! ```sh
//! cargo run --release --example cluster_top
//! ```

use std::time::{Duration, Instant};

use dpack::accounting::{AlphaGrid, RdpCurve};
use dpack::core::problem::{Block, Task};
use dpack_net::obs::trace::{assemble_trees, SlowTraceSampler, SpanTree};
use dpack_net::obs::{MetricsSnapshot, Obs, Tracer, Value};
use dpack_net::{
    ClusterConfig, ClusterNode, ClusterPeer, ClusterRunner, NetClient, NetServer, WireClusterStatus,
};
use dpack_service::wal::SimStorage;
use dpack_service::{DurabilityOptions, ServiceConfig, StatsRetention};

const NODES: usize = 3;
const BLOCKS: u64 = 8;
const TRACED: u64 = 24;
const UNTRACED: u64 = 8;

fn state_name(state: u8) -> &'static str {
    match state {
        0 => "up",
        1 => "suspect",
        2 => "down",
        _ => "?",
    }
}

/// One `top` row per scraped node.
fn render_status(rows: &[WireClusterStatus]) {
    println!(
        "{:<6} {:<8} {:>5} {:>7}  {:<16} peers",
        "node", "role", "term", "leader", "vector"
    );
    for s in rows {
        let role = if s.is_primary { "primary" } else { "replica" };
        let peers = s
            .peers
            .iter()
            .map(|p| {
                let mut cell = format!("{}:{}", p.id, state_name(p.state));
                if s.is_primary {
                    cell.push_str(&format!(" lag={:?} resyncs={}", p.lag, p.resyncs));
                    if p.backoff_nanos > 0 {
                        cell.push_str(&format!(" backoff={}ms", p.backoff_nanos / 1_000_000));
                    }
                }
                cell
            })
            .collect::<Vec<_>>()
            .join(" | ");
        println!(
            "{:<6} {:<8} {:>5} {:>7}  {:<16} {}",
            s.node_id,
            role,
            s.term,
            s.leader,
            format!("{:?}", s.vector),
            peers
        );
    }
}

/// Prints one tree as an indented span breakdown, children under
/// their parents in the assembler's deterministic order.
fn render_tree(tree: &SpanTree) {
    fn walk(tree: &SpanTree, parent: u64, depth: usize) {
        for span in tree.children(parent) {
            println!(
                "  {:indent$}{:<14} node={} {:>9.3}ms a={}",
                "",
                span.kind.name(),
                span.node,
                span.duration_nanos() as f64 / 1e6,
                span.a,
                indent = depth * 2
            );
            walk(tree, span.span, depth + 1);
        }
    }
    let Some(root) = tree.root() else { return };
    println!(
        "trace {:016x}: {:.3}ms end to end, {} spans",
        tree.trace,
        tree.duration_nanos() as f64 / 1e6,
        tree.spans.len()
    );
    println!(
        "  {:<14} node={} {:>9.3}ms",
        root.kind.name(),
        root.node,
        root.duration_nanos() as f64 / 1e6
    );
    walk(tree, root.span, 1);
}

/// A serde-free chrome-trace well-formedness scan: strings (with
/// escapes) are skipped, every `{`/`[` must close in order, and the
/// document must be exactly one object. Returns the event count.
fn scan_chrome_json(json: &str) -> Result<usize, String> {
    let mut stack = Vec::new();
    let mut events = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in json.char_indices() {
        if in_string {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_string = false,
                _ => {}
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => {
                // Each complete event is an object at depth 2:
                // root object → traceEvents array → event.
                if c == '{' && stack.len() == 2 {
                    events += 1;
                }
                stack.push(c);
            }
            '}' | ']' => {
                let want = if c == '}' { '{' } else { '[' };
                if stack.pop() != Some(want) {
                    return Err(format!("unbalanced '{c}' at byte {i}"));
                }
            }
            _ => {}
        }
    }
    if in_string || !stack.is_empty() {
        return Err("unterminated string or open bracket at end".to_string());
    }
    if !json.starts_with("{\"traceEvents\":[") {
        return Err("missing traceEvents envelope".to_string());
    }
    Ok(events)
}

fn main() {
    let grid = AlphaGrid::new(vec![2.0, 4.0, 16.0]).expect("valid grid");

    // ---- boot: three nodes, no external nudge -------------------------
    let addrs: Vec<std::net::SocketAddr> = (0..NODES)
        .map(|_| {
            std::net::TcpListener::bind("127.0.0.1:0")
                .expect("reserve port")
                .local_addr()
                .expect("addr")
        })
        .collect();
    let mut servers = Vec::with_capacity(NODES);
    let mut runners = Vec::with_capacity(NODES);
    for i in 0..NODES {
        let peers = (0..NODES)
            .filter(|j| *j != i)
            .map(|j| {
                let addr = addrs[j];
                ClusterPeer {
                    id: j as u64,
                    addr,
                    connector: std::sync::Arc::new(move || NetClient::connect(addr)),
                }
            })
            .collect();
        let node = ClusterNode::new(
            ClusterConfig {
                node_id: i as u64,
                grid: grid.clone(),
                service: ServiceConfig {
                    shards: 2,
                    workers: 1,
                    unlock_steps: 1,
                    retention: StatsRetention::Unbounded,
                    ..ServiceConfig::default()
                },
                durability: DurabilityOptions::default(),
                quorum: 1,
                majority: 2,
                heartbeat_nanos: 20_000_000,
                miss_threshold: 3,
                election_base_nanos: 100_000_000,
                election_stagger_nanos: 50_000_000,
                ship_timeout: Some(Duration::from_millis(500)),
            },
            peers,
            Box::new(SimStorage::new()),
            Obs::wall(),
        )
        .expect("fresh cluster node");
        servers.push(NetServer::bind_core(node.core().clone(), addrs[i]).expect("bind node"));
        runners.push(ClusterRunner::spawn(node, Duration::from_millis(2)));
    }

    // Wait for a leader whose replicator sees both replicas, asking
    // over the wire like any monitor would.
    let deadline = Instant::now() + Duration::from_secs(10);
    let leader = loop {
        let ready = (0..NODES).find(|&i| {
            NetClient::connect(addrs[i])
                .and_then(|mut c| c.metrics())
                .ok()
                .is_some_and(|snap| {
                    matches!(
                        snap.get("dpack_repl_live_replicas", ""),
                        Some(Value::Gauge(v)) if *v as usize >= NODES - 1
                    )
                })
        });
        if let Some(i) = ready {
            break i;
        }
        assert!(
            Instant::now() < deadline,
            "no leader with two live replicas within 10s"
        );
        std::thread::sleep(Duration::from_millis(5));
    };
    println!("leader: node {leader} on {}\n", addrs[leader]);

    // ---- traced traffic through the primary ---------------------------
    let mut client = NetClient::connect(addrs[leader]).expect("dial leader");
    for b in 0..BLOCKS {
        client
            .register_block(&Block::new(b, RdpCurve::constant(&grid, 1.0), 0.0))
            .expect("register block");
    }
    let tracer = Tracer::seeded(0xD1A6);
    let mut traces = Vec::new();
    let mut handles = Vec::new();
    for id in 0..TRACED {
        let task = Task::new(
            id,
            1.0,
            vec![id % BLOCKS],
            RdpCurve::constant(&grid, 0.02),
            0.0,
        );
        let ctx = tracer.start();
        traces.push(ctx);
        handles.push(
            client
                .submit_traced_nowait(7, &task, ctx)
                .expect("submit traced"),
        );
    }
    for id in TRACED..TRACED + UNTRACED {
        let task = Task::new(
            id,
            1.0,
            vec![id % BLOCKS],
            RdpCurve::constant(&grid, 0.02),
            0.0,
        );
        handles.push(client.submit_nowait(7, &task).expect("submit untraced"));
    }
    let granted = handles
        .into_iter()
        .filter(|h| {
            client
                .wait_decision(*h)
                .map(|o| o.is_granted())
                .unwrap_or(false)
        })
        .count() as u64;
    println!(
        "{granted}/{} granted ({TRACED} traced, {UNTRACED} untraced)\n",
        TRACED + UNTRACED
    );
    assert_eq!(granted, TRACED + UNTRACED, "every submission fits");

    // ---- the introspection plane --------------------------------------
    // One scrape per node: status, metrics, spans — all over the wire.
    let mut statuses = Vec::new();
    let mut snapshots = Vec::new();
    let mut dumps = Vec::new();
    for addr in &addrs {
        let mut c = NetClient::connect(*addr).expect("dial for scrape");
        statuses.push(c.cluster_status().expect("ClusterStatus"));
        snapshots.push(c.metrics().expect("metrics"));
        dumps.push(c.span_dump_all().expect("span dump"));
    }

    println!("== ClusterStatus ({NODES}-node scrape) ==");
    render_status(&statuses);
    let primary = statuses.iter().find(|s| s.is_primary).expect("a primary");
    assert_eq!(primary.node_id, leader as u64);
    for s in &statuses {
        assert_eq!(s.leader, leader as u64, "everyone agrees on the leader");
    }
    assert!(
        primary
            .peers
            .iter()
            .all(|p| p.state == 0 && p.lag.iter().all(|&l| l == 0)),
        "settled cluster: every peer up, no lag"
    );

    println!("\n== cluster-wide metrics (3 registries merged) ==");
    let merged = MetricsSnapshot::merged(&snapshots);
    print!("{}", merged.render());
    assert_eq!(
        merged.counter_total("dpack_granted_total"),
        TRACED + UNTRACED,
        "the merged counter carries the whole deployment's grants"
    );

    // ---- span trees ----------------------------------------------------
    let trees = assemble_trees(dumps);
    assert_eq!(trees.len(), TRACED as usize, "one tree per traced grant");
    for ctx in &traces {
        let tree = trees
            .iter()
            .find(|t| t.trace == ctx.trace)
            .expect("traced grant left a tree");
        assert!(
            tree.is_complete(2),
            "trace {:016x} is incomplete: {tree:?}",
            ctx.trace
        );
    }
    let mut sampler = SlowTraceSampler::new(4, 2);
    for tree in &trees {
        sampler.offer(tree.clone());
    }
    println!("\n== slowest grant, across the deployment ==");
    render_tree(&sampler.trees()[0]);

    let json = sampler.export_chrome();
    let events = scan_chrome_json(&json).expect("well-formed chrome trace");
    assert_eq!(
        events,
        sampler.trees().iter().map(|t| t.spans.len()).sum::<usize>(),
        "one chrome event per sampled span"
    );
    let path = "target/cluster_top.trace.json";
    std::fs::write(path, &json).expect("write chrome trace");
    println!(
        "\nexported {} slowest traces ({events} spans) to {path} — load in chrome://tracing",
        sampler.trees().len()
    );

    for server in servers {
        server.stop();
    }
    for runner in runners {
        let _node = runner.stop();
    }
    println!("cluster top smoke: OK");
}
