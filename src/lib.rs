//! DPack: efficiency-oriented privacy budget scheduling, in Rust.
//!
//! This is the umbrella crate of the workspace — a from-scratch
//! reproduction of *DPack: Efficiency-Oriented Privacy Budget
//! Scheduling* (EuroSys '25). It re-exports the member crates and a
//! [`prelude`] for downstream users.
//!
//! * [`accounting`] — RDP curves, mechanisms, conversion, privacy
//!   filters, executable DP mechanisms and a miniature DP-SGD trainer.
//! * [`solvers`] — knapsack machinery, including the exact privacy
//!   knapsack (Eq. 5) replacing the paper's Gurobi baseline.
//! * [`core`] — the schedulers (DPack, DPF, FCFS, greedy-area, Optimal)
//!   and the §3.4 online engine.
//! * [`gen`] — the microbenchmark, Alibaba-DP and Amazon Reviews
//!   workload generators.
//! * [`sim`] — the discrete-event simulator.
//! * [`orchestration`] — the PrivateKube-like orchestrator substrate.
//! * [`service`] — the sharded, concurrent budget service: striped
//!   ledger, bounded multi-tenant admission queue, batched scheduling
//!   loop with two-phase cross-shard commits.
//!
//! # Examples
//!
//! ```
//! use dpack::prelude::*;
//!
//! let grid = AlphaGrid::standard();
//! let capacity = block_capacity(&grid, 10.0, 1e-7).unwrap();
//! let blocks = vec![Block::new(0, capacity, 0.0)];
//! let demand = GaussianMechanism::new(5.0).unwrap().curve(&grid);
//! let tasks = vec![Task::new(0, 1.0, vec![0], demand, 0.0)];
//! let state = ProblemState::new(grid, blocks, tasks).unwrap();
//! assert_eq!(DPack::default().schedule(&state).scheduled, vec![0]);
//! ```

pub use dp_accounting as accounting;
pub use dpack_core as core;
pub use dpack_net as net;
pub use dpack_service as service;
pub use knapsack as solvers;
pub use orchestrator as orchestration;
pub use simulator as sim;
pub use workloads as gen;

/// The most common imports, re-exported flat.
pub mod prelude {
    pub use dp_accounting::mechanisms::{
        GaussianMechanism, LaplaceGaussianComposition, LaplaceMechanism, Mechanism,
        SubsampledGaussian, SubsampledLaplace,
    };
    pub use dp_accounting::{
        block_capacity, rdp_to_dp, AlphaGrid, DpGuarantee, RdpCurve, RenyiFilter,
    };
    pub use dpack_core::online::{OnlineConfig, OnlineEngine, OnlineStats};
    pub use dpack_core::problem::{Allocation, Block, BlockId, ProblemState, Task, TaskId};
    pub use dpack_core::schedulers::{DPack, Dpf, DpfStrict, Fcfs, GreedyArea, Optimal, Scheduler};
    pub use dpack_service::{BudgetService, SchedulerChoice, ServiceConfig};
    pub use simulator::{simulate, simulate_service, SimulationConfig, SimulationResult};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_the_quickstart_path() {
        let grid = AlphaGrid::standard();
        let capacity = block_capacity(&grid, 10.0, 1e-7).unwrap();
        let blocks = vec![Block::new(0, capacity, 0.0)];
        let demand = GaussianMechanism::new(5.0).unwrap().curve(&grid);
        let tasks = vec![Task::new(0, 1.0, vec![0], demand, 0.0)];
        let state = ProblemState::new(grid, blocks, tasks).unwrap();
        assert_eq!(DPack::default().schedule(&state).scheduled, vec![0]);
    }
}
