#!/usr/bin/env bash
# Tier-1 gate: everything here runs offline (no crates.io access) and
# must stay green. Run from the repository root.
#
#   ./scripts/ci.sh
#
# The proptest suites and criterion benches are feature-gated off by
# default (they need crates that are unavailable offline); see
# README.md "Offline builds".
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "CI OK"
