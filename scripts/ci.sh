#!/usr/bin/env bash
# Tier-1 gate: everything here runs offline (no crates.io access) and
# must stay green. Run from the repository root.
#
#   ./scripts/ci.sh
#
# The property suites (dpack-check) run un-gated with a fixed default
# case budget; crank them nightly-style with e.g.
#
#   DPACK_CHECK_CASES=5000 ./scripts/ci.sh
#
# A failing property prints its reproducing seed; replay one case with
# DPACK_CHECK_SEED=<seed> (see README.md "Testing"). The criterion
# micro-benches remain feature-gated off (criterion is unavailable
# offline).
set -euo pipefail
cd "$(dirname "$0")/.."

# Fixed case budget by default, overridable for nightly-style runs.
export DPACK_CHECK_CASES="${DPACK_CHECK_CASES:-64}"

echo "==> checking that no proptest-tests feature gate remains"
if grep -rn "proptest-tests" --include="*.rs" --include="*.toml" \
    src crates tests Cargo.toml 2>/dev/null; then
  echo "ERROR: stale 'proptest-tests' gate found — the property suites run un-gated on dpack-check" >&2
  exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (DPACK_CHECK_CASES=${DPACK_CHECK_CASES})"
cargo test -q

echo "CI OK"
