#!/usr/bin/env bash
# Tier-1 gate: everything here runs offline (no crates.io access) and
# must stay green. Run from the repository root.
#
#   ./scripts/ci.sh
#
# The property suites (dpack-check) run un-gated with a fixed default
# case budget; crank them nightly-style with e.g.
#
#   DPACK_CHECK_CASES=5000 ./scripts/ci.sh
#
# A failing property prints its reproducing seed; replay one case with
# DPACK_CHECK_SEED=<seed> (see README.md "Testing"). The micro-benches
# run on the vendored std-only harness (crates/bench/src/micro.rs) and
# are smoke-run here (1 iteration) so they cannot rot.
set -euo pipefail
cd "$(dirname "$0")/.."

# Fixed case budget by default, overridable for nightly-style runs.
export DPACK_CHECK_CASES="${DPACK_CHECK_CASES:-64}"

echo "==> checking that no stale feature gate remains"
if grep -rn "proptest-tests" --include="*.rs" --include="*.toml" \
    src crates tests Cargo.toml 2>/dev/null; then
  echo "ERROR: stale 'proptest-tests' gate found — the property suites run un-gated on dpack-check" >&2
  exit 1
fi
if grep -rn "criterion-benches" --include="*.rs" --include="*.toml" \
    src crates tests Cargo.toml 2>/dev/null; then
  echo "ERROR: stale 'criterion-benches' gate found — the micro-benches run un-gated on the vendored harness" >&2
  exit 1
fi

echo "==> checking new counter structs go through dpack-obs"
# New metrics belong in the dpack-obs registry (named, labelled,
# scrapable), not in one-off counter structs. The legacy pre-obs
# structs below are frozen; anything new fails the gate.
adhoc_allow="$(cat <<'EOF'
crates/core/src/online.rs:OnlineStats
crates/net/src/wire.rs:WireStats
crates/service/src/stats.rs:CycleStats
crates/service/src/stats.rs:DurabilityStats
crates/service/src/stats.rs:ServiceStats
crates/service/src/stats.rs:TenantStats
crates/wal/src/log.rs:WalCounters
crates/wal/src/log.rs:WalTelemetry
EOF
)"
adhoc_found="$(grep -rn --include='*.rs' -E 'pub struct [A-Za-z]*(Counters|Stats|Telemetry)\b' \
    src crates 2>/dev/null \
  | grep -v '^crates/obs/' \
  | sed -E 's|^([^:]+):[0-9]+:.*pub struct ([A-Za-z]+).*|\1:\2|' \
  | sort -u || true)"
adhoc_new="$(comm -13 <(sort -u <<<"${adhoc_allow}") <(echo "${adhoc_found}") || true)"
if [ -n "${adhoc_new}" ]; then
  echo "ERROR: new ad-hoc counter/stats struct(s) outside dpack-obs:" >&2
  echo "${adhoc_new}" >&2
  echo "register counters/gauges/histograms on the dpack-obs registry instead" >&2
  exit 1
fi

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (DPACK_CHECK_CASES=${DPACK_CHECK_CASES})"
before_tests="$(git status --porcelain)"
cargo test -q

# Fs-backed WAL tests route through dpack-wal's TempDir (removed on
# drop, even on panic), so tests must not litter the workspace or
# mutate tracked files; fail loudly if the tree changed across the run.
echo "==> checking the tests left the workspace as they found it"
after_tests="$(git status --porcelain)"
if [ "${before_tests}" != "${after_tests}" ]; then
  echo "ERROR: tests changed the workspace:" >&2
  diff <(echo "${before_tests}") <(echo "${after_tests}") >&2 || true
  exit 1
fi

# The vendored micro-benches must keep compiling *and running*; smoke
# mode runs each benchmark for exactly one iteration.
echo "==> vendored micro-benches (smoke mode)"
for b in ablation filters knapsack_solvers rdp_accounting sched_kernels; do
  cargo bench -q -p dpack-bench --bench "${b}" -- --smoke
done

# Perf trajectory: record durable vs non-durable service throughput
# (group commit vs per-record sync vs in-memory) for this PR. The
# binary itself asserts the group-commit sync bound
# (syncs <= shards x cycles on the grant path).
echo "==> service_throughput -> BENCH_4.json"
cargo run --release -q -p dpack-bench --bin service_throughput -- --json BENCH_4.json
grep -E "speedup|ops_per_sec" BENCH_4.json

# Remote frontend smoke: a real tenant over a real 127.0.0.1 socket —
# handshake, block registration, pipelined submits answered with final
# decisions, stats, metrics scrape, flight-recorder dump, snapshot,
# graceful shutdown. The example asserts every step; the greps below
# pin the metric families a monitor depends on to the scrape output.
echo "==> remote frontend smoke (example over 127.0.0.1)"
remote_out="$(cargo run --release -q --example remote_tenant)"
echo "${remote_out}" | grep -v '^dpack_\|^# TYPE'
for fam in dpack_submitted_total dpack_granted_total dpack_grant_latency_nanos \
    dpack_cycle_phase_nanos dpack_reactor_sweep_nanos dpack_open_connections \
    dpack_conn_queue_depth; do
  if ! grep -q "^# TYPE ${fam} " <<<"${remote_out}"; then
    echo "ERROR: remote metrics scrape is missing family ${fam}" >&2
    exit 1
  fi
done

# Introspection-plane smoke: a real three-node cluster behind
# 127.0.0.1 sockets — unassisted leader election, traced submissions
# through the primary, then one monitor-style scrape per node:
# ClusterStatus, the three registry snapshots merged into one
# cluster-wide view, and the span dumps assembled into causal trees
# exported as chrome://tracing JSON. The example asserts tree
# completeness and JSON well-formedness itself; the greps below pin the
# status section and the replication/tracing metric families to the
# merged scrape, and the file check pins the exported trace envelope.
echo "==> cluster introspection smoke (cluster_top example, 3 nodes over 127.0.0.1)"
top_out="$(cargo run --release -q --example cluster_top)"
echo "${top_out}" | grep -v '^dpack_\|^# TYPE'
if ! grep -q "^== ClusterStatus" <<<"${top_out}"; then
  echo "ERROR: cluster_top printed no ClusterStatus section" >&2
  exit 1
fi
for fam in dpack_repl_lag dpack_recorder_dropped_total dpack_repl_live_replicas \
    dpack_granted_total; do
  if ! grep -q "^# TYPE ${fam} " <<<"${top_out}"; then
    echo "ERROR: merged cluster scrape is missing family ${fam}" >&2
    exit 1
  fi
done
if [ ! -s target/cluster_top.trace.json ]; then
  echo "ERROR: cluster_top did not export target/cluster_top.trace.json" >&2
  exit 1
fi
if ! head -c 16 target/cluster_top.trace.json | grep -q '{"traceEvents":\['; then
  echo "ERROR: exported chrome trace lacks the traceEvents envelope" >&2
  exit 1
fi

# Perf trajectory for the remote surface: final-decision throughput
# through dpack-net vs the in-process async surface, same workload.
echo "==> service_throughput --remote -> BENCH_5.json"
cargo run --release -q -p dpack-bench --bin service_throughput -- --remote --json BENCH_5.json
grep -E "ops_per_sec|relative" BENCH_5.json

# Observability cost: instrumentation on vs off on the same workload
# (the binary asserts the overhead ratio stays under 3%), plus the
# hot-path latency percentiles scraped from the metrics registry.
echo "==> service_throughput --obs -> BENCH_6.json"
cargo run --release -q -p dpack-bench --bin service_throughput -- --obs --json BENCH_6.json
grep -E "overhead_ratio|p50|p99" BENCH_6.json

# Distributed-tracing cost: every submission traced vs none, with the
# instrumentation live in *both* legs so the delta isolates the tracing
# machinery itself (context propagation through the pending set, span
# starts at every hop, ring writes). The binary asserts the best paired
# ratio over five on/off rounds; the awk rail re-checks the committed
# number so a stale BENCH_10.json cannot hide a regression.
echo "==> service_throughput --traced -> BENCH_10.json"
cargo run --release -q -p dpack-bench --bin service_throughput -- --traced --json BENCH_10.json
grep -E "tracing_overhead_ratio|ops_per_sec|spans_recorded" BENCH_10.json
tov="$(sed -nE 's/.*"tracing_overhead_ratio": ([0-9.]+).*/\1/p' BENCH_10.json)"
spans="$(sed -nE 's/.*"spans_recorded": ([0-9]+).*/\1/p' BENCH_10.json)"
if ! awk -v o="${tov}" 'BEGIN { exit !(o >= 0 && o < 0.03) }'; then
  echo "ERROR: tracing overhead ratio ${tov} breaches the 3% budget" >&2
  exit 1
fi
if [ "${spans}" -le 0 ]; then
  echo "ERROR: traced leg recorded no spans — the instrumentation is dead" >&2
  exit 1
fi

# Million-block scaling: the tiered ledger holds a million registered
# blocks by spilling cold ones to segment files, so RSS must stay
# bounded (the all-hot equivalent needs well over a gigabyte) and the
# per-cycle latency must stay within a small constant factor of the
# 10k-block baseline — the residual is cold-block fault I/O, not
# scheduling work, which scales with the task count only.
echo "==> service_throughput --million -> BENCH_7.json"
cargo run --release -q -p dpack-bench --bin service_throughput -- --million --json BENCH_7.json
grep -E "cycle_slowdown_ratio|peak_rss_mb|million_blocks" BENCH_7.json
blocks="$(sed -nE 's/.*"million_blocks": ([0-9]+).*/\1/p' BENCH_7.json)"
rss="$(sed -nE 's/.*"peak_rss_mb": ([0-9.]+).*/\1/p' BENCH_7.json)"
ratio="$(sed -nE 's/.*"cycle_slowdown_ratio": ([0-9.]+).*/\1/p' BENCH_7.json)"
if [ "${blocks}" -lt 1000000 ]; then
  echo "ERROR: million-block bench ran ${blocks} blocks (< 1000000)" >&2
  exit 1
fi
if ! awk -v r="${rss}" 'BEGIN { exit !(r > 0 && r <= 600) }'; then
  echo "ERROR: million-block peak RSS ${rss} MB exceeds the 600 MB budget" >&2
  exit 1
fi
if ! awk -v s="${ratio}" 'BEGIN { exit !(s > 0 && s <= 6) }'; then
  echo "ERROR: million-block cycle slowdown ${ratio}x vs the 10k baseline (budget 6x)" >&2
  exit 1
fi

# Replication cost and failover: the quorum-2 replicated grant path
# (every append on both socket replicas before the tenant is acked) vs
# the standalone durable one, plus the primary-kill -> first-grant
# failover time through the client pool. The bounds are loose sanity
# rails, not perf targets: replication must not eat the grant path,
# and a failover must resolve in well under a second on loopback.
echo "==> service_throughput --replicated -> BENCH_8.json + BENCH_9.json"
cargo run --release -q -p dpack-bench --bin service_throughput -- --replicated \
  --json BENCH_8.json --cluster-json BENCH_9.json
grep -E "ops_per_sec|relative|failover" BENCH_8.json
rel="$(sed -nE 's/.*"replicated_relative_to_standalone": ([0-9.]+).*/\1/p' BENCH_8.json)"
fo="$(sed -nE 's/.*"failover_to_first_grant_ms": ([0-9.]+).*/\1/p' BENCH_8.json)"
if ! awk -v r="${rel}" 'BEGIN { exit !(r > 0.2) }'; then
  echo "ERROR: quorum-2 replication kept only ${rel} of standalone durable throughput (floor 0.2)" >&2
  exit 1
fi
if ! awk -v f="${fo}" 'BEGIN { exit !(f > 0 && f <= 1000) }'; then
  echo "ERROR: failover took ${fo} ms to the first granted decision (budget 1000 ms)" >&2
  exit 1
fi

# Automatic failover: the three-node cluster leg kills the elected
# leader and measures until the survivors — failure detector, election,
# promotion, catch-up resync — grant a fresh task with NO harness hand
# on the wheel. Detection (3 x 20 ms misses) + election (100 ms base +
# stagger) + promotion/resync lands around 150-250 ms on loopback; the
# 1500 ms rail catches a protocol stall, not jitter.
grep -E "auto_failover" BENCH_9.json
afo="$(sed -nE 's/.*"auto_failover_to_first_grant_ms": ([0-9.]+).*/\1/p' BENCH_9.json)"
if ! awk -v f="${afo}" 'BEGIN { exit !(f > 0 && f <= 1500) }'; then
  echo "ERROR: automatic failover took ${afo} ms to the first granted decision (budget 1500 ms)" >&2
  exit 1
fi

# Replay-determinism guard: the crash-recovery harness must produce
# byte-identical output when replayed from the same seed — a diff here
# means a failure report would not reproduce. The timing line of the
# test summary is the only legitimately nondeterministic output.
echo "==> replay determinism guard (recovery suite, fixed DPACK_CHECK_SEED)"
run_recovery_seeded() {
  DPACK_CHECK_SEED=20250742 cargo test -q -p dpack-service --test recovery 2>&1 \
    | sed 's/finished in [0-9.]*s//'
}
first="$(run_recovery_seeded)"
second="$(run_recovery_seeded)"
if [ "${first}" != "${second}" ]; then
  echo "ERROR: recovery suite output diverged between two runs of the same seed:" >&2
  diff <(echo "${first}") <(echo "${second}") >&2 || true
  exit 1
fi

# Same guard for the replication crash-promotion suite: it is the
# acceptance evidence that a promoted replica equals the independent
# fold of the acked records bit for bit, so its seeded sweeps (primary
# crash, replica crash, idempotent resubmission) must replay
# byte-identically too.
echo "==> replay determinism guard (replication crash-promotion suite)"
run_replication_seeded() {
  DPACK_CHECK_SEED=20250742 cargo test -q -p dpack-service --test replication_crash 2>&1 \
    | sed 's/finished in [0-9.]*s//'
}
first="$(run_replication_seeded)"
second="$(run_replication_seeded)"
if [ "${first}" != "${second}" ]; then
  echo "ERROR: replication crash-promotion suite diverged between two runs of the same seed:" >&2
  diff <(echo "${first}") <(echo "${second}") >&2 || true
  exit 1
fi

# And for the cluster chaos suite: three nodes under virtual time,
# drawn kill/rejoin schedules, automatic elections. Its invariants
# (one leader per term, acked grants survive any single-node loss,
# bit-identical replica convergence, grant conservation) must replay
# byte-identically from a fixed seed or a chaos failure report would
# not reproduce.
echo "==> replay determinism guard (cluster chaos suite)"
run_chaos_seeded() {
  DPACK_CHECK_SEED=20250742 cargo test -q -p dpack-net --test cluster_chaos 2>&1 \
    | sed 's/finished in [0-9.]*s//'
}
first="$(run_chaos_seeded)"
second="$(run_chaos_seeded)"
if [ "${first}" != "${second}" ]; then
  echo "ERROR: cluster chaos suite diverged between two runs of the same seed:" >&2
  diff <(echo "${first}") <(echo "${second}") >&2 || true
  exit 1
fi

echo "CI OK"
